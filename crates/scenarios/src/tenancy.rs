//! Multi-tenant arrival streams: k lazy per-tenant generators merged into
//! one [`RequestSource`] by next-arrival time.
//!
//! A tenant is one independent arrival stream — its own
//! [`ArrivalProcess`](crate::ArrivalProcess)-backed
//! [`RequestInputGenerator`] with its own RNG stream, derived
//! deterministically from the run seed and the stream index. The merge
//! holds exactly **one pending arrival per stream** (the head), so the
//! resident footprint of an N-request multi-tenant run is the stream count,
//! not N. Heterogeneous tenants (different scenarios, different rates)
//! interleave naturally: whichever stream's head arrives first is yielded
//! next, with the stream index breaking exact ties so merges are fully
//! deterministic.
//!
//! Request ids are re-sequenced globally in merged order (0, 1, 2, …), so
//! downstream accounting — outcome maps, paired comparisons, traces — sees
//! the same contiguous id space a single-stream run produces. Per-request
//! random factors still come from the owning tenant's RNG stream, so adding
//! a tenant never perturbs another tenant's draws.

use janus_workloads::request::{RequestInput, RequestInputGenerator, RequestSource};
use janus_workloads::workflow::Workflow;

/// Derive the seed of tenant stream `stream` from the run seed. Streams get
/// well-separated RNG streams (splitmix-style odd-constant multiply) and
/// stream 0 keeps a distinct seed from the run itself, so a multi-tenant
/// run never replays the single-stream request set under a different name.
pub fn tenant_stream_seed(base: u64, stream: u64) -> u64 {
    base ^ (stream.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One tenant stream inside a [`MergedRequestSource`]: a lazy generator
/// plus its buffered head (the stream's next arrival).
#[derive(Debug)]
struct TenantStream {
    generator: RequestInputGenerator,
    head: Option<RequestInput>,
}

/// A [`RequestSource`] merging k tenant streams by next-arrival time.
///
/// Yields at most `limit` requests in global arrival order. Each stream is
/// unbounded (generators never run dry); the budget bounds the merge, so a
/// faster tenant naturally contributes proportionally more of the run's
/// requests. [`resident`](RequestSource::resident) reports the buffered
/// head count — the bounded-memory invariant the streaming open loop
/// surfaces as `peak_resident_arrivals`.
#[derive(Debug)]
pub struct MergedRequestSource {
    streams: Vec<TenantStream>,
    remaining: usize,
    next_id: u64,
    primed: bool,
}

impl MergedRequestSource {
    /// Merge the given per-tenant generators, yielding at most `limit`
    /// requests in global arrival order.
    pub fn new(generators: Vec<RequestInputGenerator>, limit: usize) -> Result<Self, String> {
        if generators.is_empty() {
            return Err("a merged request source needs at least one stream".into());
        }
        Ok(MergedRequestSource {
            streams: generators
                .into_iter()
                .map(|generator| TenantStream {
                    generator,
                    head: None,
                })
                .collect(),
            remaining: limit,
            next_id: 0,
            primed: false,
        })
    }

    /// Number of tenant streams being merged.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

impl RequestSource for MergedRequestSource {
    fn next_request(&mut self, workflow: &Workflow) -> Option<RequestInput> {
        if self.remaining == 0 {
            return None;
        }
        if !self.primed {
            for stream in &mut self.streams {
                stream.head = Some(stream.generator.next_request(workflow));
            }
            self.primed = true;
        }
        // k-way merge: the earliest head wins; exact ties go to the lowest
        // stream index (stable, deterministic).
        let mut best = 0;
        for (i, stream) in self.streams.iter().enumerate().skip(1) {
            let (Some(head), Some(best_head)) = (&stream.head, &self.streams[best].head) else {
                continue;
            };
            if head.arrival_offset < best_head.arrival_offset {
                best = i;
            }
        }
        let stream = &mut self.streams[best];
        let mut req = stream.head.take()?;
        stream.head = Some(stream.generator.next_request(workflow));
        req.id = self.next_id;
        self.next_id += 1;
        self.remaining -= 1;
        Some(req)
    }

    fn resident(&self) -> usize {
        self.streams.iter().filter(|s| s.head.is_some()).count()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ScenarioContext, ScenarioRegistry};
    use janus_simcore::time::SimDuration;
    use janus_workloads::apps::intelligent_assistant;

    fn generator(
        registry: &ScenarioRegistry,
        scenario: &str,
        rps: f64,
        seed: u64,
    ) -> RequestInputGenerator {
        let ctx = ScenarioContext {
            base_rps: rps,
            requests: 500,
            seed,
        };
        let process = registry.build(scenario, &ctx).expect("builtin scenario");
        RequestInputGenerator::with_sampler(seed, process.sampler())
    }

    #[test]
    fn merged_streams_yield_global_arrival_order_with_resequenced_ids() {
        let ia = intelligent_assistant();
        let registry = ScenarioRegistry::with_builtins();
        let mut source = MergedRequestSource::new(
            vec![
                generator(&registry, "poisson", 3.0, tenant_stream_seed(7, 0)),
                generator(&registry, "bursty", 1.0, tenant_stream_seed(7, 1)),
                generator(&registry, "flash-crowd", 2.0, tenant_stream_seed(7, 2)),
            ],
            200,
        )
        .unwrap();
        assert_eq!(source.stream_count(), 3);
        let mut prev = SimDuration::ZERO;
        let mut count = 0u64;
        while let Some(req) = source.next_request(&ia) {
            assert_eq!(req.id, count, "ids re-sequence in merged order");
            assert!(req.arrival_offset >= prev, "merge is time-ordered");
            assert!(source.resident() <= 3, "at most one head per stream");
            prev = req.arrival_offset;
            count += 1;
        }
        assert_eq!(count, 200, "the budget bounds the merge");
        assert_eq!(source.resident(), 3, "heads stay buffered at exhaustion");
    }

    #[test]
    fn merges_are_deterministic_and_seed_sensitive() {
        let ia = intelligent_assistant();
        let registry = ScenarioRegistry::with_builtins();
        let draw = |seed: u64| {
            let mut source = MergedRequestSource::new(
                vec![
                    generator(&registry, "poisson", 2.0, tenant_stream_seed(seed, 0)),
                    generator(&registry, "diurnal", 2.0, tenant_stream_seed(seed, 1)),
                ],
                100,
            )
            .unwrap();
            std::iter::from_fn(|| source.next_request(&ia)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn single_stream_merges_only_resequence_ids() {
        // A one-stream merge is the underlying stream with re-derived ids:
        // same offsets, same factors (ids already match since both count
        // from zero).
        let ia = intelligent_assistant();
        let registry = ScenarioRegistry::with_builtins();
        let seed = tenant_stream_seed(11, 0);
        let direct = generator(&registry, "poisson", 4.0, seed).generate(&ia, 50);
        let mut source =
            MergedRequestSource::new(vec![generator(&registry, "poisson", 4.0, seed)], 50).unwrap();
        let merged: Vec<_> = std::iter::from_fn(|| source.next_request(&ia)).collect();
        assert_eq!(direct, merged);
    }

    #[test]
    fn empty_merges_are_rejected() {
        let err = MergedRequestSource::new(vec![], 10).unwrap_err();
        assert!(err.contains("at least one stream"), "{err}");
    }
}
