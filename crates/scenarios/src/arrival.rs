//! Arrival processes: seed-deterministic generators of request timestamps.
//!
//! An [`ArrivalProcess`] describes *when* requests reach the platform. It is
//! consumed in two ways:
//!
//! * [`ArrivalProcess::sampler`] hands the request generator a stateful
//!   [`InterArrivalSampler`] that draws gaps from the *generator's* RNG
//!   stream — the same stream the per-request execution factors come from —
//!   so serving sessions stay reproducible bit-for-bit and the Poisson
//!   special case reproduces the historical open-loop stream exactly.
//! * [`ArrivalProcess::timestamps`] drives a fresh sampler from an explicit
//!   seed and returns the absolute arrival offsets of `n` requests —
//!   monotone, non-negative, and identical for identical seeds.

use janus_simcore::rng::SimRng;
use janus_simcore::time::SimDuration;
use janus_trace::Trace;
use janus_workloads::request::{InterArrivalSampler, PoissonGaps};
use std::fmt;

/// An object-safe, seed-deterministic arrival process.
///
/// Implementations are immutable descriptions (rate parameters, spike
/// windows, replayed gap sequences); all per-run state lives in the sampler
/// returned by [`sampler`](Self::sampler), so one process can drive any
/// number of independent runs.
pub trait ArrivalProcess: fmt::Debug + Send + Sync {
    /// Display name the process reports itself under.
    fn name(&self) -> &str;

    /// A fresh sampler positioned at the start of the process.
    fn sampler(&self) -> Box<dyn InterArrivalSampler>;

    /// Arrival timestamps of the first `n` requests, driven by a dedicated
    /// RNG seeded with `seed`. Timestamps are nondecreasing and
    /// non-negative; identical seeds yield identical vectors.
    fn timestamps(&self, seed: u64, n: usize) -> Vec<SimDuration> {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sampler = self.sampler();
        let mut clock = SimDuration::ZERO;
        (0..n)
            .map(|_| {
                clock += sampler.next_gap(&mut rng).saturate();
                clock
            })
            .collect()
    }
}

fn positive_rate(what: &str, rps: f64) -> Result<f64, String> {
    if rps.is_finite() && rps > 0.0 {
        Ok(rps)
    } else {
        Err(format!("{what} must be a positive rate, got {rps}"))
    }
}

/// Constant-rate Poisson arrivals — the paper's open-loop load shape, and
/// the process `Load::Open { rps }` resolves to.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rps: f64,
}

impl PoissonArrivals {
    /// Poisson arrivals at `rps` requests per second.
    pub fn new(rps: f64) -> Result<Self, String> {
        Ok(PoissonArrivals {
            rps: positive_rate("poisson rps", rps)?,
        })
    }

    /// Mean arrival rate in requests per second.
    pub fn rps(&self) -> f64 {
        self.rps
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn name(&self) -> &str {
        "poisson"
    }

    fn sampler(&self) -> Box<dyn InterArrivalSampler> {
        // One exponential draw per request — draw-for-draw the stream the
        // pre-scenario open loop produced.
        Box::new(PoissonGaps::new(SimDuration::from_millis(
            1000.0 / self.rps,
        )))
    }
}

/// Sinusoidally rate-modulated Poisson arrivals: `rate(t) = base · (1 + a ·
/// sin(2πt/period))`. Models the compressed day/night swing of production
/// traffic; the long-run mean rate is exactly the base rate.
#[derive(Debug, Clone)]
pub struct DiurnalArrivals {
    base_rps: f64,
    amplitude: f64,
    period: SimDuration,
}

impl DiurnalArrivals {
    /// Diurnal arrivals around `base_rps` with relative `amplitude` in
    /// `[0, 1)` and the given modulation period.
    pub fn new(base_rps: f64, amplitude: f64, period: SimDuration) -> Result<Self, String> {
        let base_rps = positive_rate("diurnal base rps", base_rps)?;
        if !(0.0..1.0).contains(&amplitude) {
            return Err(format!(
                "diurnal amplitude must be in [0, 1), got {amplitude}"
            ));
        }
        if period.as_millis() <= 0.0 {
            return Err("diurnal period must be positive".into());
        }
        Ok(DiurnalArrivals {
            base_rps,
            amplitude,
            period,
        })
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn name(&self) -> &str {
        "diurnal"
    }

    fn sampler(&self) -> Box<dyn InterArrivalSampler> {
        let base = self.base_rps;
        let amplitude = self.amplitude;
        let period_ms = self.period.as_millis();
        Box::new(ThinningSampler::new(
            base * (1.0 + amplitude),
            move |t_ms: f64| {
                base * (1.0 + amplitude * (std::f64::consts::TAU * t_ms / period_ms).sin())
            },
        ))
    }
}

/// Two-state Markov-modulated Poisson process (MMPP): an *on* phase at one
/// rate and an *off* phase at another, with exponentially distributed phase
/// dwell times. The textbook model for bursty request streams.
#[derive(Debug, Clone)]
pub struct BurstyArrivals {
    on_rps: f64,
    off_rps: f64,
    mean_on: SimDuration,
    mean_off: SimDuration,
}

impl BurstyArrivals {
    /// An on/off process: `on_rps` during bursts, `off_rps` between them
    /// (zero allowed), with mean phase lengths `mean_on` / `mean_off`.
    pub fn new(
        on_rps: f64,
        off_rps: f64,
        mean_on: SimDuration,
        mean_off: SimDuration,
    ) -> Result<Self, String> {
        let on_rps = positive_rate("bursty on-rate", on_rps)?;
        if !(off_rps.is_finite() && off_rps >= 0.0) {
            return Err(format!(
                "bursty off-rate must be non-negative, got {off_rps}"
            ));
        }
        if mean_on.as_millis() <= 0.0 || mean_off.as_millis() <= 0.0 {
            return Err("bursty phase lengths must be positive".into());
        }
        Ok(BurstyArrivals {
            on_rps,
            off_rps,
            mean_on,
            mean_off,
        })
    }

    /// The long-run mean arrival rate of the process.
    pub fn mean_rps(&self) -> f64 {
        let on = self.mean_on.as_millis();
        let off = self.mean_off.as_millis();
        (self.on_rps * on + self.off_rps * off) / (on + off)
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn name(&self) -> &str {
        "bursty"
    }

    fn sampler(&self) -> Box<dyn InterArrivalSampler> {
        Box::new(MmppSampler {
            on_rps: self.on_rps,
            off_rps: self.off_rps,
            mean_on_ms: self.mean_on.as_millis(),
            mean_off_ms: self.mean_off.as_millis(),
            started: false,
            in_on: false,
            phase_left_ms: 0.0,
        })
    }
}

/// Baseline-rate arrivals with one flash-crowd window at a multiple of the
/// baseline — the "everyone opens the app at once" scenario.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    base_rps: f64,
    spike_rps: f64,
    spike_start: SimDuration,
    spike_len: SimDuration,
}

impl FlashCrowd {
    /// Baseline `base_rps` everywhere except the window
    /// `[spike_start, spike_start + spike_len)`, where the rate is
    /// `spike_rps` (must be at least the baseline).
    pub fn new(
        base_rps: f64,
        spike_rps: f64,
        spike_start: SimDuration,
        spike_len: SimDuration,
    ) -> Result<Self, String> {
        let base_rps = positive_rate("flash-crowd base rps", base_rps)?;
        let spike_rps = positive_rate("flash-crowd spike rps", spike_rps)?;
        if spike_rps < base_rps {
            return Err(format!(
                "flash-crowd spike rate {spike_rps} below baseline {base_rps}"
            ));
        }
        if spike_start.as_millis() < 0.0 || spike_len.as_millis() <= 0.0 {
            return Err("flash-crowd window must have positive length".into());
        }
        Ok(FlashCrowd {
            base_rps,
            spike_rps,
            spike_start,
            spike_len,
        })
    }
}

impl ArrivalProcess for FlashCrowd {
    fn name(&self) -> &str {
        "flash-crowd"
    }

    fn sampler(&self) -> Box<dyn InterArrivalSampler> {
        let base = self.base_rps;
        let spike = self.spike_rps;
        let start_ms = self.spike_start.as_millis();
        let end_ms = start_ms + self.spike_len.as_millis();
        Box::new(ThinningSampler::new(spike.max(base), move |t_ms| {
            if (start_ms..end_ms).contains(&t_ms) {
                spike
            } else {
                base
            }
        }))
    }
}

/// Replays the inter-arrival gaps of a recorded (or synthesized) trace,
/// cycling when the trace is shorter than the run. Bridges
/// [`janus_trace::Trace`] dynamics — diurnal swings included — into the
/// serving simulator. Consumes no randomness: the gaps *are* the process.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    gaps_ms: Vec<f64>,
    scale: f64,
}

impl TraceReplay {
    /// Replay an explicit gap sequence (milliseconds between consecutive
    /// arrivals). Gaps must be finite, non-negative and not all zero.
    pub fn from_gaps(gaps_ms: Vec<f64>) -> Result<Self, String> {
        if gaps_ms.is_empty() {
            return Err("trace replay needs at least one inter-arrival gap".into());
        }
        if gaps_ms.iter().any(|g| !g.is_finite() || *g < 0.0) {
            return Err("trace gaps must be finite and non-negative".into());
        }
        if gaps_ms.iter().sum::<f64>() <= 0.0 {
            return Err("trace gaps must not all be zero".into());
        }
        Ok(TraceReplay {
            gaps_ms,
            scale: 1.0,
        })
    }

    /// Replay the arrival dynamics of a synthesized trace.
    pub fn from_trace(trace: &Trace) -> Result<Self, String> {
        Self::from_gaps(trace.inter_arrival_gaps_ms())
    }

    /// Rescale every gap so the long-run mean rate becomes `rps`, preserving
    /// the burst *shape* while matching another scenario's offered load.
    pub fn scaled_to_rate(mut self, rps: f64) -> Result<Self, String> {
        let rps = positive_rate("trace replay rate", rps)?;
        let mean_gap = self.gaps_ms.iter().sum::<f64>() / self.gaps_ms.len() as f64;
        self.scale = (1000.0 / rps) / mean_gap;
        Ok(self)
    }

    /// Mean arrival rate of the (scaled) replay, in requests per second.
    pub fn mean_rps(&self) -> f64 {
        let mean_gap = self.gaps_ms.iter().sum::<f64>() / self.gaps_ms.len() as f64;
        1000.0 / (mean_gap * self.scale)
    }
}

impl ArrivalProcess for TraceReplay {
    fn name(&self) -> &str {
        "trace-replay"
    }

    fn sampler(&self) -> Box<dyn InterArrivalSampler> {
        Box::new(ReplaySampler {
            gaps_ms: self.gaps_ms.clone(),
            scale: self.scale,
            pos: 0,
        })
    }
}

/// Non-homogeneous Poisson sampler via thinning: propose gaps at the peak
/// rate, accept with probability `rate(t)/peak`. Exact for any bounded rate
/// function.
struct ThinningSampler<R> {
    peak_rps: f64,
    rate_at_ms: R,
    clock_ms: f64,
}

impl<R> ThinningSampler<R> {
    fn new(peak_rps: f64, rate_at_ms: R) -> Self {
        ThinningSampler {
            peak_rps,
            rate_at_ms,
            clock_ms: 0.0,
        }
    }
}

impl<R> fmt::Debug for ThinningSampler<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThinningSampler")
            .field("peak_rps", &self.peak_rps)
            .field("clock_ms", &self.clock_ms)
            .finish()
    }
}

impl<R> InterArrivalSampler for ThinningSampler<R>
where
    R: Fn(f64) -> f64 + Send,
{
    fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        let start_ms = self.clock_ms;
        loop {
            self.clock_ms += rng.exponential(1000.0 / self.peak_rps);
            let rate = (self.rate_at_ms)(self.clock_ms);
            if rng.uniform() * self.peak_rps < rate {
                return SimDuration::from_millis(self.clock_ms - start_ms);
            }
        }
    }
}

/// Two-state MMPP sampler. Phase dwell times are exponential; within a phase
/// arrivals are Poisson at the phase rate. Memorylessness makes re-drawing
/// the candidate gap after a phase switch exact.
#[derive(Debug)]
struct MmppSampler {
    on_rps: f64,
    off_rps: f64,
    mean_on_ms: f64,
    mean_off_ms: f64,
    started: bool,
    in_on: bool,
    phase_left_ms: f64,
}

impl InterArrivalSampler for MmppSampler {
    fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        if !self.started {
            // Stationary start: pick the initial phase with its long-run
            // time fraction (always starting "on" would bias short runs
            // toward the burst rate); the residual dwell is exponential by
            // memorylessness, so a fresh draw is exact.
            self.started = true;
            let p_on = self.mean_on_ms / (self.mean_on_ms + self.mean_off_ms);
            self.in_on = rng.uniform() < p_on;
            self.phase_left_ms = rng.exponential(if self.in_on {
                self.mean_on_ms
            } else {
                self.mean_off_ms
            });
        }
        let mut gap_ms = 0.0;
        loop {
            if self.phase_left_ms <= 0.0 {
                self.in_on = !self.in_on;
                let mean = if self.in_on {
                    self.mean_on_ms
                } else {
                    self.mean_off_ms
                };
                self.phase_left_ms = rng.exponential(mean);
            }
            let rate = if self.in_on {
                self.on_rps
            } else {
                self.off_rps
            };
            if rate <= 0.0 {
                // A silent phase contributes its whole dwell to the gap.
                gap_ms += self.phase_left_ms;
                self.phase_left_ms = 0.0;
                continue;
            }
            let candidate_ms = rng.exponential(1000.0 / rate);
            if candidate_ms <= self.phase_left_ms {
                self.phase_left_ms -= candidate_ms;
                return SimDuration::from_millis(gap_ms + candidate_ms);
            }
            gap_ms += self.phase_left_ms;
            self.phase_left_ms = 0.0;
        }
    }
}

#[derive(Debug)]
struct ReplaySampler {
    gaps_ms: Vec<f64>,
    scale: f64,
    pos: usize,
}

impl InterArrivalSampler for ReplaySampler {
    fn next_gap(&mut self, _rng: &mut SimRng) -> SimDuration {
        let gap = self.gaps_ms[self.pos % self.gaps_ms.len()];
        self.pos += 1;
        SimDuration::from_millis(gap * self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_trace::TraceConfig;

    fn realized_rps(timestamps: &[SimDuration]) -> f64 {
        timestamps.len() as f64 / timestamps.last().unwrap().as_secs()
    }

    fn builtins() -> Vec<Box<dyn ArrivalProcess>> {
        let trace = Trace::generate(&TraceConfig {
            functions: 50,
            invocations: 3000,
            mean_rps: 20.0,
            ..TraceConfig::default()
        })
        .unwrap();
        vec![
            Box::new(PoissonArrivals::new(20.0).unwrap()),
            Box::new(DiurnalArrivals::new(20.0, 0.6, SimDuration::from_secs(60.0)).unwrap()),
            Box::new(
                BurstyArrivals::new(
                    36.0,
                    4.0,
                    SimDuration::from_secs(20.0),
                    SimDuration::from_secs(20.0),
                )
                .unwrap(),
            ),
            Box::new(
                FlashCrowd::new(
                    12.5,
                    62.5,
                    SimDuration::from_secs(40.0),
                    SimDuration::from_secs(20.0),
                )
                .unwrap(),
            ),
            Box::new(
                TraceReplay::from_trace(&trace)
                    .unwrap()
                    .scaled_to_rate(20.0)
                    .unwrap(),
            ),
        ]
    }

    #[test]
    fn timestamps_are_monotone_nonnegative_and_seed_deterministic() {
        for process in builtins() {
            let a = process.timestamps(42, 4000);
            let b = process.timestamps(42, 4000);
            assert_eq!(a, b, "{}: same seed must reproduce", process.name());
            assert_eq!(a.len(), 4000);
            let mut prev = SimDuration::ZERO;
            for t in &a {
                assert!(
                    t.as_millis() >= prev.as_millis() && t.as_millis() >= 0.0,
                    "{}: timestamps must be sorted and non-negative",
                    process.name()
                );
                prev = *t;
            }
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_stochastic_streams() {
        for process in builtins() {
            if process.name() == "trace-replay" {
                // Replay consumes no randomness: every seed replays the trace.
                assert_eq!(process.timestamps(1, 50), process.timestamps(2, 50));
                continue;
            }
            assert_ne!(
                process.timestamps(1, 50),
                process.timestamps(2, 50),
                "{}: different seeds must differ",
                process.name()
            );
        }
    }

    #[test]
    fn realized_mean_rate_tracks_the_configured_rate() {
        // Every built-in above is parameterised for a 20 rps long-run mean
        // (bursty: (36·20 + 4·20)/40 = 20). A single finite run of a bursty
        // process is high-variance (few on/off cycles), so the estimate
        // averages several seeded runs.
        for process in builtins() {
            let mean_rps = (0..10)
                .map(|seed| realized_rps(&process.timestamps(seed, 4000)))
                .sum::<f64>()
                / 10.0;
            assert!(
                (mean_rps - 20.0).abs() / 20.0 < 0.2,
                "{}: realized {mean_rps} rps vs configured 20",
                process.name()
            );
        }
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_window() {
        let process = FlashCrowd::new(
            10.0,
            100.0,
            SimDuration::from_secs(10.0),
            SimDuration::from_secs(10.0),
        )
        .unwrap();
        let ts = process.timestamps(11, 2000);
        let in_window = ts
            .iter()
            .filter(|t| (10.0..20.0).contains(&t.as_secs()))
            .count();
        // The 10 s window at 100 rps should hold ~1000 of the 2000 arrivals,
        // far more than the 10 s before it at 10 rps (~100).
        let before = ts.iter().filter(|t| t.as_secs() < 10.0).count();
        assert!(
            in_window > 5 * before,
            "window {in_window} vs before {before}"
        );
    }

    #[test]
    fn bursty_arrivals_are_burstier_than_poisson() {
        // Squared coefficient of variation of the gaps: 1 for exponential,
        // > 1 for an on/off MMPP with distinct rates.
        let cv2 = |process: &dyn ArrivalProcess| {
            let ts = process.timestamps(13, 6000);
            let gaps: Vec<f64> = ts
                .windows(2)
                .map(|w| w[1].as_millis() - w[0].as_millis())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = PoissonArrivals::new(20.0).unwrap();
        let bursty = BurstyArrivals::new(
            36.0,
            4.0,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(20.0),
        )
        .unwrap();
        let (p, b) = (cv2(&poisson), cv2(&bursty));
        assert!((p - 1.0).abs() < 0.25, "poisson cv² {p}");
        assert!(b > 1.5, "bursty cv² {b} should exceed poisson's");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(PoissonArrivals::new(0.0).is_err());
        assert!(PoissonArrivals::new(f64::NAN).is_err());
        assert!(DiurnalArrivals::new(5.0, 1.0, SimDuration::from_secs(1.0)).is_err());
        assert!(DiurnalArrivals::new(5.0, 0.5, SimDuration::ZERO).is_err());
        assert!(BurstyArrivals::new(
            5.0,
            -1.0,
            SimDuration::from_secs(1.0),
            SimDuration::from_secs(1.0)
        )
        .is_err());
        assert!(FlashCrowd::new(5.0, 1.0, SimDuration::ZERO, SimDuration::from_secs(1.0)).is_err());
        assert!(TraceReplay::from_gaps(vec![]).is_err());
        assert!(TraceReplay::from_gaps(vec![0.0, 0.0]).is_err());
        assert!(TraceReplay::from_gaps(vec![10.0, -1.0]).is_err());
    }

    #[test]
    fn trace_replay_cycles_and_rescales() {
        let replay = TraceReplay::from_gaps(vec![100.0, 300.0]).unwrap();
        let ts = replay.timestamps(0, 4);
        assert_eq!(
            ts.iter().map(|t| t.as_millis()).collect::<Vec<_>>(),
            vec![100.0, 400.0, 500.0, 800.0]
        );
        // Mean gap 200 ms = 5 rps; rescaled to 20 rps gaps shrink 4×.
        let scaled = replay.scaled_to_rate(20.0).unwrap();
        assert!((scaled.mean_rps() - 20.0).abs() < 1e-9);
        let ts = scaled.timestamps(0, 2);
        assert!((ts[0].as_millis() - 25.0).abs() < 1e-9);
    }
}
