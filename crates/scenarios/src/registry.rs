//! The open scenario registry: arrival processes addressable by name.
//!
//! Mirrors `janus-core`'s `PolicyRegistry` on the workload axis: a scenario
//! is anything that can build an [`ArrivalProcess`] from a
//! [`ScenarioContext`] (the base arrival rate, the request count and the
//! session seed), registered under a display name. The five built-ins cover
//! the load shapes of the paper's motivation section; downstream code
//! registers custom processes with [`ScenarioRegistry::register`] (or the
//! closure shorthand [`ScenarioRegistry::register_fn`]) and serves them by
//! name from sessions and CLI flags.
//!
//! Every built-in is normalized to the context's base rate: across
//! scenarios the long-run mean offered load is identical, only its shape
//! (constant, sinusoidal, on/off bursts, one spike, replayed trace) differs.

use crate::arrival::{
    ArrivalProcess, BurstyArrivals, DiurnalArrivals, FlashCrowd, PoissonArrivals, TraceReplay,
};
use janus_simcore::time::SimDuration;
use janus_trace::{Trace, TraceConfig};
use std::fmt;
use std::sync::Arc;

/// Everything a factory may consult when instantiating an arrival process
/// for one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioContext {
    /// Long-run mean arrival rate the scenario should offer (requests per
    /// second) — `Load::Open`'s `rps`.
    pub base_rps: f64,
    /// Number of requests the run will generate; built-ins use it to place
    /// rate features (spike windows, diurnal periods) inside the run span.
    pub requests: usize,
    /// Session seed, for scenarios that synthesize inputs (trace replay).
    pub seed: u64,
}

impl ScenarioContext {
    /// Expected span of the run at the base rate.
    pub fn expected_span(&self) -> SimDuration {
        SimDuration::from_secs(self.requests as f64 / self.base_rps)
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.base_rps.is_finite() && self.base_rps > 0.0) {
            return Err(format!(
                "scenario base rate must be positive, got {}",
                self.base_rps
            ));
        }
        if self.requests == 0 {
            return Err("scenario runs need at least one request".into());
        }
        Ok(())
    }
}

/// An object-safe factory that instantiates one named arrival process.
pub trait ScenarioFactory: Send + Sync {
    /// Display name the scenario is registered (and reported) under.
    fn name(&self) -> &str;

    /// Instantiate the arrival process for one serving run.
    fn build(&self, ctx: &ScenarioContext) -> Result<Box<dyn ArrivalProcess>, String>;
}

/// An ordered, open registry of [`ScenarioFactory`]s.
///
/// Registration order is preserved (it drives sweep ordering); registering a
/// factory under an existing name replaces the earlier entry in place, so a
/// sweep can override a built-in without forking the registry.
#[derive(Clone, Default)]
pub struct ScenarioRegistry {
    factories: Vec<Arc<dyn ScenarioFactory>>,
}

impl fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("scenarios", &self.names())
            .finish()
    }
}

impl ScenarioRegistry {
    /// An empty registry (no built-ins).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the five built-in load shapes:
    /// `poisson`, `diurnal`, `bursty`, `flash-crowd`, `trace-replay`.
    pub fn with_builtins() -> Self {
        let mut registry = ScenarioRegistry::new();
        registry.register_fn("poisson", |ctx| {
            Ok(Box::new(PoissonArrivals::new(ctx.base_rps)?))
        });
        registry.register_fn("diurnal", |ctx| {
            // Two full cycles over the run span, ±60 % around the base rate.
            let period = SimDuration::from_millis(ctx.expected_span().as_millis() / 2.0);
            Ok(Box::new(DiurnalArrivals::new(ctx.base_rps, 0.6, period)?))
        });
        registry.register_fn("bursty", |ctx| {
            // Symmetric on/off phases (~8 per run) at 1.8× / 0.2× the base
            // rate: long-run mean is exactly the base rate.
            let dwell = SimDuration::from_millis(ctx.expected_span().as_millis() / 8.0);
            Ok(Box::new(BurstyArrivals::new(
                1.8 * ctx.base_rps,
                0.2 * ctx.base_rps,
                dwell,
                dwell,
            )?))
        });
        registry.register_fn("flash-crowd", |ctx| {
            // A 4× spike over the middle fifth of the run. Baseline is scaled
            // so the time-averaged rate stays the base rate:
            // base · (0.8 + 0.2·4) = base · 1.6.
            let span_ms = ctx.expected_span().as_millis();
            Ok(Box::new(FlashCrowd::new(
                ctx.base_rps / 1.6,
                4.0 * ctx.base_rps / 1.6,
                SimDuration::from_millis(0.4 * span_ms),
                SimDuration::from_millis(0.2 * span_ms),
            )?))
        });
        registry.register_fn("trace-replay", |ctx| {
            // Synthesize an Azure-like trace from the session seed and replay
            // its (diurnally bursty) gaps, rescaled to the base rate.
            let trace = Trace::generate(&TraceConfig {
                functions: 100,
                invocations: ctx.requests.clamp(256, 5000),
                seed: ctx.seed ^ 0x7AACE,
                ..TraceConfig::default()
            })?;
            Ok(Box::new(
                TraceReplay::from_trace(&trace)?.scaled_to_rate(ctx.base_rps)?,
            ))
        });
        registry
    }

    /// Register a factory. Replaces any earlier factory with the same name
    /// (keeping its position), otherwise appends.
    pub fn register(&mut self, factory: Arc<dyn ScenarioFactory>) -> &mut Self {
        match self
            .factories
            .iter()
            .position(|f| f.name() == factory.name())
        {
            Some(i) => self.factories[i] = factory,
            None => self.factories.push(factory),
        }
        self
    }

    /// Closure shorthand for [`register`](Self::register).
    pub fn register_fn<F>(&mut self, name: impl Into<String>, build: F) -> &mut Self
    where
        F: Fn(&ScenarioContext) -> Result<Box<dyn ArrivalProcess>, String> + Send + Sync + 'static,
    {
        self.register(Arc::new(FnFactory {
            name: name.into(),
            build,
        }))
    }

    /// Look a factory up by its registered name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ScenarioFactory>> {
        self.factories.iter().find(|f| f.name() == name).cloned()
    }

    fn unknown_name_error(&self, name: &str) -> String {
        format!(
            "unknown scenario `{name}`; registered scenarios: {}",
            self.names().join(", ")
        )
    }

    /// Check that `name` is registered, with an informative error listing
    /// the known scenarios otherwise. Lets callers validate names early
    /// (e.g. at session build time) without a [`ScenarioContext`].
    pub fn ensure_known(&self, name: &str) -> Result<(), String> {
        if self.get(name).is_some() {
            Ok(())
        } else {
            Err(self.unknown_name_error(name))
        }
    }

    /// Instantiate the named scenario, with an informative error for unknown
    /// names or invalid contexts.
    pub fn build(
        &self,
        name: &str,
        ctx: &ScenarioContext,
    ) -> Result<Box<dyn ArrivalProcess>, String> {
        ctx.validate()?;
        match self.get(name) {
            Some(factory) => factory.build(ctx),
            None => Err(self.unknown_name_error(name)),
        }
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.factories.iter().map(|f| f.name()).collect()
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

struct FnFactory<F> {
    name: String,
    build: F,
}

impl<F> ScenarioFactory for FnFactory<F>
where
    F: Fn(&ScenarioContext) -> Result<Box<dyn ArrivalProcess>, String> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, ctx: &ScenarioContext) -> Result<Box<dyn ArrivalProcess>, String> {
        (self.build)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ScenarioContext {
        ScenarioContext {
            base_rps: 25.0,
            requests: 3000,
            seed: 9,
        }
    }

    #[test]
    fn builtins_cover_the_five_load_shapes_in_order() {
        let registry = ScenarioRegistry::with_builtins();
        assert_eq!(
            registry.names(),
            vec![
                "poisson",
                "diurnal",
                "bursty",
                "flash-crowd",
                "trace-replay"
            ]
        );
        assert_eq!(registry.len(), 5);
        assert!(!registry.is_empty());
    }

    #[test]
    fn every_builtin_builds_and_offers_the_base_rate() {
        let registry = ScenarioRegistry::with_builtins();
        for name in registry.names() {
            let process = registry.build(name, &ctx()).unwrap();
            assert_eq!(process.name(), name);
            // One run of a bursty process covers few on/off cycles, so the
            // realized-rate estimate averages several seeded runs.
            let realized = (0..10)
                .map(|seed| {
                    let ts = process.timestamps(seed, 3000);
                    ts.len() as f64 / ts.last().unwrap().as_secs()
                })
                .sum::<f64>()
                / 10.0;
            assert!(
                (realized - 25.0).abs() / 25.0 < 0.2,
                "{name}: realized {realized} rps vs base 25"
            );
        }
    }

    #[test]
    fn unknown_names_and_invalid_contexts_are_rejected() {
        let registry = ScenarioRegistry::with_builtins();
        let err = registry.build("tsunami", &ctx()).unwrap_err();
        assert!(err.contains("unknown scenario `tsunami`"), "{err}");
        assert!(err.contains("flash-crowd"), "{err}");
        let err = registry
            .build(
                "poisson",
                &ScenarioContext {
                    base_rps: 0.0,
                    ..ctx()
                },
            )
            .unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = registry
            .build(
                "poisson",
                &ScenarioContext {
                    requests: 0,
                    ..ctx()
                },
            )
            .unwrap_err();
        assert!(err.contains("at least one request"), "{err}");
    }

    #[test]
    fn custom_factories_can_replace_and_extend_builtins() {
        let mut registry = ScenarioRegistry::with_builtins();
        registry.register_fn("lockstep", |_ctx| {
            Ok(Box::new(
                TraceReplay::from_gaps(vec![500.0]).expect("static gaps"),
            ))
        });
        assert_eq!(registry.len(), 6);
        let process = registry.build("lockstep", &ctx()).unwrap();
        let ts = process.timestamps(0, 3);
        assert_eq!(ts[2].as_millis(), 1500.0);

        // Replacing keeps the original position.
        registry.register_fn("poisson", |ctx| {
            Ok(Box::new(PoissonArrivals::new(2.0 * ctx.base_rps)?))
        });
        assert_eq!(registry.len(), 6);
        assert_eq!(registry.names()[0], "poisson");
    }
}
