//! # janus-scenarios
//!
//! Workload scenarios for the serving platform: *when* requests arrive, as a
//! first-class, pluggable axis alongside *which policy* serves them.
//!
//! The paper's evaluation (§V) drives every experiment with a constant-rate
//! Poisson open loop, while its motivation (§II-A) rests on production-trace
//! dynamics: Zipf popularity, heavy-tailed execution times, bursty diurnal
//! arrivals. This crate closes that gap:
//!
//! * [`ArrivalProcess`] — an object-safe, seed-deterministic description of
//!   an arrival process. A process hands out [`InterArrivalSampler`]s that
//!   draw inter-arrival gaps from the caller's RNG, so request generation
//!   stays reproducible bit-for-bit and the constant-rate Poisson loop is
//!   recovered as the [`PoissonArrivals`] special case.
//! * Built-in processes — [`PoissonArrivals`], [`DiurnalArrivals`]
//!   (sinusoidal rate modulation), [`BurstyArrivals`] (two-state MMPP),
//!   [`FlashCrowd`] (baseline rate plus a spike window) and [`TraceReplay`]
//!   (inter-arrival gaps lifted from a [`janus_trace::Trace`]).
//! * [`ScenarioRegistry`] — scenarios addressable by name, mirroring
//!   `janus-core`'s `PolicyRegistry`: the built-ins are pre-registered and
//!   custom processes plug in through [`ScenarioRegistry::register_fn`]
//!   without touching any `janus-*` crate.
//! * [`MergedRequestSource`] — multi-tenant serving: k per-tenant arrival
//!   streams (one lazy generator each, seeded via [`tenant_stream_seed`])
//!   merged by next-arrival time into one bounded-memory request source
//!   holding exactly one pending arrival per stream.
//!
//! Every built-in scenario built through the registry is normalized to the
//! [`ScenarioContext`]'s base arrival rate: the long-run mean rate is the
//! same across scenarios, only the *shape* of the load differs. That makes
//! scenario sweeps paired in load as well as in requests.
//!
//! [`InterArrivalSampler`]: janus_workloads::request::InterArrivalSampler

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod registry;
pub mod tenancy;

pub use arrival::{
    ArrivalProcess, BurstyArrivals, DiurnalArrivals, FlashCrowd, PoissonArrivals, TraceReplay,
};
pub use registry::{ScenarioContext, ScenarioFactory, ScenarioRegistry};
pub use tenancy::{tenant_stream_seed, MergedRequestSource};
