//! The `janus` driver CLI: one binary for the whole evaluation.
//!
//! ```text
//! janus list                      # what can run, straight from the registries
//! janus run <experiment> [flags]  # one experiment by name
//! janus sweep <spec.json> [flags] # a declarative grid from a spec file
//!       [--results DIR]           # cache completed cells, skip warm ones
//!       [--resume] [--force]      # resume an interrupted sweep / rerun all
//! janus all [flags]               # every registered experiment
//! janus report <trace.jsonl>      # summarise a flight trace (--out writes CSV)
//! janus report <results-dir>      # aggregate a results store (--out writes CSV)
//! janus perf-check [path]         # gate a fresh perf run against the history
//! janus lint [--json]             # static analysis against the repo invariants
//! ```
//!
//! Parsing and execution are separated ([`parse`] / [`execute`]) so the
//! command surface is unit-testable without spawning processes; the `janus`
//! and `run_all` binaries are thin `main`s over this module.

use crate::BenchFlags;
use janus_chaos::FaultRegistry;
use janus_core::experiments::{
    check_against, comparable_mean, history_with_entry, latest_baseline, run_sweep_stored,
    today_utc, ExperimentRegistry, ResultsReport, Scale, StoreMode, SweepSpec, TraceSink,
};
use janus_core::registry::PolicyRegistry;
use janus_json::Value;
use janus_observe::{ObserverRegistry, TraceReport};
use janus_platform::capacity::{AdmissionRegistry, AutoscalerRegistry};
use janus_scenarios::ScenarioRegistry;
use std::str::FromStr as _;

/// Usage string of the `janus` binary.
pub const USAGE: &str = "usage: janus <command> [flags]\n\
    commands:\n\
    \x20 list                 enumerate registered experiments, policies, scenarios,\n\
    \x20                      autoscalers, admission policies, fault injectors and\n\
    \x20                      observers\n\
    \x20 run <experiment>     run one experiment by name (see `janus list`)\n\
    \x20 sweep <spec.json>    run a declarative sweep grid from a JSON spec file;\n\
    \x20                      --results DIR caches completed cells content-addressed\n\
    \x20                      and skips warm ones, --resume requires DIR to exist\n\
    \x20                      (continue an interrupted sweep), --force reruns and\n\
    \x20                      overwrites every cell\n\
    \x20 all                  run every registered experiment\n\
    \x20 report <path>        summarise a JSONL flight trace, or aggregate a\n\
    \x20                      --results directory into per-axis tables (--out\n\
    \x20                      writes CSV either way)\n\
    \x20 perf-check [path]    rerun perf and fail on regression against the history\n\
    \x20                      at path (default BENCH_perf.json)\n\
    \x20 lint [--json]        scan crates/*/src against the workspace lint rules and\n\
    \x20                      the committed specs/lint_baseline.json; --json prints\n\
    \x20                      the machine-readable artefact, --out writes and\n\
    \x20                      decode-checks it\n\
    flags: [--quick | --paper] [--seed N] [--out PATH] [--trace PATH] [--help]\n\
    \x20 --quick      reduced scale; sweeps clamp profiling cost (samples, budget step)\n\
    \x20 --paper      paper scale (default)\n\
    \x20 --seed N     override the experiment seed (sweeps: replaces the seed axis)\n\
    \x20 --out PATH   write the result as JSON to PATH, then decode-check it\n\
    \x20 --trace PATH write the run's JSONL flight trace to PATH (implies the\n\
    \x20              flight-recorder observer; trace-capable experiments only)\n\
    \x20 --help       print this message";

/// A parsed `janus` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `janus list`
    List,
    /// `janus run <experiment>`
    Run(String),
    /// `janus sweep <spec.json> [--results DIR] [--resume] [--force]`
    Sweep {
        /// Spec file path.
        spec: String,
        /// Results-store directory (`--results DIR`).
        results: Option<String>,
        /// Require the store directory to already exist (`--resume`).
        resume: bool,
        /// Rerun and overwrite every cell (`--force`).
        force: bool,
    },
    /// `janus all`
    All,
    /// `janus report <trace.jsonl>`
    Report(String),
    /// `janus perf-check [path]`
    PerfCheck(Option<String>),
    /// `janus lint [--json]`
    Lint {
        /// Print the machine-readable artefact instead of rendered findings.
        json: bool,
    },
}

/// Parse a `janus` argument list (without the program name) into a command
/// and the shared flags. Errors carry the reason only; the binary appends
/// [`USAGE`].
pub fn parse<I>(args: I) -> Result<(Command, BenchFlags), String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter().peekable();
    let mut command = match args.next().as_deref() {
        None => return Err("missing command".into()),
        Some("list") => Command::List,
        Some("all") => Command::All,
        Some("run") => {
            let name = next_operand(&mut args, "run", "an experiment name")?;
            Command::Run(name)
        }
        Some("sweep") => {
            let path = next_operand(&mut args, "sweep", "a spec file path")?;
            Command::Sweep {
                spec: path,
                results: None,
                resume: false,
                force: false,
            }
        }
        Some("report") => {
            let path = next_operand(&mut args, "report", "a trace artefact path")?;
            Command::Report(path)
        }
        Some("perf-check") => {
            // The history path is optional: bare `janus perf-check` gates
            // against the committed BENCH_perf.json.
            let path = match args.peek() {
                Some(value) if !value.starts_with("--") => args.next(),
                _ => None,
            };
            Command::PerfCheck(path)
        }
        Some("lint") => Command::Lint { json: false },
        Some(other) => {
            return Err(format!(
                "unknown command `{other}`; expected list, run, sweep, all, report, \
                 perf-check or lint"
            ))
        }
    };
    let mut rest: Vec<String> = args.collect();
    if command == Command::List && !rest.is_empty() {
        return Err("`janus list` takes no flags".into());
    }
    if let Command::Sweep {
        results,
        resume,
        force,
        ..
    } = &mut command
    {
        // The store flags belong to the sweep command, not the shared
        // experiment flags: strip them here before BenchFlags sees the rest.
        let mut kept = Vec::with_capacity(rest.len());
        let mut it = rest.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--results" => {
                    if results.is_some() {
                        return Err("--results given twice".into());
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| "--results needs a directory".to_string())?;
                    if value.starts_with("--") {
                        return Err(format!("--results needs a directory, got flag `{value}`"));
                    }
                    *results = Some(value);
                }
                "--resume" => {
                    if *resume {
                        return Err("--resume given twice".into());
                    }
                    *resume = true;
                }
                "--force" => {
                    if *force {
                        return Err("--force given twice".into());
                    }
                    *force = true;
                }
                _ => kept.push(arg),
            }
        }
        rest = kept;
        if results.is_none() && (*resume || *force) {
            return Err(format!(
                "--{} needs --results DIR (there is no store to {} without one)",
                if *resume { "resume" } else { "force" },
                if *resume { "resume from" } else { "overwrite" },
            ));
        }
        if *resume && *force {
            return Err(
                "--resume and --force conflict: resume replays warm cells, force reruns them"
                    .into(),
            );
        }
    }
    if let Command::Lint { json } = &mut command {
        // Lint shares only `--out` with the experiment flags; scale, seed
        // and trace are meaningless for a static pass and are rejected so a
        // typo cannot silently no-op.
        let before = rest.len();
        rest.retain(|a| a != "--json");
        *json = rest.len() < before;
        if before - rest.len() > 1 {
            return Err("--json given twice".into());
        }
        let mut it = rest.iter();
        while let Some(arg) = it.next() {
            if arg == "--out" {
                it.next();
            } else {
                return Err(format!(
                    "`janus lint` takes only --json and --out, got `{arg}`"
                ));
            }
        }
    }
    let flags = BenchFlags::from_args(rest)?;
    Ok((command, flags))
}

fn next_operand<I>(
    args: &mut std::iter::Peekable<I>,
    command: &str,
    what: &str,
) -> Result<String, String>
where
    I: Iterator<Item = String>,
{
    match args.next() {
        Some(value) if !value.starts_with("--") => Ok(value),
        Some(flag) => Err(format!("`janus {command}` needs {what}, got flag `{flag}`")),
        None => Err(format!("`janus {command}` needs {what}")),
    }
}

/// Execute a parsed command. Returns `Err` with a human-readable message on
/// failure; the caller maps it to the exit code.
pub fn execute(command: &Command, flags: &BenchFlags) -> Result<(), String> {
    match command {
        Command::List => {
            print!("{}", listing());
            Ok(())
        }
        Command::Run(name) => run_experiment(name, flags),
        Command::Sweep {
            spec,
            results,
            resume,
            force,
        } => run_sweep_file(spec, results.as_deref(), *resume, *force, flags),
        Command::All => run_all(flags),
        Command::Report(path) => run_report(path, flags),
        Command::PerfCheck(path) => run_perf_check(path.as_deref(), flags),
        Command::Lint { json } => run_lint(*json, flags),
    }
}

/// The `janus list` text: every runnable name, straight from the registries
/// (so discoverability cannot drift from the code).
pub fn listing() -> String {
    let mut out = String::new();
    out.push_str("experiments (janus run <name>):\n");
    for (name, describe) in ExperimentRegistry::with_builtins().catalog() {
        out.push_str(&format!("  {name:<10} {describe}\n"));
    }
    let section = |out: &mut String, title: &str, names: Vec<&str>| {
        out.push_str(&format!("{title}: {}\n", names.join(", ")));
    };
    section(
        &mut out,
        "policies",
        PolicyRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "scenarios",
        ScenarioRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "autoscalers",
        AutoscalerRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "admission policies",
        AdmissionRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "fault injectors",
        FaultRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "observers",
        ObserverRegistry::with_builtins().names(),
    );
    out.push_str("lint rules (janus lint):\n");
    for (name, describe) in janus_lint::LintRegistry::with_builtins().catalog() {
        out.push_str(&format!("  {name:<17} {describe}\n"));
    }
    out
}

fn run_experiment(name: &str, flags: &BenchFlags) -> Result<(), String> {
    let registry = ExperimentRegistry::with_builtins();
    let mut ctx = flags.ctx();
    // `--trace` hands the experiment a shared sink; the context derives the
    // flight-recorder observer from its presence.
    let sink = flags.trace.as_ref().map(|_| TraceSink::new());
    if let Some(sink) = &sink {
        ctx = ctx.with_trace(sink.clone());
    }
    let output = registry.run(name, &ctx)?;
    print!("{}", output.summary());
    if let (Some(path), Some(sink)) = (&flags.trace, &sink) {
        write_trace(path, name, sink)?;
    }
    // `janus run perf --out` appends a dated entry to the perf history
    // rather than overwriting the committed baseline.
    let written = match (name, flags.out.as_deref()) {
        ("perf", Some(path)) => perf_history_doc(path, flags, output.to_json())?,
        _ => output.to_json(),
    };
    flags.write_out_value(&written);
    flags.verify_out(&written);
    Ok(())
}

/// Drain the trace sink to the `--trace` path. An empty sink is an error:
/// the user explicitly asked for a trace and silently writing nothing would
/// hide that the experiment never emits one.
fn write_trace(path: &str, name: &str, sink: &TraceSink) -> Result<(), String> {
    let lines = sink.take();
    if lines.is_empty() {
        return Err(format!(
            "--trace: experiment `{name}` emitted no trace lines \
             (trace-capable experiments: capacity, chaos_resilience)"
        ));
    }
    janus_results::write_atomic(std::path::Path::new(path), &lines)
        .map_err(|e| format!("failed to write trace {path}: {e}"))?;
    eprintln!("traced {path} ({} lines)", lines.lines().count());
    Ok(())
}

/// The document `janus run perf --out PATH` writes: the existing artefact
/// at PATH (a history, or the pre-history flat baseline) with the fresh
/// result appended as a dated entry of the current scale.
fn perf_history_doc(path: &str, flags: &BenchFlags, result: Value) -> Result<Value, String> {
    let existing = match std::fs::read_to_string(path) {
        Ok(text) => Some(
            janus_json::parse(&text)
                .map_err(|e| format!("existing {path} is not valid JSON: {e}"))?,
        ),
        Err(_) => None,
    };
    history_with_entry(existing.as_ref(), &result, flags.scale.name(), &today_utc())
}

fn run_report(path: &str, flags: &BenchFlags) -> Result<(), String> {
    // A directory is a results store (`janus sweep --results DIR`); a file
    // is a JSONL flight trace. Either way `--out` writes CSV.
    if std::path::Path::new(path).is_dir() {
        let store = janus_results::ResultsStore::open_existing(std::path::Path::new(path))?;
        let report = ResultsReport::from_store(&store)?;
        print!("{}", report.render());
        write_csv_out(flags, &report.to_csv())?;
        return Ok(());
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    let report = TraceReport::from_jsonl(&text).map_err(|e| format!("trace `{path}`: {e}"))?;
    print!("{}", report.render());
    // The telemetry artefact is CSV, not JSON: a spreadsheet-ready table,
    // already decode-checked via from_jsonl.
    write_csv_out(flags, &report.to_csv())
}

fn write_csv_out(flags: &BenchFlags, csv: &str) -> Result<(), String> {
    let Some(out) = &flags.out else { return Ok(()) };
    janus_results::write_atomic(std::path::Path::new(out), csv)
        .map_err(|e| format!("failed to write {out}: {e}"))?;
    eprintln!(
        "wrote {out} (CSV, {} data rows)",
        csv.lines().count().saturating_sub(1)
    );
    Ok(())
}

fn run_perf_check(path: Option<&str>, flags: &BenchFlags) -> Result<(), String> {
    let path = path.unwrap_or("BENCH_perf.json");
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read perf history `{path}`: {e}"))?;
    let history = janus_json::parse(&text)
        .map_err(|e| format!("perf history `{path}` is not valid JSON: {e}"))?;
    let scale = flags.scale.name();
    let baseline = latest_baseline(&history, scale)?.ok_or_else(|| {
        format!(
            "perf history `{path}` has no {scale}-scale entry; record one with \
             `janus run perf{} --out {path}`",
            if flags.scale == Scale::Quick {
                " --quick"
            } else {
                ""
            }
        )
    })?;
    let output = ExperimentRegistry::with_builtins().run("perf", &flags.ctx())?;
    print!("{}", output.summary());
    // Same-shape comparison on both sides: slice-backed cells only, so the
    // streaming cell never gates (or excuses) a slice-path regression.
    let fresh = comparable_mean(&output.to_json()).map_err(|e| format!("fresh perf run: {e}"))?;
    let verdict = check_against(&baseline, fresh)?;
    println!("{verdict}");
    Ok(())
}

/// `janus lint`: scan the workspace sources with the rule registry, apply
/// inline directives, and gate against the committed burn-down baseline.
/// `--json` prints the machine-readable artefact instead of rendered
/// findings; `--out` writes it and decode-checks the read-back (both the
/// raw JSON and the typed diagnostic decode).
fn run_lint(json: bool, flags: &BenchFlags) -> Result<(), String> {
    // The front end lints whichever workspace the user invoked it in, so
    // the cwd lookup is the sanctioned entry-point read.
    // janus-lint: allow(nondeterminism) — locating the workspace to lint, not simulation state
    let cwd = std::env::current_dir();
    let cwd = cwd.map_err(|e| format!("cannot read the current directory: {e}"))?;
    let root = janus_lint::find_workspace_root(&cwd).ok_or(
        "no workspace root (a directory holding Cargo.toml and crates/) above the current directory",
    )?;
    let registry = janus_lint::LintRegistry::with_builtins();
    let config = janus_lint::LintConfig::workspace_default();
    let run = janus_lint::lint_workspace(&root, &registry, &config)?;
    let baseline = janus_lint::load_baseline(&root)?;
    let verdict = janus_lint::compare_to_baseline(&run.diagnostics, &baseline);
    let artefact = janus_lint::run_to_json(&run);
    if json {
        println!("{}", artefact.to_pretty());
    } else {
        for diagnostic in &run.diagnostics {
            println!("{}", diagnostic.render());
        }
        println!(
            "linted {} files with {} rules: {} finding{} ({} suppressed by directives)",
            run.files_scanned,
            run.rules.len(),
            run.diagnostics.len(),
            if run.diagnostics.len() == 1 { "" } else { "s" },
            run.suppressed
        );
    }
    flags.write_out_value(&artefact);
    flags.verify_out(&artefact);
    if flags.out.is_some() {
        // Beyond the raw JSON round-trip: the typed decode must reproduce
        // the diagnostics exactly.
        let decoded = janus_lint::diagnostics_from_json(&artefact)?;
        if decoded != run.diagnostics {
            return Err("lint artefact did not decode back to the reported diagnostics".into());
        }
    }
    for (rule, path, current, allowed) in &verdict.improved {
        eprintln!(
            "baseline is stale: `{rule}` at {path} is down to {current} \
             (baseline tolerates {allowed}); tighten {}",
            janus_lint::BASELINE_PATH
        );
    }
    if verdict.is_clean() {
        Ok(())
    } else {
        let lines: Vec<String> = verdict
            .regressions
            .iter()
            .map(|(rule, path, current, allowed)| {
                format!("{path}: {current}x {rule} (baseline tolerates {allowed})")
            })
            .collect();
        Err(format!(
            "lint found {} (rule, file) group{} over the baseline:\n  {}\n\
             fix the findings, justify them with `// janus-lint: allow(rule)`, \
             or extend {}",
            lines.len(),
            if lines.len() == 1 { "" } else { "s" },
            lines.join("\n  "),
            janus_lint::BASELINE_PATH
        ))
    }
}

/// Apply the flags to a decoded sweep spec: `--seed` replaces the seed axis
/// (one-off reproduction runs), `--quick` clamps the profiling cost knobs
/// (`samples_per_point` ≤ 300, `budget_step_ms` ≥ 5) while leaving the grid
/// axes exactly as written.
pub fn apply_flags_to_spec(spec: &mut SweepSpec, flags: &BenchFlags) {
    if let Some(seed) = flags.seed {
        spec.seeds = vec![seed];
    }
    if flags.scale == Scale::Quick {
        spec.samples_per_point = spec.samples_per_point.min(300);
        spec.budget_step_ms = spec.budget_step_ms.max(5.0);
    }
}

fn run_sweep_file(
    path: &str,
    results: Option<&str>,
    resume: bool,
    force: bool,
    flags: &BenchFlags,
) -> Result<(), String> {
    let store = match results {
        // `--resume` insists the directory exists: resuming a sweep that
        // never started is almost always a mistyped path.
        Some(dir) if resume => Some(janus_results::ResultsStore::open_existing(
            std::path::Path::new(dir),
        )?),
        Some(dir) => Some(janus_results::ResultsStore::open(std::path::Path::new(
            dir,
        ))?),
        None => None,
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec `{path}`: {e}"))?;
    let mut spec = SweepSpec::from_str(&text).map_err(|e| format!("spec `{path}`: {e}"))?;
    // Flags apply before the store lookup so the cache is keyed by the
    // *effective* per-point spec: `--quick` and `--seed` runs hash to their
    // own cells rather than colliding with paper-scale ones.
    apply_flags_to_spec(&mut spec, flags);
    let total = spec.grid_size();
    println!(
        "sweep `{}`: {} grid points x {} policies",
        spec.name,
        total,
        spec.policies.len()
    );
    let mode = if force {
        StoreMode::Force
    } else {
        StoreMode::Reuse
    };
    let result = run_sweep_stored(&spec, store.as_ref().map(|s| (s, mode)), &|point| {
        println!("{}", point.progress_line(total));
    })?;
    print!("{result}");
    if let Some(dir) = results {
        let hits = result.cache_hits;
        let ran = result.points.len() - hits;
        let pct = if result.points.is_empty() {
            100.0
        } else {
            hits as f64 * 100.0 / result.points.len() as f64
        };
        println!(
            "results {dir}: {hits}/{} cells cached ({pct:.0}%), {ran} run",
            result.points.len()
        );
    }
    let written = janus_core::experiments::ToJson::to_json(&result);
    flags.write_out_value(&written);
    flags.verify_out(&written);
    Ok(())
}

fn run_all(flags: &BenchFlags) -> Result<(), String> {
    let registry = ExperimentRegistry::with_builtins();
    let ctx = flags.ctx();
    let mut out: Vec<(String, Value)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for experiment in registry.names() {
        println!("===== {experiment} =====");
        match registry.run(experiment, &ctx) {
            Ok(output) => {
                print!("{}", output.summary());
                if flags.out.is_some() {
                    out.push((experiment.to_string(), output.to_json()));
                }
            }
            // One broken experiment must not hide the remaining results;
            // collect and fail at the end.
            Err(e) => {
                eprintln!("{experiment} failed: {e}");
                failures.push(format!("{experiment}: {e}"));
            }
        }
        println!();
    }
    // Write whatever completed even when something failed: a paper-scale
    // run is hours of compute, and the old `run_all` always wrote the
    // collected document.
    let written = Value::Obj(out);
    flags.write_out_value(&written);
    flags.verify_out(&written);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} experiments failed:\n  {}",
            failures.len(),
            registry.len(),
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_cli(args: &[&str]) -> Result<(Command, BenchFlags), String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn commands_parse_with_flags() {
        assert_eq!(parse_cli(&["list"]).unwrap().0, Command::List);
        assert_eq!(parse_cli(&["all"]).unwrap().0, Command::All);
        let (cmd, flags) = parse_cli(&["run", "perf", "--quick", "--seed", "3"]).unwrap();
        assert_eq!(cmd, Command::Run("perf".into()));
        assert_eq!(flags.scale, Scale::Quick);
        assert_eq!(flags.seed, Some(3));
        let (cmd, _) = parse_cli(&["sweep", "specs/smoke.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                spec: "specs/smoke.json".into(),
                results: None,
                resume: false,
                force: false,
            }
        );
        // The store flags are sweep-specific and compose with shared flags.
        let (cmd, flags) =
            parse_cli(&["sweep", "s.json", "--results", "results", "--quick"]).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                spec: "s.json".into(),
                results: Some("results".into()),
                resume: false,
                force: false,
            }
        );
        assert_eq!(flags.scale, Scale::Quick);
        let (cmd, _) = parse_cli(&["sweep", "s.json", "--resume", "--results", "results"]).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                spec: "s.json".into(),
                results: Some("results".into()),
                resume: true,
                force: false,
            }
        );
        let (cmd, _) = parse_cli(&["sweep", "s.json", "--results", "r", "--force"]).unwrap();
        assert!(matches!(cmd, Command::Sweep { force: true, .. }));
        let (cmd, flags) = parse_cli(&["run", "capacity", "--trace", "out.jsonl"]).unwrap();
        assert_eq!(cmd, Command::Run("capacity".into()));
        assert_eq!(flags.trace.as_deref(), Some("out.jsonl"));
        let (cmd, _) = parse_cli(&["report", "out.jsonl"]).unwrap();
        assert_eq!(cmd, Command::Report("out.jsonl".into()));
        // perf-check's history path is optional; flags still parse after it.
        let (cmd, _) = parse_cli(&["perf-check"]).unwrap();
        assert_eq!(cmd, Command::PerfCheck(None));
        let (cmd, flags) = parse_cli(&["perf-check", "h.json", "--quick"]).unwrap();
        assert_eq!(cmd, Command::PerfCheck(Some("h.json".into())));
        assert_eq!(flags.scale, Scale::Quick);
        let (cmd, flags) = parse_cli(&["perf-check", "--quick"]).unwrap();
        assert_eq!(cmd, Command::PerfCheck(None));
        assert_eq!(flags.scale, Scale::Quick);
        // lint: bare, --json, and --out all parse; --json is its own flag.
        let (cmd, flags) = parse_cli(&["lint"]).unwrap();
        assert_eq!(cmd, Command::Lint { json: false });
        assert_eq!(flags, BenchFlags::default());
        let (cmd, flags) = parse_cli(&["lint", "--json", "--out", "lint.json"]).unwrap();
        assert_eq!(cmd, Command::Lint { json: true });
        assert_eq!(flags.out.as_deref(), Some("lint.json"));
    }

    #[test]
    fn bad_invocations_error_with_the_reason() {
        assert!(parse_cli(&[]).unwrap_err().contains("missing command"));
        let err = parse_cli(&["rnu"]).unwrap_err();
        assert!(err.contains("unknown command `rnu`"), "{err}");
        let err = parse_cli(&["run"]).unwrap_err();
        assert!(err.contains("needs an experiment name"), "{err}");
        let err = parse_cli(&["run", "--quick"]).unwrap_err();
        assert!(err.contains("got flag `--quick`"), "{err}");
        let err = parse_cli(&["sweep"]).unwrap_err();
        assert!(err.contains("needs a spec file path"), "{err}");
        // Store-flag misuse fails in parse, before any session is spent.
        let err = parse_cli(&["sweep", "s.json", "--results"]).unwrap_err();
        assert!(err.contains("--results needs a directory"), "{err}");
        let err = parse_cli(&["sweep", "s.json", "--results", "--quick"]).unwrap_err();
        assert!(err.contains("got flag `--quick`"), "{err}");
        let err = parse_cli(&["sweep", "s.json", "--resume"]).unwrap_err();
        assert!(err.contains("--resume needs --results"), "{err}");
        let err = parse_cli(&["sweep", "s.json", "--force"]).unwrap_err();
        assert!(err.contains("--force needs --results"), "{err}");
        let err =
            parse_cli(&["sweep", "s.json", "--results", "r", "--resume", "--force"]).unwrap_err();
        assert!(err.contains("--resume and --force conflict"), "{err}");
        let err = parse_cli(&["sweep", "s.json", "--results", "r", "--results", "r"]).unwrap_err();
        assert!(err.contains("--results given twice"), "{err}");
        // Run/report do not accept the sweep-only store flags.
        let err = parse_cli(&["run", "perf", "--results", "r"]).unwrap_err();
        assert!(err.contains("unknown flag `--results`"), "{err}");
        let err = parse_cli(&["report"]).unwrap_err();
        assert!(err.contains("needs a trace artefact path"), "{err}");
        let err = parse_cli(&["report", "--quick"]).unwrap_err();
        assert!(err.contains("got flag `--quick`"), "{err}");
        let err = parse_cli(&["run", "perf", "--warp"]).unwrap_err();
        assert!(err.contains("unknown flag `--warp`"), "{err}");
        let err = parse_cli(&["list", "--quick"]).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");
        // Uniform across flag classes: even a no-op flag is rejected.
        let err = parse_cli(&["list", "--paper"]).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");
        // lint rejects the experiment flags — a static pass has no scale,
        // seed or trace — and duplicate --json.
        let err = parse_cli(&["lint", "--quick"]).unwrap_err();
        assert!(err.contains("takes only --json and --out"), "{err}");
        let err = parse_cli(&["lint", "--seed", "3"]).unwrap_err();
        assert!(err.contains("takes only --json and --out"), "{err}");
        let err = parse_cli(&["lint", "--json", "--json"]).unwrap_err();
        assert!(err.contains("--json given twice"), "{err}");
    }

    #[test]
    fn unknown_experiments_fail_with_the_registered_list() {
        let err = execute(&Command::Run("fig99".into()), &BenchFlags::default()).unwrap_err();
        assert!(err.contains("unknown experiment `fig99`"), "{err}");
        assert!(err.contains("perf"), "{err}");
        let err = execute(
            &Command::Sweep {
                spec: "specs/no_such_spec.json".into(),
                results: None,
                resume: false,
                force: false,
            },
            &BenchFlags::default(),
        )
        .unwrap_err();
        assert!(err.contains("cannot read spec"), "{err}");
        // `--resume` against a directory that was never created is an
        // error, caught before any cell runs.
        let err = execute(
            &Command::Sweep {
                spec: "specs/smoke.json".into(),
                results: Some(temp_path("janus_cli_never_created_store")),
                resume: true,
                force: false,
            },
            &BenchFlags::default(),
        )
        .unwrap_err();
        assert!(err.contains("nothing to resume"), "{err}");
    }

    #[test]
    fn listing_is_driven_by_the_registries() {
        let listing = listing();
        for needle in [
            "experiments (janus run <name>):",
            "fig1a",
            "perf",
            "policies: Optimal, ORION",
            "scenarios: poisson",
            "flash-crowd",
            "autoscalers: static, utilization, queue-depth",
            "admission policies: admit-all, token-bucket, queue-shed",
            "fault injectors: node-crash, spot-preempt, zone-outage, slow-node",
            "observers: ring, trace, spans, time-series, flight-recorder",
            "chaos_resilience",
            "lint rules (janus lint):",
            "nondeterminism",
            "unwrap-discipline",
            "emit-discipline",
        ] {
            assert!(
                listing.contains(needle),
                "missing `{needle}` in:\n{listing}"
            );
        }
    }

    #[test]
    fn quick_flag_clamps_spec_cost_knobs_but_not_axes() {
        let mut spec = SweepSpec {
            name: "x".into(),
            app: janus_workloads::apps::PaperApp::IntelligentAssistant,
            concurrency: 1,
            policies: vec!["Janus".into()],
            scenarios: vec!["poisson".into(), "bursty".into()],
            loads_rps: vec![1.0, 4.0],
            seeds: vec![1, 2, 3],
            autoscalers: None,
            admissions: None,
            faults: None,
            observers: None,
            cluster: None,
            tenants: None,
            requests: 500,
            samples_per_point: 1000,
            budget_step_ms: 1.0,
        };
        let quick = BenchFlags {
            scale: Scale::Quick,
            ..BenchFlags::default()
        };
        apply_flags_to_spec(&mut spec, &quick);
        assert_eq!(spec.samples_per_point, 300);
        assert!((spec.budget_step_ms - 5.0).abs() < 1e-12);
        assert_eq!(spec.requests, 500, "grid axes stay as written");
        assert_eq!(spec.seeds, vec![1, 2, 3]);
        let seeded = BenchFlags {
            seed: Some(42),
            ..BenchFlags::default()
        };
        apply_flags_to_spec(&mut spec, &seeded);
        assert_eq!(spec.seeds, vec![42], "--seed replaces the seed axis");
    }

    fn temp_path(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn trace_flag_writes_a_reportable_artefact_and_the_csv_has_no_degenerate_cells() {
        let trace_path = temp_path("janus_cli_trace_test.jsonl");
        let csv_path = temp_path("janus_cli_trace_test.csv");
        let flags = BenchFlags {
            scale: Scale::Quick,
            seed: Some(7),
            trace: Some(trace_path.clone()),
            ..BenchFlags::default()
        };
        execute(&Command::Run("capacity".into()), &flags).unwrap();
        let text = std::fs::read_to_string(&trace_path).expect("trace written");
        let decoded = TraceReport::from_jsonl(&text).expect("trace decodes");
        assert!(!decoded.policies.is_empty());

        // `janus report` renders the artefact and `--out` writes its CSV.
        let report_flags = BenchFlags {
            out: Some(csv_path.clone()),
            ..BenchFlags::default()
        };
        execute(&Command::Report(trace_path.clone()), &report_flags).unwrap();
        let csv = std::fs::read_to_string(&csv_path).expect("csv written");
        let mut lines = csv.lines();
        let header = lines.next().expect("csv header");
        assert!(header.starts_with("policy,at_ms,"), "{header}");
        let mut cells = 0usize;
        for line in lines {
            // Every numeric cell must round-trip as a finite f64 — a NaN or
            // inf cell would silently poison a spreadsheet import.
            for cell in line.split(',').skip(1) {
                let value: f64 = cell
                    .parse()
                    .unwrap_or_else(|e| panic!("cell `{cell}` in `{line}` is not a number: {e}"));
                assert!(value.is_finite(), "cell `{cell}` in `{line}`");
                cells += 1;
            }
        }
        assert!(cells > 0, "csv has data rows");

        // Experiments without a trace hook refuse --trace loudly.
        let err = execute(&Command::Run("fig1a".into()), &flags).unwrap_err();
        assert!(err.contains("emitted no trace lines"), "{err}");
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&csv_path);
    }

    #[test]
    fn sweep_results_store_resumes_and_reports_end_to_end() {
        let spec_path = temp_path("janus_cli_store_spec.json");
        let dir = temp_path("janus_cli_store_results");
        let csv_path = temp_path("janus_cli_store_report.csv");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::write(
            &spec_path,
            r#"{
                "name": "cli-store",
                "app": "IA",
                "concurrency": 1,
                "policies": ["GrandSLAM"],
                "scenarios": ["poisson"],
                "loads_rps": [2],
                "seeds": [7, 11],
                "requests": 30,
                "samples_per_point": 250,
                "budget_step_ms": 10
            }"#,
        )
        .unwrap();
        let flags = BenchFlags {
            scale: Scale::Quick,
            ..BenchFlags::default()
        };
        let cold = Command::Sweep {
            spec: spec_path.clone(),
            results: Some(dir.clone()),
            resume: false,
            force: false,
        };
        execute(&cold, &flags).unwrap();
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            2,
            "one cell file per grid point"
        );
        // A warm `--resume` replays both cells without touching the store.
        let warm = Command::Sweep {
            spec: spec_path.clone(),
            results: Some(dir.clone()),
            resume: true,
            force: false,
        };
        execute(&warm, &flags).unwrap();

        // `janus report <dir>` aggregates the store; `--out` writes CSV.
        let report_flags = BenchFlags {
            out: Some(csv_path.clone()),
            ..BenchFlags::default()
        };
        execute(&Command::Report(dir.clone()), &report_flags).unwrap();
        let csv = std::fs::read_to_string(&csv_path).expect("csv written");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per (cell, policy): {csv}");
        assert!(lines[0].starts_with("scenario,rps,seed,"), "{csv}");
        assert!(lines[1].contains("GrandSLAM"), "{csv}");

        let _ = std::fs::remove_file(&spec_path);
        let _ = std::fs::remove_file(&csv_path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lint_runs_clean_and_writes_a_decodable_artefact() {
        let out = temp_path("janus_cli_lint_artefact_test.json");
        let flags = BenchFlags {
            out: Some(out.clone()),
            ..BenchFlags::default()
        };
        // Clean against the committed baseline, or this (and CI) fails.
        execute(&Command::Lint { json: false }, &flags).unwrap();
        let doc = janus_json::parse(&std::fs::read_to_string(&out).expect("artefact written"))
            .expect("artefact is valid JSON");
        assert_eq!(doc.require("tool").unwrap().as_str(), Some("janus-lint"));
        assert_eq!(
            doc.require("rules").unwrap().as_array().map(<[_]>::len),
            Some(5)
        );
        // The typed decode accepts the artefact it just wrote.
        janus_lint::diagnostics_from_json(&doc).expect("artefact decodes to diagnostics");
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn perf_out_appends_dated_entries_to_the_history() {
        let path = temp_path("janus_cli_perf_history_append_test.json");
        let _ = std::fs::remove_file(&path);
        let flags = BenchFlags {
            scale: Scale::Quick,
            seed: Some(11),
            out: Some(path.clone()),
            ..BenchFlags::default()
        };
        execute(&Command::Run("perf".into()), &flags).unwrap();
        execute(&Command::Run("perf".into()), &flags).unwrap();
        let doc = janus_json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.require("experiment").unwrap().as_str(),
            Some("perf-history")
        );
        let entries = doc.require("entries").unwrap().as_array().unwrap().to_vec();
        assert_eq!(entries.len(), 2, "second run appends, not overwrites");
        for entry in &entries {
            assert_eq!(entry.require("scale").unwrap().as_str(), Some("quick"));
            assert!(entry
                .require("result")
                .and_then(|r| r.require("mean_events_per_sec"))
                .unwrap()
                .as_f64()
                .unwrap()
                .is_finite());
        }
        // The gate finds the appended entry as its quick baseline.
        let baseline = latest_baseline(&doc, "quick").unwrap().unwrap();
        assert!(baseline.mean_events_per_sec > 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn perf_check_gates_against_the_history_at_the_given_path() {
        let quick = BenchFlags {
            scale: Scale::Quick,
            seed: Some(3),
            ..BenchFlags::default()
        };
        // Missing file and missing matching-scale entry fail with guidance
        // before any perf run is spent.
        let err = execute(
            &Command::PerfCheck(Some(temp_path("janus_no_such_history.json"))),
            &quick,
        )
        .unwrap_err();
        assert!(err.contains("cannot read perf history"), "{err}");
        let paper_only = temp_path("janus_cli_perf_check_paper_only.json");
        let flat = Value::Obj(vec![
            ("experiment".to_string(), Value::Str("perf".to_string())),
            ("mean_events_per_sec".to_string(), Value::Num(1e6)),
        ]);
        std::fs::write(&paper_only, flat.to_pretty()).unwrap();
        let err = execute(&Command::PerfCheck(Some(paper_only.clone())), &quick).unwrap_err();
        assert!(err.contains("no quick-scale entry"), "{err}");
        assert!(err.contains("janus run perf --quick"), "{err}");

        // An absurdly fast committed baseline makes any fresh run a
        // regression — the failure carries both figures.
        let impossible = temp_path("janus_cli_perf_check_impossible.json");
        let history = history_with_entry(
            None,
            &Value::Obj(vec![("mean_events_per_sec".to_string(), Value::Num(1e18))]),
            "quick",
            "2026-08-07",
        )
        .unwrap();
        std::fs::write(&impossible, history.to_pretty()).unwrap();
        let err = execute(&Command::PerfCheck(Some(impossible.clone())), &quick).unwrap_err();
        assert!(err.contains("perf regression"), "{err}");
        assert!(err.contains("2026-08-07"), "{err}");
        let _ = std::fs::remove_file(&paper_only);
        let _ = std::fs::remove_file(&impossible);
    }
}
