//! The `janus` driver CLI: one binary for the whole evaluation.
//!
//! ```text
//! janus list                      # what can run, straight from the registries
//! janus run <experiment> [flags]  # one experiment by name
//! janus sweep <spec.json> [flags] # a declarative grid from a spec file
//! janus all [flags]               # every registered experiment
//! ```
//!
//! Parsing and execution are separated ([`parse`] / [`execute`]) so the
//! command surface is unit-testable without spawning processes; the `janus`
//! and `run_all` binaries are thin `main`s over this module.

use crate::BenchFlags;
use janus_chaos::FaultRegistry;
use janus_core::experiments::{run_sweep_streaming, ExperimentRegistry, Scale, SweepSpec};
use janus_core::registry::PolicyRegistry;
use janus_json::Value;
use janus_platform::capacity::{AdmissionRegistry, AutoscalerRegistry};
use janus_scenarios::ScenarioRegistry;
use std::str::FromStr as _;

/// Usage string of the `janus` binary.
pub const USAGE: &str = "usage: janus <command> [flags]\n\
    commands:\n\
    \x20 list                 enumerate registered experiments, policies, scenarios,\n\
    \x20                      autoscalers, admission policies and fault injectors\n\
    \x20 run <experiment>     run one experiment by name (see `janus list`)\n\
    \x20 sweep <spec.json>    run a declarative sweep grid from a JSON spec file\n\
    \x20 all                  run every registered experiment\n\
    flags: [--quick | --paper] [--seed N] [--out PATH] [--help]\n\
    \x20 --quick    reduced scale; sweeps clamp profiling cost (samples, budget step)\n\
    \x20 --paper    paper scale (default)\n\
    \x20 --seed N   override the experiment seed (sweeps: replaces the seed axis)\n\
    \x20 --out PATH write the result as JSON to PATH, then decode-check it\n\
    \x20 --help     print this message";

/// A parsed `janus` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `janus list`
    List,
    /// `janus run <experiment>`
    Run(String),
    /// `janus sweep <spec.json>`
    Sweep(String),
    /// `janus all`
    All,
}

/// Parse a `janus` argument list (without the program name) into a command
/// and the shared flags. Errors carry the reason only; the binary appends
/// [`USAGE`].
pub fn parse<I>(args: I) -> Result<(Command, BenchFlags), String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter().peekable();
    let command = match args.next().as_deref() {
        None => return Err("missing command".into()),
        Some("list") => Command::List,
        Some("all") => Command::All,
        Some("run") => {
            let name = next_operand(&mut args, "run", "an experiment name")?;
            Command::Run(name)
        }
        Some("sweep") => {
            let path = next_operand(&mut args, "sweep", "a spec file path")?;
            Command::Sweep(path)
        }
        Some(other) => {
            return Err(format!(
                "unknown command `{other}`; expected list, run, sweep or all"
            ))
        }
    };
    let rest: Vec<String> = args.collect();
    if command == Command::List && !rest.is_empty() {
        return Err("`janus list` takes no flags".into());
    }
    let flags = BenchFlags::from_args(rest)?;
    Ok((command, flags))
}

fn next_operand<I>(
    args: &mut std::iter::Peekable<I>,
    command: &str,
    what: &str,
) -> Result<String, String>
where
    I: Iterator<Item = String>,
{
    match args.next() {
        Some(value) if !value.starts_with("--") => Ok(value),
        Some(flag) => Err(format!("`janus {command}` needs {what}, got flag `{flag}`")),
        None => Err(format!("`janus {command}` needs {what}")),
    }
}

/// Execute a parsed command. Returns `Err` with a human-readable message on
/// failure; the caller maps it to the exit code.
pub fn execute(command: &Command, flags: &BenchFlags) -> Result<(), String> {
    match command {
        Command::List => {
            print!("{}", listing());
            Ok(())
        }
        Command::Run(name) => run_experiment(name, flags),
        Command::Sweep(path) => run_sweep_file(path, flags),
        Command::All => run_all(flags),
    }
}

/// The `janus list` text: every runnable name, straight from the registries
/// (so discoverability cannot drift from the code).
pub fn listing() -> String {
    let mut out = String::new();
    out.push_str("experiments (janus run <name>):\n");
    for (name, describe) in ExperimentRegistry::with_builtins().catalog() {
        out.push_str(&format!("  {name:<10} {describe}\n"));
    }
    let section = |out: &mut String, title: &str, names: Vec<&str>| {
        out.push_str(&format!("{title}: {}\n", names.join(", ")));
    };
    section(
        &mut out,
        "policies",
        PolicyRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "scenarios",
        ScenarioRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "autoscalers",
        AutoscalerRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "admission policies",
        AdmissionRegistry::with_builtins().names(),
    );
    section(
        &mut out,
        "fault injectors",
        FaultRegistry::with_builtins().names(),
    );
    out
}

fn run_experiment(name: &str, flags: &BenchFlags) -> Result<(), String> {
    let registry = ExperimentRegistry::with_builtins();
    let output = registry.run(name, &flags.ctx())?;
    print!("{}", output.summary());
    let written = output.to_json();
    flags.write_out_value(&written);
    flags.verify_out(&written);
    Ok(())
}

/// Apply the flags to a decoded sweep spec: `--seed` replaces the seed axis
/// (one-off reproduction runs), `--quick` clamps the profiling cost knobs
/// (`samples_per_point` ≤ 300, `budget_step_ms` ≥ 5) while leaving the grid
/// axes exactly as written.
pub fn apply_flags_to_spec(spec: &mut SweepSpec, flags: &BenchFlags) {
    if let Some(seed) = flags.seed {
        spec.seeds = vec![seed];
    }
    if flags.scale == Scale::Quick {
        spec.samples_per_point = spec.samples_per_point.min(300);
        spec.budget_step_ms = spec.budget_step_ms.max(5.0);
    }
}

fn run_sweep_file(path: &str, flags: &BenchFlags) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec `{path}`: {e}"))?;
    let mut spec = SweepSpec::from_str(&text).map_err(|e| format!("spec `{path}`: {e}"))?;
    apply_flags_to_spec(&mut spec, flags);
    let total = spec.grid_size();
    println!(
        "sweep `{}`: {} grid points x {} policies",
        spec.name,
        total,
        spec.policies.len()
    );
    let result = run_sweep_streaming(&spec, &|point| {
        println!("{}", point.progress_line(total));
    })?;
    print!("{result}");
    let written = janus_core::experiments::ToJson::to_json(&result);
    flags.write_out_value(&written);
    flags.verify_out(&written);
    Ok(())
}

fn run_all(flags: &BenchFlags) -> Result<(), String> {
    let registry = ExperimentRegistry::with_builtins();
    let ctx = flags.ctx();
    let mut out: Vec<(String, Value)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for experiment in registry.names() {
        println!("===== {experiment} =====");
        match registry.run(experiment, &ctx) {
            Ok(output) => {
                print!("{}", output.summary());
                if flags.out.is_some() {
                    out.push((experiment.to_string(), output.to_json()));
                }
            }
            // One broken experiment must not hide the remaining results;
            // collect and fail at the end.
            Err(e) => {
                eprintln!("{experiment} failed: {e}");
                failures.push(format!("{experiment}: {e}"));
            }
        }
        println!();
    }
    // Write whatever completed even when something failed: a paper-scale
    // run is hours of compute, and the old `run_all` always wrote the
    // collected document.
    let written = Value::Obj(out);
    flags.write_out_value(&written);
    flags.verify_out(&written);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} experiments failed:\n  {}",
            failures.len(),
            registry.len(),
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_cli(args: &[&str]) -> Result<(Command, BenchFlags), String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn commands_parse_with_flags() {
        assert_eq!(parse_cli(&["list"]).unwrap().0, Command::List);
        assert_eq!(parse_cli(&["all"]).unwrap().0, Command::All);
        let (cmd, flags) = parse_cli(&["run", "perf", "--quick", "--seed", "3"]).unwrap();
        assert_eq!(cmd, Command::Run("perf".into()));
        assert_eq!(flags.scale, Scale::Quick);
        assert_eq!(flags.seed, Some(3));
        let (cmd, _) = parse_cli(&["sweep", "specs/smoke.json"]).unwrap();
        assert_eq!(cmd, Command::Sweep("specs/smoke.json".into()));
    }

    #[test]
    fn bad_invocations_error_with_the_reason() {
        assert!(parse_cli(&[]).unwrap_err().contains("missing command"));
        let err = parse_cli(&["rnu"]).unwrap_err();
        assert!(err.contains("unknown command `rnu`"), "{err}");
        let err = parse_cli(&["run"]).unwrap_err();
        assert!(err.contains("needs an experiment name"), "{err}");
        let err = parse_cli(&["run", "--quick"]).unwrap_err();
        assert!(err.contains("got flag `--quick`"), "{err}");
        let err = parse_cli(&["sweep"]).unwrap_err();
        assert!(err.contains("needs a spec file path"), "{err}");
        let err = parse_cli(&["run", "perf", "--warp"]).unwrap_err();
        assert!(err.contains("unknown flag `--warp`"), "{err}");
        let err = parse_cli(&["list", "--quick"]).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");
        // Uniform across flag classes: even a no-op flag is rejected.
        let err = parse_cli(&["list", "--paper"]).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");
    }

    #[test]
    fn unknown_experiments_fail_with_the_registered_list() {
        let err = execute(&Command::Run("fig99".into()), &BenchFlags::default()).unwrap_err();
        assert!(err.contains("unknown experiment `fig99`"), "{err}");
        assert!(err.contains("perf"), "{err}");
        let err = execute(
            &Command::Sweep("specs/no_such_spec.json".into()),
            &BenchFlags::default(),
        )
        .unwrap_err();
        assert!(err.contains("cannot read spec"), "{err}");
    }

    #[test]
    fn listing_is_driven_by_the_registries() {
        let listing = listing();
        for needle in [
            "experiments (janus run <name>):",
            "fig1a",
            "perf",
            "policies: Optimal, ORION",
            "scenarios: poisson",
            "flash-crowd",
            "autoscalers: static, utilization, queue-depth",
            "admission policies: admit-all, token-bucket, queue-shed",
            "fault injectors: node-crash, spot-preempt, zone-outage, slow-node",
            "chaos_resilience",
        ] {
            assert!(
                listing.contains(needle),
                "missing `{needle}` in:\n{listing}"
            );
        }
    }

    #[test]
    fn quick_flag_clamps_spec_cost_knobs_but_not_axes() {
        let mut spec = SweepSpec {
            name: "x".into(),
            app: janus_workloads::apps::PaperApp::IntelligentAssistant,
            concurrency: 1,
            policies: vec!["Janus".into()],
            scenarios: vec!["poisson".into(), "bursty".into()],
            loads_rps: vec![1.0, 4.0],
            seeds: vec![1, 2, 3],
            autoscalers: None,
            admissions: None,
            faults: None,
            cluster: None,
            requests: 500,
            samples_per_point: 1000,
            budget_step_ms: 1.0,
        };
        let quick = BenchFlags {
            scale: Scale::Quick,
            ..BenchFlags::default()
        };
        apply_flags_to_spec(&mut spec, &quick);
        assert_eq!(spec.samples_per_point, 300);
        assert!((spec.budget_step_ms - 5.0).abs() < 1e-12);
        assert_eq!(spec.requests, 500, "grid axes stay as written");
        assert_eq!(spec.seeds, vec![1, 2, 3]);
        let seeded = BenchFlags {
            seed: Some(42),
            ..BenchFlags::default()
        };
        apply_flags_to_spec(&mut spec, &seeded);
        assert_eq!(spec.seeds, vec![42], "--seed replaces the seed axis");
    }
}
