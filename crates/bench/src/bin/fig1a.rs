//! Figure 1a: slack CDF of function invocations in an Azure-like trace.

use janus_bench::BenchFlags;
use janus_core::experiments::fig1a_slack_cdf;

fn main() {
    let flags = BenchFlags::parse();
    let result = fig1a_slack_cdf(flags.trace_invocations(), flags.seed_or(0xA2C5E));
    print!("{result}");
    flags.write_out(&result);
}
