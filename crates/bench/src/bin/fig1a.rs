//! Figure 1a: slack CDF of function invocations in an Azure-like trace.

use janus_bench::Scale;
use janus_core::experiments::fig1a_slack_cdf;

fn main() {
    let scale = Scale::from_args();
    let result = fig1a_slack_cdf(scale.trace_invocations(), 0xA2C5E);
    print!("{result}");
}
