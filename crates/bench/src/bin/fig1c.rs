//! Figure 1c: performance interference from co-locating homogeneous functions.

use janus_bench::BenchFlags;
use janus_core::experiments::fig1c_interference;

fn main() {
    let flags = BenchFlags::parse();
    let result = fig1c_interference();
    print!("{result}");
    flags.write_out(&result);
}
