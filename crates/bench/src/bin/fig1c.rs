//! Figure 1c: performance interference from co-locating homogeneous functions.

use janus_core::experiments::fig1c_interference;

fn main() {
    print!("{}", fig1c_interference());
}
