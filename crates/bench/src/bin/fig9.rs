//! Figure 9: resource consumption (normalised by Optimal) under varying SLOs.

use janus_bench::{BenchFlags, Scale};
use janus_core::experiments::fig9_slo_sweep;
use janus_synthesizer::json::Value;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    let ia_slos: &[f64] = match flags.scale {
        Scale::Paper => &[3.0, 4.0, 5.0, 6.0, 7.0],
        Scale::Quick => &[3.0, 5.0, 7.0],
    };
    let va_slos: &[f64] = match flags.scale {
        Scale::Paper => &[1.5, 1.6, 1.7, 1.8, 1.9, 2.0],
        Scale::Quick => &[1.5, 1.75, 2.0],
    };
    let mut out = Vec::new();
    let base_ia = flags.comparison(PaperApp::IntelligentAssistant, 1);
    match fig9_slo_sweep(PaperApp::IntelligentAssistant, ia_slos, &base_ia) {
        Ok(result) => {
            print!("{result}");
            flags.collect_out(&mut out, &result);
        }
        Err(e) => eprintln!("fig9 (IA) failed: {e}"),
    }
    let base_va = flags.comparison(PaperApp::VideoAnalyze, 1);
    match fig9_slo_sweep(PaperApp::VideoAnalyze, va_slos, &base_va) {
        Ok(result) => {
            print!("{result}");
            flags.collect_out(&mut out, &result);
        }
        Err(e) => eprintln!("fig9 (VA) failed: {e}"),
    }
    flags.write_out_value(&Value::Arr(out));
}
