//! Figure 7: timeout and resilience of the TS function.

use janus_bench::Scale;
use janus_core::experiments::fig7_timeout_resilience;

fn main() {
    let scale = Scale::from_args();
    print!("{}", fig7_timeout_resilience(scale.profile_samples(), 0xF7));
}
