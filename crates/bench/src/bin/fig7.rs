//! Figure 7: timeout and resilience of the TS function.

use janus_bench::BenchFlags;
use janus_core::experiments::fig7_timeout_resilience;

fn main() {
    let flags = BenchFlags::parse();
    let result = fig7_timeout_resilience(flags.profile_samples(), flags.seed_or(0xF7));
    print!("{result}");
    flags.write_out(&result);
}
