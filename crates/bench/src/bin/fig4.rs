//! Figure 4: end-to-end latency CDFs of IA (concurrency 1–3) and VA.

use janus_bench::BenchFlags;
use janus_core::experiments::fig4_latency_cdfs;
use janus_synthesizer::json::Value;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    let setups = [
        (PaperApp::IntelligentAssistant, 1u32),
        (PaperApp::IntelligentAssistant, 2),
        (PaperApp::IntelligentAssistant, 3),
        (PaperApp::VideoAnalyze, 1),
    ];
    let mut out = Vec::new();
    for (app, conc) in setups {
        let config = flags.comparison(app, conc);
        match fig4_latency_cdfs(&config) {
            Ok(result) => {
                println!(
                    "# Figure 4: {} concurrency {} (SLO {:.1} s) E2E latency CDF",
                    app.short_name(),
                    conc,
                    config.slo.as_secs()
                );
                for (policy, points) in result.fig4_series(11) {
                    print!("{policy:>12}:");
                    for (latency_ms, q) in points {
                        print!(" ({:.2}s,{q:.1})", latency_ms / 1000.0);
                    }
                    println!();
                }
                println!();
                flags.collect_out(&mut out, &result);
            }
            Err(e) => eprintln!("fig4 failed for {} conc {}: {e}", app.short_name(), conc),
        }
    }
    flags.write_out_value(&Value::Arr(out));
}
