//! The single experiment driver of the reproduction.
//!
//! ```text
//! cargo run --release -p janus-bench --bin janus -- list
//! cargo run --release -p janus-bench --bin janus -- run perf --quick --out BENCH_perf.json
//! cargo run --release -p janus-bench --bin janus -- sweep specs/smoke.json --quick
//! cargo run --release -p janus-bench --bin janus -- all --quick
//! ```
//!
//! Every experiment the seventeen retired per-figure binaries ran is
//! reachable as `janus run <name>`; `janus list` enumerates them together
//! with every registered policy, scenario, autoscaler and admission policy.
//! With `--out`, the written artefact is immediately read back and
//! decode-checked with the `janus-json` parser, so CI catches an
//! unparseable document in the same step that produced it.

use janus_bench::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", cli::USAGE);
        return;
    }
    let (command, flags) = match cli::parse(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = cli::execute(&command, &flags) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
