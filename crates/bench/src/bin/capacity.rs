//! Capacity sweep: every arrival scenario under every capacity regime —
//! {static, utilization-threshold autoscaling} × {admit-all, queue-length
//! shedding} on a small spread fleet, reporting SLO violation rate, shed
//! rate, node-seconds consumed and peak queue depth per cell.
//!
//! ```text
//! cargo run --release -p janus-bench --bin capacity            # paper scale
//! cargo run --release -p janus-bench --bin capacity -- --quick # smoke scale
//! ```
//!
//! With `--out`, the written artefact is immediately read back and decoded
//! with the synthesizer's JSON parser, so CI catches an unparseable document
//! in the same step that produced it.

use janus_bench::BenchFlags;
use janus_core::experiments::capacity_sweep;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    let config = flags.capacity_sweep(PaperApp::IntelligentAssistant);
    let result = match capacity_sweep(&config) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("capacity sweep failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{result}");
    flags.write_out(&result);
    flags.validate_out("capacity_sweep", "grid", result.cells.len());
}
