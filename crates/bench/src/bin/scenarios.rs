//! Scenario sweep: every policy under every built-in load shape.
//!
//! The open extension of the paper's evaluation (§V drives everything with
//! one constant-rate loop): the five built-in scenarios — `poisson`,
//! `diurnal`, `bursty`, `flash-crowd`, `trace-replay` — each normalized to
//! the same long-run arrival rate, served by the representative policy set,
//! with one paired, invariant-checked session per scenario.
//!
//! ```text
//! cargo run --release -p janus-bench --bin scenarios            # paper scale
//! cargo run --release -p janus-bench --bin scenarios -- --quick # smoke scale
//! ```

use janus_bench::BenchFlags;
use janus_core::experiments::scenario_sweep;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    let config = flags.scenario_sweep(PaperApp::IntelligentAssistant);
    match scenario_sweep(&config) {
        Ok(result) => {
            print!("{result}");
            flags.write_out(&result);
        }
        Err(e) => {
            eprintln!("scenario sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
