//! Figure 6: resource and synthesis-time cost of Janus vs Janus⁺ across SLOs.

use janus_bench::{BenchFlags, Scale};
use janus_core::experiments::fig6_exploration_cost;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    let base = flags.comparison(PaperApp::IntelligentAssistant, 1);
    let slos: &[f64] = match flags.scale {
        Scale::Paper => &[3.0, 4.0, 5.0, 6.0, 7.0],
        Scale::Quick => &[3.0, 5.0, 7.0],
    };
    match fig6_exploration_cost(slos, &base) {
        Ok(result) => {
            print!("{result}");
            flags.write_out(&result);
        }
        Err(e) => eprintln!("fig6 failed: {e}"),
    }
}
