//! Table I: overall resource reduction of Janus vs baselines for IA and VA.

use janus_bench::BenchFlags;
use janus_core::experiments::table1_overall;
use janus_synthesizer::json::Value;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    let mut out = Vec::new();
    for app in PaperApp::ALL {
        let config = flags.comparison(app, 1);
        match table1_overall(&config) {
            Ok(result) => {
                println!("{result}");
                flags.collect_out(&mut out, &result);
            }
            Err(e) => eprintln!("table1 failed for {}: {e}", app.short_name()),
        }
    }
    flags.write_out_value(&Value::Arr(out));
}
