//! Figure 1b: function latency variance caused by varying working sets.

use janus_bench::BenchFlags;
use janus_core::experiments::fig1b_workset_variance;

fn main() {
    let flags = BenchFlags::parse();
    let result = fig1b_workset_variance(flags.profile_samples(), flags.seed_or(0xF1B));
    print!("{result}");
    flags.write_out(&result);
}
