//! Figure 1b: function latency variance caused by varying working sets.

use janus_bench::Scale;
use janus_core::experiments::fig1b_workset_variance;

fn main() {
    let scale = Scale::from_args();
    let result = fig1b_workset_variance(scale.profile_samples(), 0xF1B);
    print!("{result}");
}
