//! Figure 2: per-request early-binding vs late-binding comparison.

use janus_bench::BenchFlags;
use janus_core::experiments::fig2_binding_comparison;

fn main() {
    let flags = BenchFlags::parse();
    let result = fig2_binding_comparison(flags.scale.fig2_requests(), flags.seed_or(0xF2));
    print!("{result}");
    flags.write_out(&result);
}
