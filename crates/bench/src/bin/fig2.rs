//! Figure 2: per-request early-binding vs late-binding comparison.

use janus_bench::{BenchFlags, Scale};
use janus_core::experiments::fig2_binding_comparison;

fn main() {
    let flags = BenchFlags::parse();
    let requests = match flags.scale {
        Scale::Paper => 50,
        Scale::Quick => 25,
    };
    print!("{}", fig2_binding_comparison(requests, flags.seed_or(0xF2)));
}
