//! Figure 2: per-request early-binding vs late-binding comparison.

use janus_bench::Scale;
use janus_core::experiments::fig2_binding_comparison;

fn main() {
    let scale = Scale::from_args();
    let requests = match scale {
        Scale::Paper => 50,
        Scale::Quick => 25,
    };
    print!("{}", fig2_binding_comparison(requests, 0xF2));
}
