//! Figure 8: number of condensed hints for IA and VA under different weights.

use janus_bench::BenchFlags;
use janus_core::experiments::fig8_hint_counts;

fn main() {
    let flags = BenchFlags::parse();
    let weights = [1.0, 1.5, 2.0, 2.5, 3.0];
    match fig8_hint_counts(&weights, flags.profile_samples(), flags.seed_or(0xF8)) {
        Ok(result) => {
            print!("{result}");
            flags.write_out(&result);
        }
        Err(e) => eprintln!("fig8 failed: {e}"),
    }
}
