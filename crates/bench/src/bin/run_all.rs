//! Regenerate every table and figure of the paper in one run — a thin alias
//! for `janus all`, kept for muscle memory and existing scripts.
//!
//! ```text
//! cargo run --release -p janus-bench --bin run_all            # paper scale
//! cargo run --release -p janus-bench --bin run_all -- --quick # smoke scale
//! ```

use janus_bench::{cli, BenchFlags};

fn main() {
    let flags = BenchFlags::parse();
    if let Err(e) = cli::execute(&cli::Command::All, &flags) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
