//! Regenerate every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p janus-bench --bin run_all            # paper scale
//! cargo run --release -p janus-bench --bin run_all -- --quick # smoke scale
//! ```

use janus_bench::{BenchFlags, Scale};
use janus_core::experiments as exp;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    println!("===== Figure 1a =====");
    print!(
        "{}",
        exp::fig1a_slack_cdf(flags.trace_invocations(), flags.seed_or(0xA2C5E))
    );
    println!("\n===== Figure 1b =====");
    print!(
        "{}",
        exp::fig1b_workset_variance(flags.profile_samples(), flags.seed_or(0xF1B))
    );
    println!("\n===== Figure 1c =====");
    print!("{}", exp::fig1c_interference());
    println!("\n===== Figure 2 =====");
    print!("{}", exp::fig2_binding_comparison(50, flags.seed_or(0xF2)));

    println!("\n===== Table I / Figures 4 & 5 =====");
    for app in PaperApp::ALL {
        match exp::table1_overall(&flags.comparison(app, 1)) {
            Ok(result) => println!("{result}"),
            Err(e) => eprintln!("table1 failed for {}: {e}", app.short_name()),
        }
    }
    for conc in [2u32, 3] {
        match exp::table1_overall(&flags.comparison(PaperApp::IntelligentAssistant, conc)) {
            Ok(result) => println!("{result}"),
            Err(e) => eprintln!("fig5b failed for concurrency {conc}: {e}"),
        }
    }

    println!("\n===== Figure 6 =====");
    let slos: &[f64] = match flags.scale {
        Scale::Paper => &[3.0, 4.0, 5.0, 6.0, 7.0],
        Scale::Quick => &[3.0, 5.0, 7.0],
    };
    match exp::fig6_exploration_cost(slos, &flags.comparison(PaperApp::IntelligentAssistant, 1)) {
        Ok(result) => print!("{result}"),
        Err(e) => eprintln!("fig6 failed: {e}"),
    }

    println!("\n===== Figure 7 =====");
    print!(
        "{}",
        exp::fig7_timeout_resilience(flags.profile_samples(), flags.seed_or(0xF7))
    );

    println!("\n===== Figure 8 =====");
    match exp::fig8_hint_counts(
        &[1.0, 1.5, 2.0, 2.5, 3.0],
        flags.profile_samples(),
        flags.seed_or(0xF8),
    ) {
        Ok(result) => print!("{result}"),
        Err(e) => eprintln!("fig8 failed: {e}"),
    }

    println!("\n===== Table II =====");
    match exp::table2_weight_impact(&[1.0, 3.0], flags.profile_samples(), flags.seed_or(0x72)) {
        Ok(result) => print!("{result}"),
        Err(e) => eprintln!("table2 failed: {e}"),
    }

    println!("\n===== Figure 9 =====");
    match exp::fig9_slo_sweep(
        PaperApp::IntelligentAssistant,
        slos,
        &flags.comparison(PaperApp::IntelligentAssistant, 1),
    ) {
        Ok(result) => print!("{result}"),
        Err(e) => eprintln!("fig9 IA failed: {e}"),
    }
    let va_slos: &[f64] = match flags.scale {
        Scale::Paper => &[1.5, 1.6, 1.7, 1.8, 1.9, 2.0],
        Scale::Quick => &[1.5, 1.75, 2.0],
    };
    match exp::fig9_slo_sweep(
        PaperApp::VideoAnalyze,
        va_slos,
        &flags.comparison(PaperApp::VideoAnalyze, 1),
    ) {
        Ok(result) => print!("{result}"),
        Err(e) => eprintln!("fig9 VA failed: {e}"),
    }

    println!("\n===== System overhead (§V-H) =====");
    match exp::overhead_report(5_000, flags.profile_samples(), flags.seed_or(0x0B)) {
        Ok(result) => print!("{result}"),
        Err(e) => eprintln!("overhead failed: {e}"),
    }
}
