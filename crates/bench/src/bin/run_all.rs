//! Regenerate every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p janus-bench --bin run_all            # paper scale
//! cargo run --release -p janus-bench --bin run_all -- --quick # smoke scale
//! ```

use janus_bench::{BenchFlags, Scale};
use janus_core::experiments as exp;
use janus_core::experiments::ToJson;
use janus_synthesizer::json::Value;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    // With --out, every section's result is also collected into one JSON
    // document: {"fig1a": {...}, "table1": [...], ...}.
    let mut out: Vec<(String, Value)> = Vec::new();
    let record = |out: &mut Vec<(String, Value)>, key: &str, result: &dyn ToJson| {
        if flags.out.is_some() {
            out.push((key.to_string(), result.to_json()));
        }
    };

    println!("===== Figure 1a =====");
    let fig1a = exp::fig1a_slack_cdf(flags.trace_invocations(), flags.seed_or(0xA2C5E));
    print!("{fig1a}");
    record(&mut out, "fig1a", &fig1a);
    println!("\n===== Figure 1b =====");
    let fig1b = exp::fig1b_workset_variance(flags.profile_samples(), flags.seed_or(0xF1B));
    print!("{fig1b}");
    record(&mut out, "fig1b", &fig1b);
    println!("\n===== Figure 1c =====");
    let fig1c = exp::fig1c_interference();
    print!("{fig1c}");
    record(&mut out, "fig1c", &fig1c);
    println!("\n===== Figure 2 =====");
    let fig2 = exp::fig2_binding_comparison(flags.scale.fig2_requests(), flags.seed_or(0xF2));
    print!("{fig2}");
    record(&mut out, "fig2", &fig2);

    println!("\n===== Table I / Figures 4 & 5 =====");
    let mut table1 = Vec::new();
    for app in PaperApp::ALL {
        match exp::table1_overall(&flags.comparison(app, 1)) {
            Ok(result) => {
                println!("{result}");
                flags.collect_out(&mut table1, &result);
            }
            Err(e) => eprintln!("table1 failed for {}: {e}", app.short_name()),
        }
    }
    for conc in [2u32, 3] {
        match exp::table1_overall(&flags.comparison(PaperApp::IntelligentAssistant, conc)) {
            Ok(result) => {
                println!("{result}");
                flags.collect_out(&mut table1, &result);
            }
            Err(e) => eprintln!("fig5b failed for concurrency {conc}: {e}"),
        }
    }
    if flags.out.is_some() {
        out.push(("table1".to_string(), Value::Arr(table1)));
    }

    println!("\n===== Figure 6 =====");
    let slos: &[f64] = match flags.scale {
        Scale::Paper => &[3.0, 4.0, 5.0, 6.0, 7.0],
        Scale::Quick => &[3.0, 5.0, 7.0],
    };
    match exp::fig6_exploration_cost(slos, &flags.comparison(PaperApp::IntelligentAssistant, 1)) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "fig6", &result);
        }
        Err(e) => eprintln!("fig6 failed: {e}"),
    }

    println!("\n===== Figure 7 =====");
    let fig7 = exp::fig7_timeout_resilience(flags.profile_samples(), flags.seed_or(0xF7));
    print!("{fig7}");
    record(&mut out, "fig7", &fig7);

    println!("\n===== Figure 8 =====");
    match exp::fig8_hint_counts(
        &[1.0, 1.5, 2.0, 2.5, 3.0],
        flags.profile_samples(),
        flags.seed_or(0xF8),
    ) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "fig8", &result);
        }
        Err(e) => eprintln!("fig8 failed: {e}"),
    }

    println!("\n===== Table II =====");
    match exp::table2_weight_impact(&[1.0, 3.0], flags.profile_samples(), flags.seed_or(0x72)) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "table2", &result);
        }
        Err(e) => eprintln!("table2 failed: {e}"),
    }

    println!("\n===== Figure 9 =====");
    match exp::fig9_slo_sweep(
        PaperApp::IntelligentAssistant,
        slos,
        &flags.comparison(PaperApp::IntelligentAssistant, 1),
    ) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "fig9_ia", &result);
        }
        Err(e) => eprintln!("fig9 IA failed: {e}"),
    }
    let va_slos: &[f64] = match flags.scale {
        Scale::Paper => &[1.5, 1.6, 1.7, 1.8, 1.9, 2.0],
        Scale::Quick => &[1.5, 1.75, 2.0],
    };
    match exp::fig9_slo_sweep(
        PaperApp::VideoAnalyze,
        va_slos,
        &flags.comparison(PaperApp::VideoAnalyze, 1),
    ) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "fig9_va", &result);
        }
        Err(e) => eprintln!("fig9 VA failed: {e}"),
    }

    println!("\n===== Scenario sweep (load shapes × policies) =====");
    match exp::scenario_sweep(&flags.scenario_sweep(PaperApp::IntelligentAssistant)) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "scenarios", &result);
        }
        Err(e) => eprintln!("scenario sweep failed: {e}"),
    }

    println!("\n===== Capacity sweep (autoscaling × admission) =====");
    match exp::capacity_sweep(&flags.capacity_sweep(PaperApp::IntelligentAssistant)) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "capacity", &result);
        }
        Err(e) => eprintln!("capacity sweep failed: {e}"),
    }

    println!("\n===== Perf trajectory (simulator events/sec) =====");
    match exp::perf_trajectory(&flags.perf_config()) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "perf", &result);
        }
        Err(e) => eprintln!("perf trajectory failed: {e}"),
    }

    println!("\n===== System overhead (§V-H) =====");
    match exp::overhead_report(5_000, flags.profile_samples(), flags.seed_or(0x0B)) {
        Ok(result) => {
            print!("{result}");
            record(&mut out, "overhead", &result);
        }
        Err(e) => eprintln!("overhead failed: {e}"),
    }

    flags.write_out_value(&Value::Obj(out));
}
