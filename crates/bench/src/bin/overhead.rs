//! §V-H system overhead: online adaptation latency and hints memory footprint.

use janus_bench::Scale;
use janus_core::experiments::overhead_report;

fn main() {
    let scale = Scale::from_args();
    let decisions = match scale {
        Scale::Paper => 20_000,
        Scale::Quick => 2_000,
    };
    match overhead_report(decisions, scale.profile_samples(), 0x0B) {
        Ok(result) => print!("{result}"),
        Err(e) => eprintln!("overhead report failed: {e}"),
    }
}
