//! §V-H system overhead: online adaptation latency and hints memory footprint.

use janus_bench::{BenchFlags, Scale};
use janus_core::experiments::overhead_report;

fn main() {
    let flags = BenchFlags::parse();
    let decisions = match flags.scale {
        Scale::Paper => 20_000,
        Scale::Quick => 2_000,
    };
    match overhead_report(decisions, flags.profile_samples(), flags.seed_or(0x0B)) {
        Ok(result) => {
            print!("{result}");
            flags.write_out(&result);
        }
        Err(e) => eprintln!("overhead report failed: {e}"),
    }
}
