//! Perf trajectory of the simulator itself: events/sec of the serving hot
//! path across the built-in arrival scenarios, under a constant-cost fixed
//! sizing policy (so the event loop — queue, pool, cluster, interference,
//! metric recording — is the quantity measured, not policy construction).
//!
//! ```text
//! cargo run --release -p janus-bench --bin perf                  # paper scale
//! cargo run --release -p janus-bench --bin perf -- --quick \
//!     --out BENCH_perf.json                                      # CI smoke
//! ```
//!
//! With `--out`, the written artefact is immediately read back and decoded
//! with the synthesizer's JSON parser, so CI catches an unparseable
//! `BENCH_perf.json` in the same step that produced it.

use janus_bench::BenchFlags;
use janus_core::experiments::perf_trajectory;

fn main() {
    let flags = BenchFlags::parse();
    let config = flags.perf_config();
    let result = match perf_trajectory(&config) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("perf trajectory failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{result}");
    flags.write_out(&result);
    // The artefact is the perf baseline later PRs diff against; assert it
    // decodes before calling the run a success.
    flags.validate_out("perf", "cells", result.cells.len());
}
