//! Perf trajectory of the simulator itself: events/sec of the serving hot
//! path across the built-in arrival scenarios, under a constant-cost fixed
//! sizing policy (so the event loop — queue, pool, cluster, interference,
//! metric recording — is the quantity measured, not policy construction).
//!
//! ```text
//! cargo run --release -p janus-bench --bin perf                  # paper scale
//! cargo run --release -p janus-bench --bin perf -- --quick \
//!     --out BENCH_perf.json                                      # CI smoke
//! ```
//!
//! With `--out`, the written artefact is immediately read back and decoded
//! with the synthesizer's JSON parser, so CI catches an unparseable
//! `BENCH_perf.json` in the same step that produced it.

use janus_bench::BenchFlags;
use janus_core::experiments::perf_trajectory;

fn main() {
    let flags = BenchFlags::parse();
    let config = flags.perf_config();
    let result = match perf_trajectory(&config) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("perf trajectory failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{result}");
    flags.write_out(&result);

    if let Some(path) = &flags.out {
        // The artefact is the perf baseline later PRs diff against; assert
        // it decodes before calling the run a success.
        let doc = match std::fs::read_to_string(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("failed to read back {path}: {e}");
                std::process::exit(1);
            }
        };
        let parsed = match janus_synthesizer::json::parse(&doc) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("{path} is not valid JSON: {e}");
                std::process::exit(1);
            }
        };
        let experiment = parsed
            .require("experiment")
            .ok()
            .and_then(|v| v.as_str().map(|s| s.to_string()));
        if experiment.as_deref() != Some("perf") {
            eprintln!("{path}: expected experiment \"perf\", got {experiment:?}");
            std::process::exit(1);
        }
        match parsed.require("cells").ok().and_then(|v| v.as_array()) {
            Some(cells) if cells.len() == result.cells.len() => {
                eprintln!(
                    "validated {path}: experiment=perf, {} cells decode cleanly",
                    cells.len()
                );
            }
            other => {
                eprintln!(
                    "{path}: expected {} cells, decoded {:?}",
                    result.cells.len(),
                    other.map(|c| c.len())
                );
                std::process::exit(1);
            }
        }
    }
}
