//! Table II: head-function allocation and percentile under weights 1 and 3.

use janus_bench::BenchFlags;
use janus_core::experiments::table2_weight_impact;

fn main() {
    let flags = BenchFlags::parse();
    match table2_weight_impact(&[1.0, 3.0], flags.profile_samples(), flags.seed_or(0x72)) {
        Ok(result) => {
            print!("{result}");
            flags.write_out(&result);
        }
        Err(e) => eprintln!("table2 failed: {e}"),
    }
}
