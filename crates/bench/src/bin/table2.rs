//! Table II: head-function allocation and percentile under weights 1 and 3.

use janus_bench::Scale;
use janus_core::experiments::table2_weight_impact;

fn main() {
    let scale = Scale::from_args();
    match table2_weight_impact(&[1.0, 3.0], scale.profile_samples(), 0x72) {
        Ok(result) => print!("{result}"),
        Err(e) => eprintln!("table2 failed: {e}"),
    }
}
