//! Figure 5: resource consumption per policy — (a) IA and VA at concurrency 1,
//! (b) IA at concurrency 2 and 3 (normalised by Optimal).

use janus_bench::BenchFlags;
use janus_core::comparison::PolicyKind;
use janus_core::experiments::fig5_resource_consumption;
use janus_synthesizer::json::Value;
use janus_workloads::apps::PaperApp;

fn main() {
    let flags = BenchFlags::parse();
    let mut out = Vec::new();
    println!("# Figure 5a: absolute CPU (millicores), concurrency 1");
    for app in PaperApp::ALL {
        let config = flags.comparison(app, 1);
        match fig5_resource_consumption(&config) {
            Ok(result) => {
                println!("## {}", app.short_name());
                for (policy, cpu) in result.fig5_row() {
                    println!("{policy:>12} {cpu:>10.1}");
                }
                flags.collect_out(&mut out, &result);
            }
            Err(e) => eprintln!("fig5a failed for {}: {e}", app.short_name()),
        }
    }
    println!("\n# Figure 5b: IA normalised CPU at higher concurrency");
    for conc in [2u32, 3] {
        let config = flags.comparison(PaperApp::IntelligentAssistant, conc);
        match fig5_resource_consumption(&config) {
            Ok(result) => {
                println!(
                    "## IA concurrency {conc} (SLO {:.1} s)",
                    config.slo.as_secs()
                );
                for (kind, report) in result
                    .outcome
                    .config
                    .policies
                    .iter()
                    .zip(&result.outcome.reports)
                {
                    let norm = result.outcome.normalized_cpu(*kind).unwrap_or(f64::NAN);
                    println!(
                        "{:>12} {:>8.3}  ({:.1} mc)",
                        kind.name(),
                        norm,
                        report.mean_cpu_millicores()
                    );
                }
                let _ = result.outcome.report(PolicyKind::Optimal);
                flags.collect_out(&mut out, &result);
            }
            Err(e) => eprintln!("fig5b failed at concurrency {conc}: {e}"),
        }
    }
    flags.write_out_value(&Value::Arr(out));
}
