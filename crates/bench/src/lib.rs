//! # janus-bench
//!
//! Benchmark harness of the Janus reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Figure / table binaries** (`src/bin/fig*.rs`, `src/bin/table*.rs`,
//!   `src/bin/overhead.rs`, `src/bin/run_all.rs`) — each regenerates one
//!   table or figure of the paper's evaluation and prints the corresponding
//!   rows / series to stdout. Run them with
//!   `cargo run --release -p janus-bench --bin fig5`, or everything at once
//!   with `--bin run_all`. Every binary accepts `--quick` to use a reduced
//!   configuration (fewer requests / profile samples) for smoke runs.
//! * **Criterion benches** (`benches/*.rs`) — micro-benchmarks of the system
//!   costs the paper reports: online adaptation latency (§V-H), hint
//!   synthesis time (Figure 6b), condensing, profiling throughput and
//!   end-to-end serving under each policy.
//!
//! The mapping from experiment id to binary is listed in `DESIGN.md`;
//! measured-vs-paper numbers are recorded in `EXPERIMENTS.md`.

use janus_core::comparison::ComparisonConfig;
use janus_workloads::apps::PaperApp;

/// Shared experiment scale used by the figure/table binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-like scale: 1000 requests, 1000 profile samples, 1 ms sweep.
    Paper,
    /// Reduced scale for smoke runs and CI (`--quick`).
    Quick,
}

impl Scale {
    /// Parse the scale from process arguments (`--quick` selects the reduced
    /// configuration).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Comparison configuration for an application at this scale.
    pub fn comparison(self, app: PaperApp, concurrency: u32) -> ComparisonConfig {
        match self {
            Scale::Paper => ComparisonConfig {
                requests: 1000,
                samples_per_point: 1000,
                budget_step_ms: 1.0,
                ..ComparisonConfig::paper_default(app, concurrency)
            },
            Scale::Quick => ComparisonConfig {
                requests: 200,
                samples_per_point: 300,
                budget_step_ms: 5.0,
                ..ComparisonConfig::paper_default(app, concurrency)
            },
        }
    }

    /// Profile samples per grid point at this scale.
    pub fn profile_samples(self) -> usize {
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 300,
        }
    }

    /// Trace invocations for the Figure 1a analysis at this scale.
    pub fn trace_invocations(self) -> usize {
        match self {
            Scale::Paper => 50_000,
            Scale::Quick => 15_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_consistent_configs() {
        let paper = Scale::Paper.comparison(PaperApp::IntelligentAssistant, 1);
        let quick = Scale::Quick.comparison(PaperApp::IntelligentAssistant, 1);
        assert!(paper.requests > quick.requests);
        assert!(paper.samples_per_point > quick.samples_per_point);
        assert!(paper.budget_step_ms < quick.budget_step_ms);
        assert_eq!(paper.slo, quick.slo);
        assert!(Scale::Paper.profile_samples() > Scale::Quick.profile_samples());
        assert!(Scale::Paper.trace_invocations() > Scale::Quick.trace_invocations());
    }
}
