//! # janus-bench
//!
//! Benchmark harness of the Janus reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Figure / table binaries** (`src/bin/fig*.rs`, `src/bin/table*.rs`,
//!   `src/bin/overhead.rs`, `src/bin/run_all.rs`) — each regenerates one
//!   table or figure of the paper's evaluation and prints the corresponding
//!   rows / series to stdout. Run them with
//!   `cargo run --release -p janus-bench --bin fig5`, or everything at once
//!   with `--bin run_all`. Every binary accepts the shared [`BenchFlags`]
//!   flags: `--quick` (reduced scale for smoke runs), `--seed N` (override
//!   the serving/profiling seed), `--out PATH` (write the result struct as
//!   JSON next to the stdout tables) and `--help`.
//! * **Criterion benches** (`benches/*.rs`) — micro-benchmarks of the system
//!   costs the paper reports: online adaptation latency (§V-H), hint
//!   synthesis time (Figure 6b), condensing, profiling throughput and
//!   end-to-end serving under each policy.
//!
//! The mapping from experiment id to binary is listed in `DESIGN.md`;
//! serving itself always goes through
//! [`ServingSession`](janus_core::session::ServingSession) — the comparison
//! configs produced here resolve to session runs.

use janus_core::comparison::ComparisonConfig;
use janus_core::experiments::{CapacitySweepConfig, PerfConfig, ScenarioSweepConfig, ToJson};
use janus_core::session::ServingSessionBuilder;
use janus_synthesizer::json::Value;
use janus_workloads::apps::PaperApp;

/// Shared experiment scale used by the figure/table binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-like scale: 1000 requests, 1000 profile samples, 1 ms sweep.
    Paper,
    /// Reduced scale for smoke runs and CI (`--quick`).
    Quick,
}

impl Scale {
    /// Comparison configuration for an application at this scale.
    pub fn comparison(self, app: PaperApp, concurrency: u32) -> ComparisonConfig {
        match self {
            Scale::Paper => ComparisonConfig {
                requests: 1000,
                samples_per_point: 1000,
                budget_step_ms: 1.0,
                ..ComparisonConfig::paper_default(app, concurrency)
            },
            Scale::Quick => ComparisonConfig {
                requests: 200,
                samples_per_point: 300,
                budget_step_ms: 5.0,
                ..ComparisonConfig::paper_default(app, concurrency)
            },
        }
    }

    /// Profile samples per grid point at this scale.
    pub fn profile_samples(self) -> usize {
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 300,
        }
    }

    /// Trace invocations for the Figure 1a analysis at this scale.
    pub fn trace_invocations(self) -> usize {
        match self {
            Scale::Paper => 50_000,
            Scale::Quick => 15_000,
        }
    }

    /// Figure 2 request-sample size at this scale.
    pub fn fig2_requests(self) -> usize {
        match self {
            Scale::Paper => 50,
            Scale::Quick => 25,
        }
    }

    /// Scenario-sweep configuration for an application at this scale.
    pub fn scenario_sweep(self, app: PaperApp) -> ScenarioSweepConfig {
        match self {
            Scale::Paper => ScenarioSweepConfig::paper_default(app),
            Scale::Quick => ScenarioSweepConfig::quick(app),
        }
    }

    /// Perf-trajectory configuration at this scale.
    pub fn perf(self) -> PerfConfig {
        match self {
            Scale::Paper => PerfConfig::paper_default(),
            Scale::Quick => PerfConfig::quick(),
        }
    }

    /// Capacity-sweep configuration for an application at this scale.
    pub fn capacity_sweep(self, app: PaperApp) -> CapacitySweepConfig {
        match self {
            Scale::Paper => CapacitySweepConfig::paper_default(app),
            Scale::Quick => CapacitySweepConfig::quick(app),
        }
    }
}

/// The one flag parser every fig/table binary shares (replacing the old
/// per-binary `std::env::args()` scanning).
///
/// Recognised flags: `--quick`, `--paper` (default), `--seed <u64>`,
/// `--out <path>`, `--help`/`-h`. Unknown flags abort with a usage message
/// so typos cannot silently run a multi-minute experiment at the wrong
/// scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchFlags {
    /// Experiment scale (`--quick` selects [`Scale::Quick`]).
    pub scale: Scale,
    /// Optional serving/profiling seed override (`--seed N`).
    pub seed: Option<u64>,
    /// Optional path the binary writes its result to as JSON (`--out`),
    /// next to the stdout tables.
    pub out: Option<String>,
}

impl Default for BenchFlags {
    fn default() -> Self {
        BenchFlags {
            scale: Scale::Paper,
            seed: None,
            out: None,
        }
    }
}

impl BenchFlags {
    /// Usage string shared by every binary.
    pub const USAGE: &'static str =
        "usage: <bin> [--quick | --paper] [--seed N] [--out PATH] [--help]\n\
        \x20 --quick    reduced scale (fewer requests / profile samples) for smoke runs\n\
        \x20 --paper    paper scale (default)\n\
        \x20 --seed N   override the serving/profiling seed\n\
        \x20 --out PATH write the result struct as JSON to PATH (in addition to stdout)\n\
        \x20 --help     print this message";

    /// Parse the process arguments; prints usage and exits on `--help` or on
    /// an invalid invocation.
    pub fn parse() -> BenchFlags {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::USAGE);
            std::process::exit(0);
        }
        match Self::from_args(args) {
            Ok(flags) => flags,
            Err(e) => {
                eprintln!("{e}\n{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable core of
    /// [`parse`](Self::parse)).
    pub fn from_args<I>(args: I) -> Result<BenchFlags, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut flags = BenchFlags::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => flags.scale = Scale::Quick,
                "--paper" => flags.scale = Scale::Paper,
                "--seed" => {
                    let value = it
                        .next()
                        .ok_or_else(|| "--seed needs a value".to_string())?;
                    flags.seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("invalid --seed `{value}`: {e}"))?,
                    );
                }
                "--out" => {
                    let value = it.next().ok_or_else(|| "--out needs a path".to_string())?;
                    flags.out = Some(value);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(flags)
    }

    /// Comparison configuration at the parsed scale, with the seed override
    /// applied.
    pub fn comparison(&self, app: PaperApp, concurrency: u32) -> ComparisonConfig {
        let mut config = self.scale.comparison(app, concurrency);
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    /// The equivalent [`ServingSession`](janus_core::session::ServingSession)
    /// builder for binaries that serve directly rather than through an
    /// experiment runner.
    pub fn session(&self, app: PaperApp, concurrency: u32) -> ServingSessionBuilder {
        self.comparison(app, concurrency).session()
    }

    /// The experiment seed: the `--seed` override when given, otherwise the
    /// binary's default (each figure has its own, so figures stay
    /// independent).
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Profile samples per grid point at the parsed scale.
    pub fn profile_samples(&self) -> usize {
        self.scale.profile_samples()
    }

    /// Trace invocations for Figure 1a at the parsed scale.
    pub fn trace_invocations(&self) -> usize {
        self.scale.trace_invocations()
    }

    /// Scenario-sweep configuration at the parsed scale, with the seed
    /// override applied.
    pub fn scenario_sweep(&self, app: PaperApp) -> ScenarioSweepConfig {
        let mut config = self.scale.scenario_sweep(app);
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    /// Perf-trajectory configuration at the parsed scale, with the seed
    /// override applied.
    pub fn perf_config(&self) -> PerfConfig {
        let mut config = self.scale.perf();
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    /// Capacity-sweep configuration at the parsed scale, with the seed
    /// override applied.
    pub fn capacity_sweep(&self, app: PaperApp) -> CapacitySweepConfig {
        let mut config = self.scale.capacity_sweep(app);
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    /// Write one experiment result as pretty-printed JSON to the `--out`
    /// path. Without `--out` this is a no-op (the result is not even
    /// encoded). Reports the written path on stderr so the stdout tables
    /// stay machine-clean; a failed write aborts the process with a
    /// non-zero exit code — an explicitly requested artefact must not be
    /// silently missing.
    pub fn write_out(&self, result: &dyn ToJson) {
        if self.out.is_some() {
            self.write_out_value(&result.to_json());
        }
    }

    /// Collect one result into an aggregation buffer, encoding it only when
    /// `--out` was given — the shared helper for binaries that write several
    /// results into one JSON array via
    /// [`write_out_value`](Self::write_out_value).
    pub fn collect_out(&self, out: &mut Vec<Value>, result: &dyn ToJson) {
        if self.out.is_some() {
            out.push(result.to_json());
        }
    }

    /// Re-read the artefact just written with `--out` and assert it decodes
    /// with the synthesizer's JSON parser: the `experiment` tag must equal
    /// `experiment` and the array under `array_key` must hold
    /// `expected_len` entries. An artefact the caller explicitly requested
    /// must not be silently unparseable, so any mismatch aborts the process
    /// with a non-zero exit code. No-op without `--out`.
    pub fn validate_out(&self, experiment: &str, array_key: &str, expected_len: usize) {
        let Some(path) = &self.out else { return };
        let doc = match std::fs::read_to_string(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("failed to read back {path}: {e}");
                std::process::exit(1);
            }
        };
        let parsed = match janus_synthesizer::json::parse(&doc) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("{path} is not valid JSON: {e}");
                std::process::exit(1);
            }
        };
        let tag = parsed
            .require("experiment")
            .ok()
            .and_then(|v| v.as_str().map(|s| s.to_string()));
        if tag.as_deref() != Some(experiment) {
            eprintln!("{path}: expected experiment \"{experiment}\", got {tag:?}");
            std::process::exit(1);
        }
        match parsed.require(array_key).ok().and_then(|v| v.as_array()) {
            Some(entries) if entries.len() == expected_len => {
                eprintln!(
                    "validated {path}: experiment={experiment}, {expected_len} {array_key} \
                     decode cleanly"
                );
            }
            other => {
                eprintln!(
                    "{path}: expected {expected_len} {array_key}, decoded {:?}",
                    other.map(|c| c.len())
                );
                std::process::exit(1);
            }
        }
    }

    /// [`write_out`](Self::write_out) for an already-assembled document —
    /// used by binaries that aggregate several results into one file.
    pub fn write_out_value(&self, value: &Value) {
        let Some(path) = &self.out else { return };
        let mut doc = value.to_pretty();
        doc.push('\n');
        match std::fs::write(path, doc) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::session::Load;

    fn parse(args: &[&str]) -> Result<BenchFlags, String> {
        BenchFlags::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn scales_produce_consistent_configs() {
        let paper = Scale::Paper.comparison(PaperApp::IntelligentAssistant, 1);
        let quick = Scale::Quick.comparison(PaperApp::IntelligentAssistant, 1);
        assert!(paper.requests > quick.requests);
        assert!(paper.samples_per_point > quick.samples_per_point);
        assert!(paper.budget_step_ms < quick.budget_step_ms);
        assert_eq!(paper.slo, quick.slo);
        assert!(Scale::Paper.profile_samples() > Scale::Quick.profile_samples());
        assert!(Scale::Paper.trace_invocations() > Scale::Quick.trace_invocations());
    }

    #[test]
    fn flags_parse_scale_and_seed() {
        assert_eq!(parse(&[]).unwrap(), BenchFlags::default());
        assert_eq!(parse(&["--quick"]).unwrap().scale, Scale::Quick);
        assert_eq!(parse(&["--quick", "--paper"]).unwrap().scale, Scale::Paper);
        let flags = parse(&["--quick", "--seed", "99"]).unwrap();
        assert_eq!(flags.seed, Some(99));
        assert_eq!(flags.comparison(PaperApp::IntelligentAssistant, 1).seed, 99);
    }

    #[test]
    fn flags_reject_typos_and_bad_seeds() {
        assert!(parse(&["--qiuck"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--seed"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--seed", "abc"])
            .unwrap_err()
            .contains("invalid --seed"));
        assert!(parse(&["--out"]).unwrap_err().contains("needs a path"));
    }

    #[test]
    fn out_flag_writes_parseable_json_next_to_stdout() {
        let path = std::env::temp_dir().join("janus_bench_out_flag_test.json");
        let path_str = path.to_string_lossy().to_string();
        let flags = parse(&["--quick", "--out", &path_str]).unwrap();
        assert_eq!(flags.out.as_deref(), Some(path_str.as_str()));

        let result = janus_core::experiments::fig1c_interference();
        flags.write_out(&result);
        let doc =
            janus_synthesizer::json::parse(&std::fs::read_to_string(&path).expect("file written"))
                .expect("valid JSON");
        assert_eq!(doc.require("experiment").unwrap().as_str(), Some("fig1c"));
        let _ = std::fs::remove_file(&path);

        // No --out: a no-op, nothing written.
        BenchFlags::default().write_out(&result);
    }

    #[test]
    fn flags_produce_a_runnable_session_builder() {
        let flags = parse(&["--quick", "--seed", "5"]).unwrap();
        // The builder inherits the comparison config's seven paper policies;
        // appending one of them again is rejected as a duplicate.
        let err = flags
            .session(PaperApp::IntelligentAssistant, 1)
            .policy("GrandSLAM")
            .load(Load::Closed { requests: 5 })
            .build()
            .unwrap_err();
        assert!(err.contains("added twice"), "{err}");
        let session = flags
            .session(PaperApp::IntelligentAssistant, 1)
            .load(Load::Closed { requests: 5 })
            .build()
            .unwrap();
        assert_eq!(session.policies().len(), 7);
        assert_eq!(session.policies()[0], "Optimal");
    }
}
