//! # janus-bench
//!
//! The benchmark harness of the Janus reproduction, built around one
//! driver binary:
//!
//! * **`janus`** (`src/bin/janus.rs`) — the single experiment CLI.
//!   `janus list` enumerates every registered experiment, policy, scenario,
//!   autoscaler and admission policy straight from the registries;
//!   `janus run <experiment>` runs one of them; `janus sweep <spec.json>`
//!   executes a declarative grid from a spec file; `janus all` regenerates
//!   the full evaluation. The seventeen per-figure binaries this replaced
//!   (`fig1a` … `table2`, `scenarios`, `capacity`, `perf`, `overhead`) are
//!   gone — each one is now `janus run <same-name>`; `run_all` survives as a
//!   thin alias for `janus all`.
//! * **Criterion benches** (`benches/*.rs`) — micro-benchmarks of the system
//!   costs the paper reports: online adaptation latency (§V-H), hint
//!   synthesis time (Figure 6b), condensing, profiling throughput and
//!   end-to-end serving under each policy.
//!
//! Every invocation accepts the shared [`BenchFlags`]: `--quick` (reduced
//! scale for smoke runs), `--paper` (the default), `--seed N` (override the
//! serving/profiling seed), `--out PATH` (write the result as JSON next to
//! the stdout tables; the artefact is re-read and decode-checked before the
//! process exits 0), `--trace PATH` (write a JSONL flight trace, implying
//! the flight-recorder observer) and `--help`. Serving itself always goes
//! through
//! [`ServingSession`](janus_core::session::ServingSession).

pub mod cli;

use janus_core::comparison::ComparisonConfig;
use janus_core::experiments::{ExperimentCtx, ToJson};
use janus_core::session::ServingSessionBuilder;
use janus_json::Value;
use janus_workloads::apps::PaperApp;

pub use janus_core::experiments::Scale;

/// The one flag parser every invocation shares.
///
/// Recognised flags: `--quick`, `--paper` (default), `--seed <u64>`,
/// `--out <path>`, `--help`/`-h`. Unknown or duplicated flags abort with a
/// usage message so typos cannot silently run a multi-minute experiment at
/// the wrong scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchFlags {
    /// Experiment scale (`--quick` selects [`Scale::Quick`]).
    pub scale: Scale,
    /// Optional serving/profiling seed override (`--seed N`).
    pub seed: Option<u64>,
    /// Optional path the invocation writes its result to as JSON (`--out`),
    /// next to the stdout tables.
    pub out: Option<String>,
    /// Optional path a trace-capable experiment writes its JSONL flight
    /// trace to (`--trace`); implies the `flight-recorder` observer.
    pub trace: Option<String>,
}

impl Default for BenchFlags {
    fn default() -> Self {
        BenchFlags {
            scale: Scale::Paper,
            seed: None,
            out: None,
            trace: None,
        }
    }
}

impl BenchFlags {
    /// Usage string shared by every invocation.
    pub const USAGE: &'static str =
        "flags: [--quick | --paper] [--seed N] [--out PATH] [--trace PATH] [--help]\n\
        \x20 --quick      reduced scale (fewer requests / profile samples) for smoke runs\n\
        \x20 --paper      paper scale (default)\n\
        \x20 --seed N     override the serving/profiling seed\n\
        \x20 --out PATH   write the result as JSON to PATH (in addition to stdout)\n\
        \x20 --trace PATH write a JSONL flight trace to PATH (trace-capable experiments)\n\
        \x20 --help       print this message";

    /// Parse the process arguments; prints usage and exits on `--help` or on
    /// an invalid invocation.
    pub fn parse() -> BenchFlags {
        // janus-lint: allow(nondeterminism) — CLI argument intake; the seed the args carry is what determinism is defined over
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::USAGE);
            std::process::exit(0);
        }
        match Self::from_args(args) {
            Ok(flags) => flags,
            Err(e) => {
                eprintln!("{e}\n{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable core of
    /// [`parse`](Self::parse)). Every flag may appear at most once —
    /// a repeated or contradictory flag is an error, not a silent
    /// last-one-wins.
    pub fn from_args<I>(args: I) -> Result<BenchFlags, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut scale: Option<Scale> = None;
        let mut flags = BenchFlags::default();
        let set_scale = |which: &str, value: Scale, scale: &mut Option<Scale>| {
            if let Some(earlier) = scale {
                return Err(format!(
                    "{which} conflicts with the earlier {}",
                    match earlier {
                        Scale::Quick => "--quick",
                        Scale::Paper => "--paper",
                    }
                ));
            }
            *scale = Some(value);
            Ok(())
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => set_scale("--quick", Scale::Quick, &mut scale)?,
                "--paper" => set_scale("--paper", Scale::Paper, &mut scale)?,
                "--seed" => {
                    if flags.seed.is_some() {
                        return Err("--seed given twice".into());
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| "--seed needs a value".to_string())?;
                    flags.seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("invalid --seed `{value}`: {e}"))?,
                    );
                }
                "--out" => {
                    if flags.out.is_some() {
                        return Err("--out given twice".into());
                    }
                    let value = it.next().ok_or_else(|| "--out needs a path".to_string())?;
                    if value.starts_with("--") {
                        return Err(format!("--out needs a path, got flag `{value}`"));
                    }
                    flags.out = Some(value);
                }
                "--trace" => {
                    if flags.trace.is_some() {
                        return Err("--trace given twice".into());
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| "--trace needs a path".to_string())?;
                    if value.starts_with("--") {
                        return Err(format!("--trace needs a path, got flag `{value}`"));
                    }
                    flags.trace = Some(value);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        flags.scale = scale.unwrap_or(Scale::Paper);
        Ok(flags)
    }

    /// The experiment context these flags describe (scale + seed override).
    pub fn ctx(&self) -> ExperimentCtx {
        ExperimentCtx::new(self.scale).with_seed(self.seed)
    }

    /// Comparison configuration at the parsed scale, with the seed override
    /// applied.
    pub fn comparison(&self, app: PaperApp, concurrency: u32) -> ComparisonConfig {
        self.ctx().comparison(app, concurrency)
    }

    /// The equivalent [`ServingSession`](janus_core::session::ServingSession)
    /// builder for callers that serve directly rather than through an
    /// experiment runner.
    pub fn session(&self, app: PaperApp, concurrency: u32) -> ServingSessionBuilder {
        self.comparison(app, concurrency).session()
    }

    /// The experiment seed: the `--seed` override when given, otherwise the
    /// caller's default (each figure has its own, so figures stay
    /// independent).
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Write one experiment result as pretty-printed JSON to the `--out`
    /// path. Without `--out` this is a no-op (the result is not even
    /// encoded). Reports the written path on stderr so the stdout tables
    /// stay machine-clean; a failed write aborts the process with a
    /// non-zero exit code — an explicitly requested artefact must not be
    /// silently missing.
    pub fn write_out(&self, result: &dyn ToJson) {
        if self.out.is_some() {
            self.write_out_value(&result.to_json());
        }
    }

    /// Collect one result into an aggregation buffer, encoding it only when
    /// `--out` was given — the shared helper for invocations that write
    /// several results into one JSON document via
    /// [`write_out_value`](Self::write_out_value).
    pub fn collect_out(&self, out: &mut Vec<Value>, result: &dyn ToJson) {
        if self.out.is_some() {
            out.push(result.to_json());
        }
    }

    /// [`write_out`](Self::write_out) for an already-assembled document —
    /// used by invocations that aggregate several results into one file.
    pub fn write_out_value(&self, value: &Value) {
        let Some(path) = &self.out else { return };
        let mut doc = value.to_pretty();
        doc.push('\n');
        // Atomic (temp-file + rename): an interrupted run never truncates an
        // existing artefact — in particular the appended BENCH_perf.json
        // history keeps either the old entries or old + new, never neither.
        match janus_results::write_atomic(std::path::Path::new(path), &doc) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Re-read the artefact just written with `--out` and assert it decodes
    /// with [`janus_json`]'s parser back to exactly the document that was
    /// written. An artefact the caller explicitly requested must not be
    /// silently unparseable, so any mismatch aborts the process with a
    /// non-zero exit code. No-op without `--out`.
    pub fn verify_out(&self, written: &Value) {
        let Some(path) = &self.out else { return };
        match self.verify_out_inner(path, written) {
            Ok(()) => eprintln!("validated {path}: decodes back to the written document"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }

    fn verify_out_inner(&self, path: &str, written: &Value) -> Result<(), String> {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read back {path}: {e}"))?;
        let parsed =
            janus_json::parse(&doc).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
        if &parsed != written {
            return Err(format!(
                "{path}: decoded document differs from the written result"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::session::Load;

    fn parse(args: &[&str]) -> Result<BenchFlags, String> {
        BenchFlags::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_parse_scale_and_seed() {
        assert_eq!(parse(&[]).unwrap(), BenchFlags::default());
        assert_eq!(parse(&["--quick"]).unwrap().scale, Scale::Quick);
        assert_eq!(parse(&["--paper"]).unwrap().scale, Scale::Paper);
        let flags = parse(&["--quick", "--seed", "99"]).unwrap();
        assert_eq!(flags.seed, Some(99));
        assert_eq!(flags.comparison(PaperApp::IntelligentAssistant, 1).seed, 99);
        assert_eq!(flags.ctx().seed_or(1), 99);
        assert_eq!(flags.ctx().scale, Scale::Quick);
    }

    #[test]
    fn flags_reject_typos_and_bad_seeds() {
        assert!(parse(&["--qiuck"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--seed"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--seed", "abc"])
            .unwrap_err()
            .contains("invalid --seed"));
        assert!(parse(&["--out"]).unwrap_err().contains("needs a path"));
        assert!(parse(&["--out", "--quick"])
            .unwrap_err()
            .contains("needs a path, got flag"));
        assert!(parse(&["--trace"]).unwrap_err().contains("needs a path"));
        assert!(parse(&["--trace", "--quick"])
            .unwrap_err()
            .contains("needs a path, got flag"));
    }

    #[test]
    fn flags_reject_duplicates_and_conflicts() {
        let err = parse(&["--seed", "1", "--seed", "2"]).unwrap_err();
        assert!(err.contains("--seed given twice"), "{err}");
        let err = parse(&["--out", "a.json", "--out", "b.json"]).unwrap_err();
        assert!(err.contains("--out given twice"), "{err}");
        let err = parse(&["--trace", "a.jsonl", "--trace", "b.jsonl"]).unwrap_err();
        assert!(err.contains("--trace given twice"), "{err}");
        let err = parse(&["--quick", "--paper"]).unwrap_err();
        assert!(err.contains("--paper conflicts"), "{err}");
        let err = parse(&["--quick", "--quick"]).unwrap_err();
        assert!(err.contains("--quick conflicts"), "{err}");
    }

    #[test]
    fn out_flag_writes_and_verifies_parseable_json() {
        let path = std::env::temp_dir().join("janus_bench_out_flag_test.json");
        let path_str = path.to_string_lossy().to_string();
        let flags = parse(&["--quick", "--out", &path_str]).unwrap();
        assert_eq!(flags.out.as_deref(), Some(path_str.as_str()));

        let result = janus_core::experiments::fig1c_interference();
        let written = result.to_json();
        flags.write_out(&result);
        let doc = janus_json::parse(&std::fs::read_to_string(&path).expect("file written"))
            .expect("valid JSON");
        assert_eq!(doc.require("experiment").unwrap().as_str(), Some("fig1c"));
        // The read-back verification accepts its own artefact…
        flags.verify_out_inner(&path_str, &written).unwrap();
        // …and rejects a mismatching one.
        let err = flags
            .verify_out_inner(&path_str, &Value::Num(1.0))
            .unwrap_err();
        assert!(err.contains("differs"), "{err}");
        let _ = std::fs::remove_file(&path);
        let err = flags.verify_out_inner(&path_str, &written).unwrap_err();
        assert!(err.contains("failed to read back"), "{err}");

        // No --out: write and verify are no-ops.
        BenchFlags::default().write_out(&result);
        BenchFlags::default().verify_out(&written);
    }

    #[test]
    fn flags_produce_a_runnable_session_builder() {
        let flags = parse(&["--quick", "--seed", "5"]).unwrap();
        // The builder inherits the comparison config's seven paper policies;
        // appending one of them again is rejected as a duplicate.
        let err = flags
            .session(PaperApp::IntelligentAssistant, 1)
            .policy("GrandSLAM")
            .load(Load::Closed { requests: 5 })
            .build()
            .unwrap_err();
        assert!(err.contains("added twice"), "{err}");
        let session = flags
            .session(PaperApp::IntelligentAssistant, 1)
            .load(Load::Closed { requests: 5 })
            .build()
            .unwrap();
        assert_eq!(session.policies().len(), 7);
        assert_eq!(session.policies()[0], "Optimal");
    }
}
