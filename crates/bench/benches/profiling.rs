//! Developer-side profiling throughput (offline, §III-B).

use criterion::{criterion_group, criterion_main, Criterion};
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_workloads::apps::{object_detection, question_answering};
use std::hint::black_box;

fn profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_function");
    group.sample_size(10);
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point: 500,
        ..ProfilerConfig::default()
    })
    .expect("valid profiler config");
    for (name, function) in [("od", object_detection()), ("qa", question_answering())] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(profiler.profile_function(&function, 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, profiling);
criterion_main!(benches);
