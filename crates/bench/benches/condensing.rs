//! §V-F / Figure 8: hints-condensing throughput and compression.

use criterion::{criterion_group, criterion_main, Criterion};
use janus_profiler::percentiles::Percentile;
use janus_simcore::resources::Millicores;
use janus_synthesizer::condense::condense;
use janus_synthesizer::generation::RawHint;
use std::hint::black_box;

fn raw_hints(n: usize) -> Vec<RawHint> {
    (0..n)
        .map(|i| {
            // Realistic structure: long runs of identical head sizes that
            // shrink as the budget grows.
            let head = 3000 - ((i / 37) as u32 * 100).min(2000);
            RawHint {
                budget_ms: 2000.0 + i as f64,
                allocation: vec![
                    Millicores::new(head),
                    Millicores::new(1000),
                    Millicores::new(1000),
                ],
                head_percentile: Percentile::P99,
                expected_cost: f64::from(head) + 2000.0,
            }
        })
        .collect()
}

fn condensing(c: &mut Criterion) {
    let mut group = c.benchmark_group("condense");
    for n in [1_000usize, 5_000, 20_000] {
        let raw = raw_hints(n);
        group.bench_function(format!("{n}_raw_hints"), |b| {
            b.iter(|| black_box(condense(&raw)));
        });
    }
    group.finish();
}

criterion_group!(benches, condensing);
criterion_main!(benches);
