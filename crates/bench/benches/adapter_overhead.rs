//! §V-H: online adaptation decision latency.
//!
//! The paper reports that the online resource-adaptation decision stays under
//! 3 ms; this bench measures the table-search path (budget → head allocation)
//! for the IA and VA hints bundles.

use criterion::{criterion_group, criterion_main, Criterion};
use janus_core::deployment::{DeploymentConfig, JanusDeployment};
use janus_simcore::time::SimDuration;
use janus_workloads::apps::PaperApp;
use std::hint::black_box;

fn adapter_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("adapter_decision");
    group.sample_size(40);
    for app in PaperApp::ALL {
        let deployment = JanusDeployment::build(&DeploymentConfig {
            samples_per_point: 400,
            budget_step_ms: 2.0,
            ..DeploymentConfig::paper_default(app, 1)
        })
        .expect("deployment builds");
        let bundle = deployment.bundle().clone();
        group.bench_function(app.short_name(), |b| {
            let mut adapter = janus_adapter::adapter::Adapter::with_defaults(bundle.clone());
            let slo_ms = app.default_slo(1).as_millis();
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let budget =
                    SimDuration::from_millis(slo_ms * (0.4 + 0.6 * ((i % 100) as f64 / 100.0)));
                let finished = (i % 3) as usize;
                black_box(adapter.decide(finished, budget))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, adapter_overhead);
criterion_main!(benches);
