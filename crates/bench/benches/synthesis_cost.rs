//! Figure 6b: hint-synthesis time of Janus⁻ / Janus / Janus⁺.
//!
//! The paper reports Janus⁺ costing up to ~107× more synthesis time than
//! Janus; the memoised dynamic program used here narrows the gap (documented
//! here) but the ordering Janus⁻ ≤ Janus ≤ Janus⁺ must hold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_synthesizer::synthesizer::{ExplorationDepth, Synthesizer, SynthesizerConfig};
use janus_workloads::apps::intelligent_assistant;
use std::hint::black_box;

fn synthesis_cost(c: &mut Criterion) {
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point: 400,
        ..ProfilerConfig::default()
    })
    .expect("valid profiler config");
    let profile = profiler.profile_workflow(&intelligent_assistant(), 1);

    let mut group = c.benchmark_group("hint_synthesis");
    group.sample_size(10);
    for (name, exploration) in [
        ("janus_minus", ExplorationDepth::None),
        ("janus", ExplorationDepth::HeadOnly),
        ("janus_plus", ExplorationDepth::HeadAndNext),
    ] {
        group.bench_with_input(
            BenchmarkId::new("variant", name),
            &exploration,
            |b, &expl| {
                let synthesizer = Synthesizer::new(SynthesizerConfig {
                    exploration: expl,
                    budget_step_ms: 1.0,
                    ..SynthesizerConfig::default()
                })
                .expect("valid synthesizer config");
                b.iter(|| black_box(synthesizer.synthesize(&profile)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, synthesis_cost);
criterion_main!(benches);
