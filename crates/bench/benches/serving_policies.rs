//! End-to-end serving throughput per sizing policy (the machinery behind
//! Table I / Figures 4, 5 and 9).

use criterion::{criterion_group, criterion_main, Criterion};
use janus_baselines::early::{grandslam, orion, OrionConfig};
use janus_core::deployment::{DeploymentConfig, JanusDeployment};
use janus_platform::executor::{ClosedLoopExecutor, ExecutorConfig};
use janus_platform::policy::SizingPolicy;
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_simcore::time::SimDuration;
use janus_workloads::apps::PaperApp;
use janus_workloads::request::RequestInputGenerator;
use std::hint::black_box;

fn serving_policies(c: &mut Criterion) {
    let app = PaperApp::IntelligentAssistant;
    let workflow = app.workflow();
    let slo = app.default_slo(1);
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point: 400,
        ..ProfilerConfig::default()
    })
    .expect("valid profiler config");
    let profile = profiler.profile_workflow(&workflow, 1);
    let requests = RequestInputGenerator::new(7, SimDuration::ZERO).generate(&workflow, 200);
    let executor = ClosedLoopExecutor::new(workflow.clone(), ExecutorConfig::paper_serving(slo, 1));
    let deployment = JanusDeployment::from_profile(
        &DeploymentConfig {
            samples_per_point: 400,
            budget_step_ms: 2.0,
            ..DeploymentConfig::paper_default(app, 1)
        },
        workflow.clone(),
        profile.clone(),
    )
    .expect("deployment builds");

    let mut group = c.benchmark_group("serve_200_requests");
    group.sample_size(10);
    group.bench_function("grandslam", |b| {
        b.iter(|| {
            let mut policy = grandslam(&profile, slo).expect("grandslam builds");
            black_box(executor.run(&mut policy, &requests))
        })
    });
    group.bench_function("orion", |b| {
        b.iter(|| {
            let mut policy = orion(&profile, slo, &OrionConfig::default()).expect("orion builds");
            black_box(executor.run(&mut policy, &requests))
        })
    });
    group.bench_function("janus", |b| {
        b.iter(|| {
            let mut policy = deployment.policy();
            let report = executor.run(&mut policy, &requests);
            assert!(policy.is_late_binding());
            black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, serving_policies);
criterion_main!(benches);
