//! Minimal JSON reader/writer shared by every text artefact of the
//! workspace.
//!
//! Three kinds of documents cross a process boundary as text: the hints
//! bundle (§III-A "submitted to the adapter"), the experiment reports the
//! `janus` CLI writes with `--out` (`BENCH_*.json`), and the declarative
//! sweep specs it reads with `janus sweep <spec.json>`. None of them may
//! depend on an unavailable serialisation framework (the serde shim carries
//! no machinery), so this crate implements just enough of RFC 8259 for all
//! of them: objects, arrays, finite numbers and escaped strings.
//!
//! The encoder is canonical: for any [`Value`] containing only finite
//! numbers, `parse(v.to_pretty())` reproduces `v` exactly and re-encoding
//! reproduces the byte-identical document (property-tested below). Non-finite
//! numbers encode as `null` (serde_json's choice), which a typed reader then
//! rejects with a clear error instead of producing an unparseable document.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that reports a missing key as an error.
    pub fn require(&self, key: &str) -> Result<&Value, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// Serialise with two-space indentation (mirrors `to_string_pretty`).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Serialise on a single line with no whitespace (mirrors `to_string`).
    /// Uses the same canonical number/string formatting as [`to_pretty`],
    /// so `parse(v.to_compact()) == parse(v.to_pretty())`. This is the
    /// encoder JSONL artefacts (one document per line) must use.
    ///
    /// [`to_pretty`]: Value::to_pretty
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    // JSON has no NaN/Infinity; encode them as null (serde_json's choice),
    // which a typed reader then rejects with a clear "not a number" error
    // instead of producing an unparseable document.
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("invalid number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the hints
                            // artefact (workflow names are BMP text).
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("IA \"quoted\"\n".into())),
            ("count".into(), Value::Num(3.0)),
            ("ratio".into(), Value::Num(0.25)),
            (
                "rows".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn compact_encoding_is_one_line_and_parses_back() {
        let doc = Value::Obj(vec![
            ("type".into(), Value::Str("arrival\n".into())),
            ("at_ms".into(), Value::Num(12.5)),
            (
                "rows".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Bool(false), Value::Null]),
            ),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let line = doc.to_compact();
        assert!(!line.contains('\n'), "compact output must stay one line");
        assert_eq!(
            line,
            "{\"type\":\"arrival\\n\",\"at_ms\":12.5,\"rows\":[1,false,null],\"empty\":[]}"
        );
        assert_eq!(parse(&line).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , -2.5e1 ] , \"b\" : \"x\\u0041\\t\" } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1],
            Value::Num(-25.0)
        );
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "xA\t");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    mod properties {
        //! Seeded property tests: random documents must survive
        //! encode → decode → encode byte-identically. This is the contract
        //! spec decoding and `BENCH_*.json` read-back rely on.

        use super::*;
        use janus_simcore::rng::SimRng;

        /// Draw a random value. Depth-bounded so the documents stay small
        /// enough to generate thousands per test run.
        fn arbitrary_value(rng: &mut SimRng, depth: usize) -> Value {
            // `int_range` is inclusive; cap at the leaf kinds when the depth
            // budget is spent so nesting terminates.
            let max_kind = if depth == 0 { 3 } else { 5 };
            match rng.int_range(0, max_kind) {
                0 => Value::Null,
                1 => Value::Bool(rng.uniform() < 0.5),
                2 => arbitrary_number(rng),
                3 => Value::Str(arbitrary_string(rng)),
                4 => {
                    let len = rng.int_range(0, 5) as usize;
                    Value::Arr((0..len).map(|_| arbitrary_value(rng, depth - 1)).collect())
                }
                _ => {
                    let len = rng.int_range(0, 5) as usize;
                    Value::Obj(
                        (0..len)
                            .map(|_| (arbitrary_string(rng), arbitrary_value(rng, depth - 1)))
                            .collect(),
                    )
                }
            }
        }

        /// Finite numbers across the shapes the encoder special-cases:
        /// small integers, large integers near the 1e15 integer-formatting
        /// cutoff, and fractional/scientific values.
        fn arbitrary_number(rng: &mut SimRng) -> Value {
            let n = match rng.int_range(0, 4) {
                0 => rng.int_range(0, 2000) as f64 - 1000.0,
                1 => (rng.uniform() - 0.5) * 1e16,
                2 => rng.uniform_range(-1.0, 1.0),
                _ => rng.lognormal(0.0, 5.0),
            };
            debug_assert!(n.is_finite());
            Value::Num(n)
        }

        /// Strings exercising escapes, control characters and multi-byte
        /// UTF-8.
        fn arbitrary_string(rng: &mut SimRng) -> String {
            const ALPHABET: &[char] = &[
                'a', 'b', 'z', 'A', '0', '9', ' ', '_', '-', '.', '"', '\\', '/', '\n', '\r', '\t',
                '\u{0001}', '\u{001f}', 'é', 'λ', '中', '🦀',
            ];
            let len = rng.int_range(0, 12) as usize;
            (0..len).map(|_| *rng.choose(ALPHABET)).collect()
        }

        #[test]
        fn encode_decode_encode_round_trips_byte_identically() {
            let mut rng = SimRng::seed_from_u64(0x8259);
            for case in 0..2000 {
                let value = arbitrary_value(&mut rng, 3);
                let first = value.to_pretty();
                let reparsed = parse(&first)
                    .unwrap_or_else(|e| panic!("case {case}: emitted invalid JSON ({e}): {first}"));
                assert_eq!(reparsed, value, "case {case}: decode changed the value");
                let second = reparsed.to_pretty();
                assert_eq!(
                    first, second,
                    "case {case}: re-encoding was not byte-identical"
                );
                let compact = value.to_compact();
                let from_compact = parse(&compact).unwrap_or_else(|e| {
                    panic!("case {case}: compact emitted invalid JSON ({e}): {compact}")
                });
                assert_eq!(
                    from_compact, value,
                    "case {case}: compact decode changed the value"
                );
            }
        }

        #[test]
        fn non_finite_numbers_degrade_to_null_and_stay_stable() {
            // NaN/Infinity have no JSON spelling; they encode as null, and
            // the re-encoded document (now genuinely null) is stable.
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let doc = Value::Arr(vec![Value::Num(bad), Value::Num(1.0)]).to_pretty();
                let parsed = parse(&doc).unwrap();
                assert_eq!(parsed, Value::Arr(vec![Value::Null, Value::Num(1.0)]));
                assert_eq!(parsed.to_pretty(), doc);
            }
        }
    }
}
