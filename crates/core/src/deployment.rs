//! The end-to-end Janus deployment pipeline for one workflow.
//!
//! `build()` runs the whole bilateral handshake the paper describes in
//! §III-A: the developer-side profiler collects the execution-time
//! distributions, the synthesizer generates and condenses the hints, and the
//! provider-side adapter is instantiated from the submitted bundle. The
//! result can mint any number of [`JanusPolicy`] instances for serving.

use crate::policy::JanusPolicy;
use janus_adapter::adapter::{Adapter, AdapterConfig};
use janus_profiler::profile::WorkflowProfile;
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_synthesizer::hints::HintsBundle;
use janus_synthesizer::synthesizer::{
    ExplorationDepth, SynthesisReport, Synthesizer, SynthesizerConfig,
};
use janus_workloads::apps::PaperApp;
use janus_workloads::workflow::Workflow;
use serde::{Deserialize, Serialize};

/// The three Janus variants of §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JanusVariant {
    /// `Janus⁻`: every function planned at P99 (no percentile exploration).
    Minus,
    /// `Janus`: head-function percentile exploration (the paper's system).
    Standard,
    /// `Janus⁺`: head and next-to-head exploration (more resource-efficient,
    /// far more expensive to synthesize).
    Plus,
}

impl JanusVariant {
    /// The exploration depth this variant uses.
    pub fn exploration(self) -> ExplorationDepth {
        match self {
            JanusVariant::Minus => ExplorationDepth::None,
            JanusVariant::Standard => ExplorationDepth::HeadOnly,
            JanusVariant::Plus => ExplorationDepth::HeadAndNext,
        }
    }

    /// Display name matching the paper ("Janus-", "Janus", "Janus+").
    pub fn name(self) -> &'static str {
        self.exploration().variant_name()
    }
}

/// Configuration of a Janus deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// The application to deploy.
    pub app: PaperApp,
    /// Concurrency (batch size) the workflow is served at.
    pub concurrency: u32,
    /// Variant (Janus⁻ / Janus / Janus⁺).
    pub variant: JanusVariant,
    /// Head-function weight `W`.
    pub weight: f64,
    /// Profiler samples per (allocation, concurrency) grid point.
    pub samples_per_point: usize,
    /// Budget sweep granularity in milliseconds.
    pub budget_step_ms: f64,
    /// Profiling / synthesis RNG seed.
    pub seed: u64,
}

impl DeploymentConfig {
    /// The paper's configuration: 1 ms budget sweep, Janus variant, W = 1.
    pub fn paper_default(app: PaperApp, concurrency: u32) -> Self {
        DeploymentConfig {
            app,
            concurrency,
            variant: JanusVariant::Standard,
            weight: 1.0,
            samples_per_point: 1200,
            budget_step_ms: 1.0,
            seed: 0xC0FFEE,
        }
    }

    /// A lighter configuration for unit tests and doc examples: fewer profile
    /// samples and a coarser budget sweep, preserving every code path.
    pub fn quick_for_tests(app: PaperApp, concurrency: u32) -> Self {
        DeploymentConfig {
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..Self::paper_default(app, concurrency)
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.concurrency == 0 {
            return Err("concurrency must be at least 1".into());
        }
        if self.app == PaperApp::VideoAnalyze && self.concurrency > 1 {
            return Err("VA cannot batch (FE and ICO are non-batchable); use concurrency 1".into());
        }
        if self.weight < 1.0 {
            return Err(format!("weight must be >= 1.0, got {}", self.weight));
        }
        Ok(())
    }
}

/// A fully built Janus deployment: profiles, hints and the provider adapter
/// template.
#[derive(Debug)]
pub struct JanusDeployment {
    config: DeploymentConfig,
    workflow: Workflow,
    profile: WorkflowProfile,
    bundle: HintsBundle,
    report: SynthesisReport,
}

impl JanusDeployment {
    /// Run the offline pipeline: profile → synthesize → condense.
    pub fn build(config: &DeploymentConfig) -> Result<Self, String> {
        config.validate()?;
        let workflow = config.app.workflow();
        let profiler = Profiler::new(ProfilerConfig {
            samples_per_point: config.samples_per_point,
            seed: config.seed,
            ..ProfilerConfig::default()
        })?;
        let profile = profiler.profile_workflow(&workflow, config.concurrency);
        let synthesizer = Synthesizer::new(SynthesizerConfig {
            weight: config.weight,
            exploration: config.variant.exploration(),
            budget_step_ms: config.budget_step_ms,
            ..SynthesizerConfig::default()
        })?;
        let (bundle, report) = synthesizer.synthesize(&profile);
        Ok(JanusDeployment {
            config: config.clone(),
            workflow,
            profile,
            bundle,
            report,
        })
    }

    /// Build a deployment from an already-collected profile (used when the
    /// same profile backs several variants/weights, e.g. in the benches).
    pub fn from_profile(
        config: &DeploymentConfig,
        workflow: Workflow,
        profile: WorkflowProfile,
    ) -> Result<Self, String> {
        config.validate()?;
        let synthesizer = Synthesizer::new(SynthesizerConfig {
            weight: config.weight,
            exploration: config.variant.exploration(),
            budget_step_ms: config.budget_step_ms,
            ..SynthesizerConfig::default()
        })?;
        let (bundle, report) = synthesizer.synthesize(&profile);
        Ok(JanusDeployment {
            config: config.clone(),
            workflow,
            profile,
            bundle,
            report,
        })
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// The deployed workflow.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// The profiles collected by the developer-side profiler.
    pub fn profile(&self) -> &WorkflowProfile {
        &self.profile
    }

    /// The condensed hints bundle submitted to the provider.
    pub fn bundle(&self) -> &HintsBundle {
        &self.bundle
    }

    /// Synthesis statistics (time cost, hint counts, compression).
    pub fn report(&self) -> &SynthesisReport {
        &self.report
    }

    /// Mint a fresh provider-side policy (each serving run gets its own
    /// adapter instance so hit/miss statistics are per-run).
    pub fn policy(&self) -> JanusPolicy {
        JanusPolicy::new(
            self.config.variant.name(),
            Adapter::new(self.bundle.clone(), AdapterConfig::default()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_match_the_paper() {
        assert_eq!(JanusVariant::Minus.name(), "Janus-");
        assert_eq!(JanusVariant::Standard.name(), "Janus");
        assert_eq!(JanusVariant::Plus.name(), "Janus+");
    }

    #[test]
    fn config_validation_rejects_bad_setups() {
        let mut cfg = DeploymentConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
        cfg.concurrency = 0;
        assert!(cfg.validate().is_err());
        let cfg = DeploymentConfig::quick_for_tests(PaperApp::VideoAnalyze, 2);
        assert!(cfg.validate().is_err(), "VA cannot batch");
        let mut cfg = DeploymentConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
        cfg.weight = 0.2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn build_produces_tables_for_every_suffix() {
        let cfg = DeploymentConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
        let deployment = JanusDeployment::build(&cfg).unwrap();
        assert_eq!(deployment.bundle().tables.len(), 3);
        assert!(deployment.bundle().total_hints() > 0);
        assert!(deployment.report().synthesis_time_ms > 0.0);
        assert_eq!(deployment.workflow().len(), 3);
        let policy = deployment.policy();
        assert_eq!(policy.adapter().bundle().workflow, "IA");
    }

    #[test]
    fn from_profile_reuses_the_measurement() {
        let cfg = DeploymentConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
        let built = JanusDeployment::build(&cfg).unwrap();
        let mut plus_cfg = cfg.clone();
        plus_cfg.variant = JanusVariant::Plus;
        let plus = JanusDeployment::from_profile(
            &plus_cfg,
            built.workflow().clone(),
            built.profile().clone(),
        )
        .unwrap();
        assert_eq!(plus.report().variant, "Janus+");
        assert!(plus.bundle().total_hints() > 0);
    }
}
