//! The open policy registry: how sizing policies are instantiated.
//!
//! The paper's thesis is that the hints interface lets *any* provider-side
//! policy plug into *any* developer-side workflow. The registry makes the
//! reproduction's API live up to that: a policy is anything that can build a
//! [`SizingPolicy`] from a
//! [`PolicyContext`] (the workflow, its profile, the SLO, and the request
//! set), registered under a display name. The seven policies of the paper's
//! evaluation are pre-registered built-ins; downstream crates register their
//! own policies with [`PolicyRegistry::register`] (or the closure shorthand
//! [`PolicyRegistry::register_fn`]) without touching any `janus-*` crate.
//!
//! The legacy closed `PolicyKind` enum in [`crate::comparison`] is now a thin
//! shim that resolves through this registry — see `DESIGN.md` for the
//! migration guide.

use janus_baselines::early::{grandslam, grandslam_plus, orion, OrionConfig};
use janus_baselines::oracle::OptimalOracle;
use janus_platform::policy::SizingPolicy;
use janus_profiler::profile::WorkflowProfile;
use janus_simcore::interference::InterferenceModel;
use janus_simcore::resources::CoreGrid;
use janus_simcore::time::SimDuration;
use janus_synthesizer::synthesizer::{
    ExplorationDepth, SynthesisReport, Synthesizer, SynthesizerConfig,
};
use janus_workloads::request::RequestInput;
use janus_workloads::workflow::Workflow;
use std::fmt;
use std::sync::Arc;

use crate::policy::JanusPolicy;
use janus_adapter::adapter::{Adapter, AdapterConfig};

/// Offline synthesis knobs shared by hint-based policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisSettings {
    /// Head-function weight `W` (Insight 4).
    pub weight: f64,
    /// Budget sweep granularity in milliseconds (1 ms in §V-F).
    pub budget_step_ms: f64,
}

impl Default for SynthesisSettings {
    fn default() -> Self {
        SynthesisSettings {
            weight: 1.0,
            budget_step_ms: 1.0,
        }
    }
}

/// Everything a factory may consult when instantiating a policy for one
/// serving run. Borrowed from the running [`ServingSession`]; factories must
/// not assume any field outlives the build call.
///
/// [`ServingSession`]: crate::session::ServingSession
pub struct PolicyContext<'a> {
    /// The workflow being served.
    pub workflow: &'a Workflow,
    /// Execution-time profiles of the workflow at `concurrency`.
    pub profile: &'a WorkflowProfile,
    /// End-to-end latency SLO.
    pub slo: SimDuration,
    /// Batch size (concurrency) requests are served at.
    pub concurrency: u32,
    /// The full request set of the run. Most policies ignore it; the Optimal
    /// oracle reads the pre-drawn execution factors from it.
    pub requests: &'a [RequestInput],
    /// CPU allocation grid of the platform.
    pub grid: CoreGrid,
    /// Interference model of the serving platform.
    pub interference: &'a InterferenceModel,
    /// Session seed (already mixed for profiling; use for policy-local RNG).
    pub seed: u64,
    /// Synthesis knobs for hint-based policies.
    pub synthesis: SynthesisSettings,
}

/// A policy instance ready to serve, plus any offline artefacts produced
/// while building it.
pub struct BuiltPolicy {
    /// The policy the executor will drive.
    pub policy: Box<dyn SizingPolicy>,
    /// Synthesis statistics, for policies that ran the hints pipeline.
    pub synthesis: Option<SynthesisReport>,
}

impl BuiltPolicy {
    /// Wrap a policy with no offline artefacts.
    pub fn plain(policy: impl SizingPolicy + 'static) -> Self {
        BuiltPolicy {
            policy: Box::new(policy),
            synthesis: None,
        }
    }

    /// Wrap a policy together with its synthesis report.
    pub fn with_synthesis(policy: impl SizingPolicy + 'static, report: SynthesisReport) -> Self {
        BuiltPolicy {
            policy: Box::new(policy),
            synthesis: Some(report),
        }
    }
}

impl fmt::Debug for BuiltPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuiltPolicy")
            .field("policy", &self.policy.name())
            .field("synthesis", &self.synthesis.is_some())
            .finish()
    }
}

/// An object-safe factory that instantiates one named sizing policy.
///
/// Implementations live anywhere — the built-ins below wrap the baseline
/// constructors and the Janus pipeline, and downstream crates implement the
/// trait for their own policies. `build` is called once per serving run, so
/// per-run state (hit counters, adapters) belongs in the returned policy, not
/// in the factory.
pub trait PolicyFactory: Send + Sync {
    /// Display name the policy is registered (and reported) under.
    fn name(&self) -> &str;

    /// Instantiate the policy for one serving run.
    fn build(&self, ctx: &PolicyContext<'_>) -> Result<BuiltPolicy, String>;
}

/// An ordered, open registry of [`PolicyFactory`]s.
///
/// Registration order is preserved (it drives default report ordering);
/// registering a factory under an existing name replaces the earlier entry,
/// so sessions can override a built-in without forking the registry.
#[derive(Clone, Default)]
pub struct PolicyRegistry {
    factories: Vec<Arc<dyn PolicyFactory>>,
}

impl fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("policies", &self.names())
            .finish()
    }
}

impl PolicyRegistry {
    /// An empty registry (no built-ins).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the paper's seven policies, in Table I
    /// order: Optimal, ORION, GrandSLAM+, GrandSLAM, Janus-, Janus, Janus+.
    pub fn with_builtins() -> Self {
        let mut registry = PolicyRegistry::new();
        registry.register(Arc::new(OptimalFactory));
        registry.register(Arc::new(OrionFactory::default()));
        registry.register(Arc::new(GrandSlamFactory { per_function: true }));
        registry.register(Arc::new(GrandSlamFactory {
            per_function: false,
        }));
        registry.register(Arc::new(JanusFactory::new(ExplorationDepth::None)));
        registry.register(Arc::new(JanusFactory::new(ExplorationDepth::HeadOnly)));
        registry.register(Arc::new(JanusFactory::new(ExplorationDepth::HeadAndNext)));
        registry
    }

    /// Register a factory. Replaces any earlier factory with the same name
    /// (keeping its position), otherwise appends.
    pub fn register(&mut self, factory: Arc<dyn PolicyFactory>) -> &mut Self {
        match self
            .factories
            .iter()
            .position(|f| f.name() == factory.name())
        {
            Some(i) => self.factories[i] = factory,
            None => self.factories.push(factory),
        }
        self
    }

    /// Closure shorthand for [`register`](Self::register).
    pub fn register_fn<F>(&mut self, name: impl Into<String>, build: F) -> &mut Self
    where
        F: Fn(&PolicyContext<'_>) -> Result<BuiltPolicy, String> + Send + Sync + 'static,
    {
        self.register(Arc::new(FnFactory {
            name: name.into(),
            build,
        }))
    }

    /// Look a factory up by its registered name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn PolicyFactory>> {
        self.factories.iter().find(|f| f.name() == name).cloned()
    }

    /// Instantiate the named policy, with an informative error for unknown
    /// names.
    pub fn build(&self, name: &str, ctx: &PolicyContext<'_>) -> Result<BuiltPolicy, String> {
        let factory = self.get(name).ok_or_else(|| {
            format!(
                "unknown policy `{name}`; registered policies: {}",
                self.names().join(", ")
            )
        })?;
        let built = factory.build(ctx)?;
        Ok(built)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.factories.iter().map(|f| f.name()).collect()
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

struct FnFactory<F> {
    name: String,
    build: F,
}

impl<F> PolicyFactory for FnFactory<F>
where
    F: Fn(&PolicyContext<'_>) -> Result<BuiltPolicy, String> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, ctx: &PolicyContext<'_>) -> Result<BuiltPolicy, String> {
        (self.build)(ctx)
    }
}

/// Built-in: the late-binding Optimal oracle (normalisation baseline).
pub struct OptimalFactory;

impl PolicyFactory for OptimalFactory {
    fn name(&self) -> &str {
        "Optimal"
    }

    fn build(&self, ctx: &PolicyContext<'_>) -> Result<BuiltPolicy, String> {
        Ok(BuiltPolicy::plain(OptimalOracle::new(
            ctx.workflow,
            ctx.requests,
            ctx.slo,
            ctx.concurrency,
            ctx.grid,
            ctx.interference,
        )))
    }
}

/// Built-in: ORION's distribution-based early binding.
#[derive(Default)]
pub struct OrionFactory {
    /// Convolution configuration (Monte-Carlo draws, target percentile).
    pub config: OrionConfig,
}

impl PolicyFactory for OrionFactory {
    fn name(&self) -> &str {
        "ORION"
    }

    fn build(&self, ctx: &PolicyContext<'_>) -> Result<BuiltPolicy, String> {
        Ok(BuiltPolicy::plain(orion(
            ctx.profile,
            ctx.slo,
            &self.config,
        )?))
    }
}

/// Built-in: GrandSLAM (identical sizes) and GrandSLAM+ (per-function sizes).
pub struct GrandSlamFactory {
    /// `false` for the original identical-size GrandSLAM, `true` for the
    /// paper's per-function GrandSLAM+ enhancement.
    pub per_function: bool,
}

impl PolicyFactory for GrandSlamFactory {
    fn name(&self) -> &str {
        if self.per_function {
            "GrandSLAM+"
        } else {
            "GrandSLAM"
        }
    }

    fn build(&self, ctx: &PolicyContext<'_>) -> Result<BuiltPolicy, String> {
        let policy = if self.per_function {
            grandslam_plus(ctx.profile, ctx.slo)?
        } else {
            grandslam(ctx.profile, ctx.slo)?
        };
        Ok(BuiltPolicy::plain(policy))
    }
}

/// Built-in: the three Janus variants (profile → synthesize → adapter),
/// parameterised by percentile-exploration depth.
pub struct JanusFactory {
    exploration: ExplorationDepth,
}

impl JanusFactory {
    /// A factory for the variant with the given exploration depth.
    pub fn new(exploration: ExplorationDepth) -> Self {
        JanusFactory { exploration }
    }
}

impl PolicyFactory for JanusFactory {
    fn name(&self) -> &str {
        self.exploration.variant_name()
    }

    fn build(&self, ctx: &PolicyContext<'_>) -> Result<BuiltPolicy, String> {
        let synthesizer = Synthesizer::new(SynthesizerConfig {
            weight: ctx.synthesis.weight,
            exploration: self.exploration,
            budget_step_ms: ctx.synthesis.budget_step_ms,
            ..SynthesizerConfig::default()
        })?;
        let (bundle, report) = synthesizer.synthesize(ctx.profile);
        let policy = JanusPolicy::new(
            self.exploration.variant_name(),
            Adapter::new(bundle, AdapterConfig::default()),
        );
        Ok(BuiltPolicy::with_synthesis(policy, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_platform::policy::FixedSizingPolicy;
    use janus_profiler::profiler::{Profiler, ProfilerConfig};
    use janus_simcore::resources::Millicores;
    use janus_workloads::apps::intelligent_assistant;
    use janus_workloads::request::RequestInputGenerator;

    fn with_ctx<R>(f: impl FnOnce(&PolicyContext<'_>) -> R) -> R {
        let workflow = intelligent_assistant();
        let profile = Profiler::new(ProfilerConfig {
            samples_per_point: 250,
            ..ProfilerConfig::default()
        })
        .unwrap()
        .profile_workflow(&workflow, 1);
        let requests = RequestInputGenerator::new(1, SimDuration::ZERO).generate(&workflow, 10);
        let interference = InterferenceModel::paper_calibrated();
        let ctx = PolicyContext {
            workflow: &workflow,
            profile: &profile,
            slo: SimDuration::from_secs(3.0),
            concurrency: 1,
            requests: &requests,
            grid: CoreGrid::paper_default(),
            interference: &interference,
            seed: 1,
            synthesis: SynthesisSettings {
                budget_step_ms: 10.0,
                ..SynthesisSettings::default()
            },
        };
        f(&ctx)
    }

    #[test]
    fn builtins_cover_the_papers_seven_policies_in_order() {
        let registry = PolicyRegistry::with_builtins();
        assert_eq!(
            registry.names(),
            vec![
                "Optimal",
                "ORION",
                "GrandSLAM+",
                "GrandSLAM",
                "Janus-",
                "Janus",
                "Janus+"
            ]
        );
        assert_eq!(registry.len(), 7);
        assert!(!registry.is_empty());
    }

    #[test]
    fn every_builtin_builds_a_policy_with_its_registered_name() {
        with_ctx(|ctx| {
            let registry = PolicyRegistry::with_builtins();
            for name in registry.names() {
                let built = registry.build(name, ctx).unwrap();
                assert_eq!(built.policy.name(), name);
                let is_janus = name.starts_with("Janus");
                assert_eq!(built.synthesis.is_some(), is_janus, "{name}");
            }
        });
    }

    #[test]
    fn unknown_names_report_the_known_ones() {
        with_ctx(|ctx| {
            let registry = PolicyRegistry::with_builtins();
            let err = registry.build("nope", ctx).unwrap_err();
            assert!(err.contains("unknown policy `nope`"), "{err}");
            assert!(err.contains("Janus+"), "{err}");
        });
    }

    #[test]
    fn custom_factories_can_replace_and_extend_builtins() {
        with_ctx(|ctx| {
            let mut registry = PolicyRegistry::with_builtins();
            registry.register_fn("AllMax", |ctx| {
                Ok(BuiltPolicy::plain(FixedSizingPolicy::uniform(
                    "AllMax",
                    ctx.workflow,
                    ctx.grid.max,
                )?))
            });
            assert_eq!(registry.len(), 8);
            let built = registry.build("AllMax", ctx).unwrap();
            assert_eq!(built.policy.name(), "AllMax");

            // Replacing keeps the original position.
            registry.register_fn("ORION", |ctx| {
                Ok(BuiltPolicy::plain(FixedSizingPolicy::uniform(
                    "ORION",
                    ctx.workflow,
                    Millicores::new(2222),
                )?))
            });
            assert_eq!(registry.len(), 8);
            assert_eq!(registry.names()[1], "ORION");
            let mut built = registry.build("ORION", ctx).unwrap();
            let ctx_req = janus_platform::policy::RequestContext {
                request_id: 0,
                slo: ctx.slo,
                concurrency: 1,
                workflow_len: ctx.workflow.len(),
            };
            assert_eq!(
                built.policy.size_next(&ctx_req, 0, ctx.slo),
                Millicores::new(2222)
            );
        });
    }
}
