//! Paired policy comparisons on identical request sets.
//!
//! Every evaluation figure of the paper compares systems serving the *same*
//! workload, so the comparison runner generates one request set and replays
//! it under each policy on the same executor configuration. Resource numbers
//! are then typically normalised by the Optimal oracle, as in Table I and
//! Figures 5 and 9.

use crate::deployment::{DeploymentConfig, JanusDeployment, JanusVariant};
use janus_baselines::early::{grandslam, grandslam_plus, orion, OrionConfig};
use janus_baselines::oracle::OptimalOracle;
use janus_platform::executor::{ClosedLoopExecutor, ExecutorConfig};
use janus_platform::outcome::ServingReport;
use janus_profiler::profile::WorkflowProfile;
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_simcore::resources::CoreGrid;
use janus_simcore::time::SimDuration;
use janus_synthesizer::synthesizer::SynthesisReport;
use janus_workloads::apps::PaperApp;
use janus_workloads::request::{RequestInput, RequestInputGenerator};
use serde::{Deserialize, Serialize};

/// The sizing policies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Late-binding oracle with perfect knowledge (normalisation baseline).
    Optimal,
    /// ORION: distribution-based early binding.
    Orion,
    /// GrandSLAM⁺: per-function early binding on the sum of P99s.
    GrandSlamPlus,
    /// GrandSLAM: identical-size early binding.
    GrandSlam,
    /// Janus⁻: hints without percentile exploration.
    JanusMinus,
    /// Janus: the paper's system.
    Janus,
    /// Janus⁺: percentile exploration for the first two functions.
    JanusPlus,
}

impl PolicyKind {
    /// Display name as used in the paper's tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Optimal => "Optimal",
            PolicyKind::Orion => "ORION",
            PolicyKind::GrandSlamPlus => "GrandSLAM+",
            PolicyKind::GrandSlam => "GrandSLAM",
            PolicyKind::JanusMinus => "Janus-",
            PolicyKind::Janus => "Janus",
            PolicyKind::JanusPlus => "Janus+",
        }
    }

    /// All seven policies in the order Table I / Figure 5 list them.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Optimal,
        PolicyKind::Orion,
        PolicyKind::GrandSlamPlus,
        PolicyKind::GrandSlam,
        PolicyKind::JanusMinus,
        PolicyKind::Janus,
        PolicyKind::JanusPlus,
    ];

    /// The subset used by the SLO-sweep figure (Figure 9).
    pub const SLO_SWEEP: [PolicyKind; 4] = [
        PolicyKind::Optimal,
        PolicyKind::Orion,
        PolicyKind::GrandSlam,
        PolicyKind::Janus,
    ];

    /// The Janus variant corresponding to this policy, if any.
    pub fn janus_variant(self) -> Option<JanusVariant> {
        match self {
            PolicyKind::JanusMinus => Some(JanusVariant::Minus),
            PolicyKind::Janus => Some(JanusVariant::Standard),
            PolicyKind::JanusPlus => Some(JanusVariant::Plus),
            _ => None,
        }
    }
}

/// Configuration of one comparison run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonConfig {
    /// Application under test.
    pub app: PaperApp,
    /// Concurrency (batch size).
    pub concurrency: u32,
    /// End-to-end latency SLO.
    pub slo: SimDuration,
    /// Number of requests replayed per policy (1000 in the paper).
    pub requests: usize,
    /// Request / profiling seed.
    pub seed: u64,
    /// Profiler samples per grid point.
    pub samples_per_point: usize,
    /// Synthesizer budget step in milliseconds.
    pub budget_step_ms: f64,
    /// Policies to include.
    pub policies: Vec<PolicyKind>,
    /// Whether pod startup delays count against latency.
    pub count_startup_delays: bool,
}

impl ComparisonConfig {
    /// The paper's setup for an application at a given concurrency, using the
    /// default SLO (IA: 3/4/5 s, VA: 1.5 s) and 1000 requests.
    pub fn paper_default(app: PaperApp, concurrency: u32) -> Self {
        ComparisonConfig {
            app,
            concurrency,
            slo: app.default_slo(concurrency),
            requests: 1000,
            seed: 7,
            samples_per_point: 1000,
            budget_step_ms: 1.0,
            policies: PolicyKind::ALL.to_vec(),
            count_startup_delays: true,
        }
    }

    /// A fast configuration for unit/integration tests: fewer requests,
    /// fewer profile samples, coarser budget sweep.
    pub fn quick_for_tests(app: PaperApp, concurrency: u32) -> Self {
        ComparisonConfig {
            requests: 150,
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..Self::paper_default(app, concurrency)
        }
    }
}

/// The outcome of a comparison run: one serving report per policy plus the
/// synthesis reports of the Janus variants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonOutcome {
    /// Configuration the run used.
    pub config: ComparisonConfig,
    /// Serving reports in the same order as `config.policies`.
    pub reports: Vec<ServingReport>,
    /// Synthesis reports for the Janus variants that were built.
    pub synthesis: Vec<SynthesisReport>,
}

impl ComparisonOutcome {
    /// The serving report of one policy, if it was part of the run.
    pub fn report(&self, kind: PolicyKind) -> Option<&ServingReport> {
        self.config
            .policies
            .iter()
            .position(|&k| k == kind)
            .map(|i| &self.reports[i])
    }

    /// Mean CPU of a policy normalised by the Optimal oracle.
    pub fn normalized_cpu(&self, kind: PolicyKind) -> Option<f64> {
        let optimal = self.report(PolicyKind::Optimal)?;
        Some(self.report(kind)?.cpu_normalized_by(optimal))
    }

    /// Table I entry: resource reduction of `ours` versus `other`, normalised
    /// by Optimal, as a percentage.
    pub fn reduction_percent(&self, ours: PolicyKind, other: PolicyKind) -> Option<f64> {
        let optimal = self.report(PolicyKind::Optimal)?;
        Some(self.report(ours)?.reduction_vs(self.report(other)?, optimal) * 100.0)
    }
}

/// Run a comparison: profile the workflow once, build every requested policy,
/// replay the same requests under each of them.
pub fn run(config: &ComparisonConfig) -> Result<ComparisonOutcome, String> {
    let workflow = config.app.workflow();
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point: config.samples_per_point,
        seed: config.seed ^ 0x5EED,
        ..ProfilerConfig::default()
    })?;
    let profile: WorkflowProfile = profiler.profile_workflow(&workflow, config.concurrency);

    let mut generator = RequestInputGenerator::new(config.seed, SimDuration::ZERO);
    let requests: Vec<RequestInput> = generator.generate(&workflow, config.requests);

    let exec_config = ExecutorConfig {
        count_startup_delays: config.count_startup_delays,
        ..ExecutorConfig::paper_serving(config.slo, config.concurrency)
    };
    let executor = ClosedLoopExecutor::new(workflow.clone(), exec_config.clone());

    let mut reports = Vec::with_capacity(config.policies.len());
    let mut synthesis = Vec::new();
    for &kind in &config.policies {
        let report = match kind {
            PolicyKind::Optimal => {
                let mut oracle = OptimalOracle::new(
                    &workflow,
                    &requests,
                    config.slo,
                    config.concurrency,
                    CoreGrid::paper_default(),
                    &exec_config.interference,
                );
                executor.run(&mut oracle, &requests)
            }
            PolicyKind::Orion => {
                let mut policy = orion(&profile, config.slo, &OrionConfig::default());
                executor.run(&mut policy, &requests)
            }
            PolicyKind::GrandSlamPlus => {
                let mut policy = grandslam_plus(&profile, config.slo);
                executor.run(&mut policy, &requests)
            }
            PolicyKind::GrandSlam => {
                let mut policy = grandslam(&profile, config.slo);
                executor.run(&mut policy, &requests)
            }
            PolicyKind::JanusMinus | PolicyKind::Janus | PolicyKind::JanusPlus => {
                let variant = kind.janus_variant().expect("janus kinds have a variant");
                let dep_config = DeploymentConfig {
                    app: config.app,
                    concurrency: config.concurrency,
                    variant,
                    weight: 1.0,
                    samples_per_point: config.samples_per_point,
                    budget_step_ms: config.budget_step_ms,
                    seed: config.seed ^ 0x5EED,
                };
                let deployment =
                    JanusDeployment::from_profile(&dep_config, workflow.clone(), profile.clone())?;
                synthesis.push(deployment.report().clone());
                let mut policy = deployment.policy();
                executor.run(&mut policy, &requests)
            }
        };
        reports.push(report);
    }

    Ok(ComparisonOutcome {
        config: config.clone(),
        reports,
        synthesis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_the_expected_ordering() {
        let mut config = ComparisonConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
        config.policies = vec![
            PolicyKind::Optimal,
            PolicyKind::Orion,
            PolicyKind::GrandSlam,
            PolicyKind::Janus,
        ];
        let outcome = run(&config).unwrap();
        assert_eq!(outcome.reports.len(), 4);
        let optimal = outcome.report(PolicyKind::Optimal).unwrap().mean_cpu_millicores();
        let orion = outcome.report(PolicyKind::Orion).unwrap().mean_cpu_millicores();
        let grandslam = outcome.report(PolicyKind::GrandSlam).unwrap().mean_cpu_millicores();
        let janus = outcome.report(PolicyKind::Janus).unwrap().mean_cpu_millicores();
        // The headline ordering of Table I / Figure 5.
        assert!(optimal <= janus, "optimal {optimal} <= janus {janus}");
        assert!(janus < orion, "janus {janus} < orion {orion}");
        assert!(orion < grandslam, "orion {orion} < grandslam {grandslam}");
        // Everyone keeps SLO violations low (P99-style guarantee).
        for kind in [PolicyKind::Orion, PolicyKind::GrandSlam, PolicyKind::Janus] {
            let rate = outcome.report(kind).unwrap().slo_violation_rate();
            assert!(rate <= 0.03, "{} violates too often: {rate}", kind.name());
        }
        // Normalisation helpers.
        assert!(outcome.normalized_cpu(PolicyKind::Janus).unwrap() >= 1.0);
        assert!(outcome.reduction_percent(PolicyKind::Janus, PolicyKind::GrandSlam).unwrap() > 0.0);
        assert!(outcome.report(PolicyKind::JanusPlus).is_none());
    }

    #[test]
    fn policy_names_and_sets_are_consistent() {
        assert_eq!(PolicyKind::ALL.len(), 7);
        assert_eq!(PolicyKind::Janus.name(), "Janus");
        assert_eq!(PolicyKind::GrandSlamPlus.name(), "GrandSLAM+");
        assert_eq!(PolicyKind::Janus.janus_variant(), Some(JanusVariant::Standard));
        assert_eq!(PolicyKind::Orion.janus_variant(), None);
    }
}
