//! Legacy paired-comparison surface, now a thin shim over
//! [`ServingSession`].
//!
//! Every evaluation figure of the paper compares systems serving the *same*
//! workload; the session runner generates one request set and replays it
//! under each policy. This module keeps the original experiment-runner
//! surface — [`PolicyKind`], [`ComparisonConfig`], [`run`] — compiling on top
//! of the open [`PolicyRegistry`](crate::registry::PolicyRegistry).
//!
//! **Migration (see `DESIGN.md`):** `PolicyKind` is a closed enum over the
//! paper's seven built-ins and exists only for the legacy runners; new code
//! should address policies by registered name through
//! `ServingSession::builder()`, which also admits custom policies.

use crate::deployment::JanusVariant;
use crate::session::{Load, ServingSession};
use janus_platform::outcome::ServingReport;
use janus_simcore::time::SimDuration;
use janus_synthesizer::synthesizer::SynthesisReport;
use janus_workloads::apps::PaperApp;
use serde::{Deserialize, Serialize};

/// The sizing policies the paper evaluates — a closed shim over the open
/// registry: [`PolicyKind::name`] is exactly the name the built-in factory is
/// registered under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Late-binding oracle with perfect knowledge (normalisation baseline).
    Optimal,
    /// ORION: distribution-based early binding.
    Orion,
    /// GrandSLAM⁺: per-function early binding on the sum of P99s.
    GrandSlamPlus,
    /// GrandSLAM: identical-size early binding.
    GrandSlam,
    /// Janus⁻: hints without percentile exploration.
    JanusMinus,
    /// Janus: the paper's system.
    Janus,
    /// Janus⁺: percentile exploration for the first two functions.
    JanusPlus,
}

impl PolicyKind {
    /// Display name as used in the paper's tables and figures, and as the
    /// key the policy is registered under in
    /// [`PolicyRegistry::with_builtins`](crate::registry::PolicyRegistry::with_builtins).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Optimal => "Optimal",
            PolicyKind::Orion => "ORION",
            PolicyKind::GrandSlamPlus => "GrandSLAM+",
            PolicyKind::GrandSlam => "GrandSLAM",
            PolicyKind::JanusMinus => "Janus-",
            PolicyKind::Janus => "Janus",
            PolicyKind::JanusPlus => "Janus+",
        }
    }

    /// The kind registered under `name`, if it is one of the built-ins.
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// All seven policies in the order Table I / Figure 5 list them.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Optimal,
        PolicyKind::Orion,
        PolicyKind::GrandSlamPlus,
        PolicyKind::GrandSlam,
        PolicyKind::JanusMinus,
        PolicyKind::Janus,
        PolicyKind::JanusPlus,
    ];

    /// The subset used by the SLO-sweep figure (Figure 9).
    pub const SLO_SWEEP: [PolicyKind; 4] = [
        PolicyKind::Optimal,
        PolicyKind::Orion,
        PolicyKind::GrandSlam,
        PolicyKind::Janus,
    ];

    /// The Janus variant corresponding to this policy, if any.
    pub fn janus_variant(self) -> Option<JanusVariant> {
        match self {
            PolicyKind::JanusMinus => Some(JanusVariant::Minus),
            PolicyKind::Janus => Some(JanusVariant::Standard),
            PolicyKind::JanusPlus => Some(JanusVariant::Plus),
            _ => None,
        }
    }
}

/// Configuration of one comparison run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonConfig {
    /// Application under test.
    pub app: PaperApp,
    /// Concurrency (batch size).
    pub concurrency: u32,
    /// End-to-end latency SLO.
    pub slo: SimDuration,
    /// Number of requests replayed per policy (1000 in the paper).
    pub requests: usize,
    /// Request / profiling seed.
    pub seed: u64,
    /// Profiler samples per grid point.
    pub samples_per_point: usize,
    /// Synthesizer budget step in milliseconds.
    pub budget_step_ms: f64,
    /// Policies to include.
    pub policies: Vec<PolicyKind>,
    /// Whether pod startup delays count against latency.
    pub count_startup_delays: bool,
}

impl ComparisonConfig {
    /// The paper's setup for an application at a given concurrency, using the
    /// default SLO (IA: 3/4/5 s, VA: 1.5 s) and 1000 requests.
    pub fn paper_default(app: PaperApp, concurrency: u32) -> Self {
        ComparisonConfig {
            app,
            concurrency,
            slo: app.default_slo(concurrency),
            requests: 1000,
            seed: 7,
            samples_per_point: 1000,
            budget_step_ms: 1.0,
            policies: PolicyKind::ALL.to_vec(),
            count_startup_delays: true,
        }
    }

    /// A fast configuration for unit/integration tests: fewer requests,
    /// fewer profile samples, coarser budget sweep.
    pub fn quick_for_tests(app: PaperApp, concurrency: u32) -> Self {
        ComparisonConfig {
            requests: 150,
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..Self::paper_default(app, concurrency)
        }
    }

    /// The equivalent [`ServingSession`] builder: the modern way to run what
    /// this config describes, and the path [`run`] itself takes.
    pub fn session(&self) -> crate::session::ServingSessionBuilder {
        ServingSession::builder()
            .app(self.app)
            .slo(self.slo)
            .concurrency(self.concurrency)
            .policies(self.policies.iter().map(|k| k.name()))
            .load(Load::Closed {
                requests: self.requests,
            })
            .seed(self.seed)
            .samples_per_point(self.samples_per_point)
            .budget_step_ms(self.budget_step_ms)
            .count_startup_delays(self.count_startup_delays)
    }
}

/// The outcome of a comparison run: one serving report per policy plus the
/// synthesis reports of the Janus variants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonOutcome {
    /// Configuration the run used.
    pub config: ComparisonConfig,
    /// Serving reports in the same order as `config.policies`.
    pub reports: Vec<ServingReport>,
    /// Synthesis reports for the Janus variants that were built.
    pub synthesis: Vec<SynthesisReport>,
}

impl ComparisonOutcome {
    /// The serving report of one policy, if it was part of the run.
    pub fn report(&self, kind: PolicyKind) -> Option<&ServingReport> {
        self.config
            .policies
            .iter()
            .position(|&k| k == kind)
            .map(|i| &self.reports[i])
    }

    /// Mean CPU of a policy normalised by the Optimal oracle.
    pub fn normalized_cpu(&self, kind: PolicyKind) -> Option<f64> {
        let optimal = self.report(PolicyKind::Optimal)?;
        Some(self.report(kind)?.cpu_normalized_by(optimal))
    }

    /// Table I entry: resource reduction of `ours` versus `other`, normalised
    /// by Optimal, as a percentage.
    pub fn reduction_percent(&self, ours: PolicyKind, other: PolicyKind) -> Option<f64> {
        let optimal = self.report(PolicyKind::Optimal)?;
        Some(
            self.report(ours)?
                .reduction_vs(self.report(other)?, optimal)
                * 100.0,
        )
    }
}

/// Run a comparison through the unified session runner: profile the workflow
/// once, build every requested policy from the registry, replay the same
/// requests under each of them.
pub fn run(config: &ComparisonConfig) -> Result<ComparisonOutcome, String> {
    let session = config.session().build()?;
    let report = session.run()?;
    Ok(ComparisonOutcome {
        config: config.clone(),
        reports: report.policies.iter().map(|p| p.serving.clone()).collect(),
        synthesis: report
            .policies
            .into_iter()
            .filter_map(|p| p.synthesis)
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_the_expected_ordering() {
        let mut config = ComparisonConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
        config.policies = vec![
            PolicyKind::Optimal,
            PolicyKind::Orion,
            PolicyKind::GrandSlam,
            PolicyKind::Janus,
        ];
        let outcome = run(&config).unwrap();
        assert_eq!(outcome.reports.len(), 4);
        let optimal = outcome
            .report(PolicyKind::Optimal)
            .unwrap()
            .mean_cpu_millicores();
        let orion = outcome
            .report(PolicyKind::Orion)
            .unwrap()
            .mean_cpu_millicores();
        let grandslam = outcome
            .report(PolicyKind::GrandSlam)
            .unwrap()
            .mean_cpu_millicores();
        let janus = outcome
            .report(PolicyKind::Janus)
            .unwrap()
            .mean_cpu_millicores();
        // The headline ordering of Table I / Figure 5.
        assert!(optimal <= janus, "optimal {optimal} <= janus {janus}");
        assert!(janus < orion, "janus {janus} < orion {orion}");
        assert!(orion < grandslam, "orion {orion} < grandslam {grandslam}");
        // Everyone keeps SLO violations low (P99-style guarantee).
        for kind in [PolicyKind::Orion, PolicyKind::GrandSlam, PolicyKind::Janus] {
            let rate = outcome.report(kind).unwrap().slo_violation_rate();
            assert!(rate <= 0.03, "{} violates too often: {rate}", kind.name());
        }
        // Normalisation helpers.
        assert!(outcome.normalized_cpu(PolicyKind::Janus).unwrap() >= 1.0);
        assert!(
            outcome
                .reduction_percent(PolicyKind::Janus, PolicyKind::GrandSlam)
                .unwrap()
                > 0.0
        );
        assert!(outcome.report(PolicyKind::JanusPlus).is_none());
    }

    #[test]
    fn policy_names_and_sets_are_consistent() {
        assert_eq!(PolicyKind::ALL.len(), 7);
        assert_eq!(PolicyKind::Janus.name(), "Janus");
        assert_eq!(PolicyKind::GrandSlamPlus.name(), "GrandSLAM+");
        assert_eq!(
            PolicyKind::Janus.janus_variant(),
            Some(JanusVariant::Standard)
        );
        assert_eq!(PolicyKind::Orion.janus_variant(), None);
        assert_eq!(PolicyKind::from_name("Janus+"), Some(PolicyKind::JanusPlus));
        assert_eq!(PolicyKind::from_name("janus"), None);
    }

    #[test]
    fn the_shim_matches_the_registry_builtins_one_to_one() {
        let registry = crate::registry::PolicyRegistry::with_builtins();
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(registry.names(), names);
    }
}
