//! # janus-core
//!
//! The public facade of the Janus reproduction: *bilaterally engaged runtime
//! resource adaptation for serverless workflows*.
//!
//! Janus lets serverless developers keep their domain knowledge (workflow
//! structure, execution-time profiles, SLOs) and providers keep their runtime
//! information, bridging the gap with a compact *hints table*:
//!
//! 1. the developer-side **profiler** measures each function's execution time
//!    across CPU allocations and concurrency levels
//!    ([`janus_profiler`]),
//! 2. the developer-side **synthesizer** turns those profiles into condensed
//!    `⟨t_start, t_end, size⟩` hints (Algorithms 1 and 2,
//!    [`janus_synthesizer`]),
//! 3. the provider-side **adapter** searches the hints whenever a function of
//!    a request finishes and resizes the next function accordingly
//!    ([`janus_adapter`]).
//!
//! This crate wires the three together:
//!
//! * [`JanusDeployment`] — the end-to-end pipeline (profile → synthesize →
//!   deploy adapter) for one workflow, concurrency and SLO.
//! * [`JanusPolicy`] — the resulting late-binding
//!   [`SizingPolicy`](janus_platform::policy::SizingPolicy), runnable on the
//!   same platform executor as every baseline.
//! * [`comparison`] — paired policy comparisons (Optimal, ORION, GrandSLAM,
//!   GrandSLAM⁺, Janus⁻, Janus, Janus⁺) over identical request sets.
//! * [`experiments`] — one runner per table/figure of the paper's evaluation
//!   (see `DESIGN.md` for the experiment index).
//!
//! ## Quickstart
//!
//! ```
//! use janus_core::{JanusDeployment, DeploymentConfig};
//! use janus_workloads::apps::PaperApp;
//!
//! // Deploy the Intelligent Assistant workflow with a 3 s SLO.
//! let config = DeploymentConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
//! let deployment = JanusDeployment::build(&config).expect("valid configuration");
//! println!(
//!     "{} condensed hints, synthesised in {:.1} ms",
//!     deployment.bundle().total_hints(),
//!     deployment.report().synthesis_time_ms
//! );
//! let mut policy = deployment.policy();
//! // `policy` now sizes functions at runtime; hand it to the platform executor.
//! # let _ = &mut policy;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comparison;
pub mod deployment;
pub mod experiments;
pub mod policy;

pub use comparison::{ComparisonConfig, ComparisonOutcome, PolicyKind};
pub use deployment::{DeploymentConfig, JanusDeployment, JanusVariant};
pub use policy::JanusPolicy;

// Re-export the component crates under one roof for downstream users.
pub use janus_adapter as adapter;
pub use janus_baselines as baselines;
pub use janus_platform as platform;
pub use janus_profiler as profiler;
pub use janus_simcore as simcore;
pub use janus_synthesizer as synthesizer;
pub use janus_trace as trace;
pub use janus_workloads as workloads;
