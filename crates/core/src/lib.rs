//! # janus-core
//!
//! The public facade of the Janus reproduction: *bilaterally engaged runtime
//! resource adaptation for serverless workflows*.
//!
//! Janus lets serverless developers keep their domain knowledge (workflow
//! structure, execution-time profiles, SLOs) and providers keep their runtime
//! information, bridging the gap with a compact *hints table*:
//!
//! 1. the developer-side **profiler** measures each function's execution time
//!    across CPU allocations and concurrency levels
//!    ([`janus_profiler`]),
//! 2. the developer-side **synthesizer** turns those profiles into condensed
//!    `⟨t_start, t_end, size⟩` hints (Algorithms 1 and 2,
//!    [`janus_synthesizer`]),
//! 3. the provider-side **adapter** searches the hints whenever a function of
//!    a request finishes and resizes the next function accordingly
//!    ([`janus_adapter`]).
//!
//! This crate wires the three together:
//!
//! * [`session`] — **the serving entry point**: a [`ServingSession`] builder
//!   that profiles a workflow, resolves policies by name and replays one
//!   request set under each of them, in closed- or open-loop, returning a
//!   normalized [`SessionReport`].
//! * [`registry`] — the open [`PolicyRegistry`]: the paper's seven policies
//!   as pre-registered [`PolicyFactory`]s, plus registration of custom
//!   policies from any downstream crate.
//! * [`scenarios`] (re-exported `janus-scenarios`) — the workload axis:
//!   pluggable arrival processes (`poisson`, `diurnal`, `bursty`,
//!   `flash-crowd`, `trace-replay`) behind an open `ScenarioRegistry`,
//!   selected per session with `.scenario(..)` / `.arrivals(..)` and swept
//!   against the policy grid by [`fn@experiments::scenario_sweep`].
//! * [`JanusDeployment`] — the end-to-end pipeline (profile → synthesize →
//!   deploy adapter) for one workflow, concurrency and SLO.
//! * [`JanusPolicy`] — the resulting late-binding
//!   [`SizingPolicy`](janus_platform::policy::SizingPolicy), runnable on the
//!   same platform executor as every baseline.
//! * [`comparison`] — the legacy paired-comparison surface, now a thin shim
//!   over [`session`] (the closed `PolicyKind` enum maps one-to-one onto the
//!   registry's built-in names).
//! * [`experiments`] — the declarative experiment layer: an object-safe
//!   [`Experiment`](experiments::Experiment) trait behind an open
//!   [`ExperimentRegistry`](experiments::ExperimentRegistry) (one built-in
//!   per table/figure of the paper's evaluation, run by name through the
//!   `janus` CLI), plus [`SweepSpec`](experiments::SweepSpec) — a
//!   serializable grid of policies × scenarios × loads × seeds × capacity
//!   configs executed in parallel by
//!   [`run_sweep`](experiments::run_sweep). See `DESIGN.md` §3.
//!
//! ## Quickstart
//!
//! ```
//! use janus_core::session::{Load, ServingSession};
//! use janus_workloads::apps::PaperApp;
//!
//! // Serve the Intelligent Assistant under its paper SLO, comparing the
//! // paper's system against GrandSLAM on an identical request set.
//! let report = ServingSession::builder()
//!     .app(PaperApp::IntelligentAssistant)
//!     .concurrency(1)
//!     .policy("Janus")
//!     .policy("GrandSLAM")
//!     .load(Load::Closed { requests: 40 })
//!     .quick() // test-scale profiling; drop for paper scale
//!     .run()
//!     .expect("session runs");
//! assert!(report.normalized_cpu("GrandSLAM", "Janus").unwrap() > 1.0);
//! assert!(report.slo_attainment("Janus").unwrap() >= 0.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comparison;
pub mod deployment;
pub mod experiments;
pub mod policy;
pub mod registry;
pub mod session;

pub use comparison::{ComparisonConfig, ComparisonOutcome, PolicyKind};
pub use deployment::{DeploymentConfig, JanusDeployment, JanusVariant};
pub use policy::JanusPolicy;
pub use registry::{BuiltPolicy, PolicyContext, PolicyFactory, PolicyRegistry};
pub use session::{Load, PolicyReport, ServingSession, SessionReport};

// Re-export the component crates under one roof for downstream users.
pub use janus_adapter as adapter;
pub use janus_baselines as baselines;
pub use janus_platform as platform;
pub use janus_profiler as profiler;
pub use janus_scenarios as scenarios;
pub use janus_simcore as simcore;
pub use janus_synthesizer as synthesizer;
pub use janus_trace as trace;
pub use janus_workloads as workloads;
