//! Motivation experiments: Figures 1a, 1b, 1c and 2 (§II).

use janus_baselines::early::grandslam;
use janus_baselines::oracle::OptimalOracle;
use janus_platform::executor::{ClosedLoopExecutor, ExecutorConfig};
use janus_profiler::percentiles::Percentile;
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_simcore::interference::InterferenceModel;
use janus_simcore::resources::{CoreGrid, Millicores};
use janus_simcore::time::SimDuration;
use janus_trace::slack::SlackAnalysis;
use janus_trace::synth::{Trace, TraceConfig};
use janus_workloads::apps::{intelligent_assistant, PaperApp};
use janus_workloads::microbench;
use janus_workloads::request::RequestInputGenerator;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::deployment::{DeploymentConfig, JanusDeployment};

/// Figure 1a: slack CDFs of function invocations under P99 SLOs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1aResult {
    /// `(slack, cumulative fraction)` points for all invocations.
    pub all: Vec<(f64, f64)>,
    /// `(slack, cumulative fraction)` points for the top-100 functions.
    pub popular: Vec<(f64, f64)>,
    /// Fraction of invocations contributed by the top-100 functions.
    pub popular_fraction: f64,
    /// Fraction of all invocations with slack above 0.6 (paper: > 60 %).
    pub frac_all_above_60: f64,
    /// Fraction of popular invocations with slack below 0.4 (paper: ≈ 20 %).
    pub frac_popular_below_40: f64,
}

/// Run the Figure 1a analysis on a synthetic Azure-like trace.
pub fn fig1a_slack_cdf(invocations: usize, seed: u64) -> Fig1aResult {
    let trace = Trace::generate(&TraceConfig {
        invocations,
        seed,
        ..TraceConfig::default()
    })
    .expect("static trace configuration is valid");
    let analysis = SlackAnalysis::from_trace(&trace);
    let cdfs = analysis.cdfs(&trace, 100);
    Fig1aResult {
        all: cdfs.all.points(21),
        popular: cdfs.popular.points(21),
        popular_fraction: cdfs.popular_fraction,
        frac_all_above_60: 1.0 - cdfs.all.fraction_below(0.6),
        frac_popular_below_40: cdfs.popular.fraction_below(0.4),
    }
}

impl fmt::Display for Fig1aResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Figure 1a: slack CDF under P99 SLOs")?;
        writeln!(
            f,
            "# top-100 functions account for {:.1}% of invocations",
            self.popular_fraction * 100.0
        )?;
        writeln!(f, "{:>8} {:>10} {:>10}", "slack", "CDF(all)", "CDF(pop)")?;
        for i in 0..self.all.len() {
            writeln!(
                f,
                "{:>8.2} {:>10.3} {:>10.3}",
                self.all[i].0, self.all[i].1, self.popular[i].1
            )?;
        }
        writeln!(
            f,
            "invocations with slack > 0.6 (all): {:.1}%",
            self.frac_all_above_60 * 100.0
        )?;
        writeln!(
            f,
            "popular invocations with slack < 0.4: {:.1}%",
            self.frac_popular_below_40 * 100.0
        )
    }
}

/// Figure 1b: per-function latency variance caused by varying working sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1bResult {
    /// Rows `(function, P1 latency s, P99 latency s, ratio)`.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Profile OD / QA / TS at a fixed 2000 mc allocation and report P1 vs P99.
pub fn fig1b_workset_variance(samples: usize, seed: u64) -> Fig1bResult {
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point: samples,
        seed,
        interference: InterferenceModel::none(),
        ..ProfilerConfig::default()
    })
    .expect("valid profiler configuration");
    let rows = intelligent_assistant()
        .functions()
        .iter()
        .map(|func| {
            let profile = profiler.profile_function(func, 1);
            let p1 = profile
                .latency(Percentile::P1, Millicores::new(2000))
                .as_secs();
            let p99 = profile
                .latency(Percentile::P99, Millicores::new(2000))
                .as_secs();
            (func.name().to_uppercase(), p1, p99, p99 / p1)
        })
        .collect();
    Fig1bResult { rows }
}

impl fmt::Display for Fig1bResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Figure 1b: latency variance from varying working sets (2000 mc)"
        )?;
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>8}",
            "func", "P1 (s)", "P99 (s)", "ratio"
        )?;
        for (name, p1, p99, ratio) in &self.rows {
            writeln!(f, "{name:>6} {p1:>10.3} {p99:>10.3} {ratio:>8.2}")?;
        }
        Ok(())
    }
}

/// Figure 1c: interference from co-locating homogeneous functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1cResult {
    /// Rows `(dominant dimension, normalized latency at 1..=6 co-located)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

/// Measure the normalised latency of the four microbenchmark functions as the
/// co-location degree grows from 1 to 6 instances.
pub fn fig1c_interference() -> Fig1cResult {
    let interference = InterferenceModel::paper_calibrated();
    let rows = microbench::all()
        .iter()
        .map(|func| {
            let alone = func
                .execution_time(Millicores::new(1000), 1, 1.0, 1, &interference)
                .as_millis();
            let series = (1..=6)
                .map(|n| {
                    func.execution_time(Millicores::new(1000), 1, 1.0, n, &interference)
                        .as_millis()
                        / alone
                })
                .collect();
            (func.dominant().to_string(), series)
        })
        .collect();
    Fig1cResult { rows }
}

impl fmt::Display for Fig1cResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Figure 1c: normalized latency vs co-located instances (1..6)"
        )?;
        writeln!(
            f,
            "{:>8} {}",
            "dim",
            (1..=6).map(|n| format!("{n:>7}")).collect::<String>()
        )?;
        for (dim, series) in &self.rows {
            write!(f, "{dim:>8} ")?;
            for v in series {
                write!(f, "{v:>7.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Figure 2: per-request E2E latency and CPU (normalised by Optimal) under
/// early binding vs late binding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// SLO used (seconds).
    pub slo_s: f64,
    /// Rows `(request id, early E2E s, late E2E s, early CPU/optimal, late CPU/optimal)`.
    pub rows: Vec<(u64, f64, f64, f64, f64)>,
    /// Mean CPU reduction of late binding vs early binding (fraction).
    pub mean_cpu_reduction: f64,
}

/// Compare early binding (GrandSLAM-style, P99-sized) against late binding
/// (Janus) on a small request sample, normalising CPU by the Optimal oracle.
pub fn fig2_binding_comparison(requests: usize, seed: u64) -> Fig2Result {
    let app = PaperApp::IntelligentAssistant;
    let workflow = app.workflow();
    let slo = app.default_slo(1);
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point: 600,
        seed,
        ..ProfilerConfig::default()
    })
    .expect("valid profiler configuration");
    let profile = profiler.profile_workflow(&workflow, 1);
    let reqs = RequestInputGenerator::new(seed, SimDuration::ZERO).generate(&workflow, requests);
    let exec_config = ExecutorConfig::paper_serving(slo, 1);
    let executor = ClosedLoopExecutor::new(workflow.clone(), exec_config.clone());

    let mut early = grandslam(&profile, slo).expect("IA workflow is non-empty");
    let early_report = executor.run(&mut early, &reqs);

    let deployment = JanusDeployment::from_profile(
        &DeploymentConfig {
            samples_per_point: 600,
            seed,
            ..DeploymentConfig::paper_default(app, 1)
        },
        workflow.clone(),
        profile,
    )
    .expect("valid deployment");
    let mut late = deployment.policy();
    let late_report = executor.run(&mut late, &reqs);

    let mut oracle = OptimalOracle::new(
        &workflow,
        &reqs,
        slo,
        1,
        CoreGrid::paper_default(),
        &exec_config.interference,
    );
    let optimal_report = executor.run(&mut oracle, &reqs);

    let rows: Vec<(u64, f64, f64, f64, f64)> = (0..reqs.len())
        .map(|i| {
            let opt_cpu = f64::from(optimal_report.outcomes[i].total_cpu().get()).max(1.0);
            (
                reqs[i].id,
                early_report.outcomes[i].e2e.as_secs(),
                late_report.outcomes[i].e2e.as_secs(),
                f64::from(early_report.outcomes[i].total_cpu().get()) / opt_cpu,
                f64::from(late_report.outcomes[i].total_cpu().get()) / opt_cpu,
            )
        })
        .collect();
    let mean_cpu_reduction =
        1.0 - late_report.mean_cpu_millicores() / early_report.mean_cpu_millicores();
    Fig2Result {
        slo_s: slo.as_secs(),
        rows,
        mean_cpu_reduction,
    }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Figure 2: early-binding vs late-binding (SLO {:.1} s)",
            self.slo_s
        )?;
        writeln!(
            f,
            "{:>5} {:>10} {:>10} {:>12} {:>12}",
            "req", "E2E early", "E2E late", "CPU early/x", "CPU late/x"
        )?;
        for (id, e_early, e_late, c_early, c_late) in &self.rows {
            writeln!(
                f,
                "{id:>5} {e_early:>10.2} {e_late:>10.2} {c_early:>12.2} {c_late:>12.2}"
            )?;
        }
        writeln!(
            f,
            "mean CPU reduction of late binding vs early binding: {:.1}%",
            self.mean_cpu_reduction * 100.0
        )
    }
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput};

/// `fig1a` as a registered [`Experiment`].
pub struct Fig1aExperiment;

impl Experiment for Fig1aExperiment {
    fn name(&self) -> &str {
        "fig1a"
    }

    fn describe(&self) -> &str {
        "Figure 1a: slack CDF of function invocations in an Azure-like trace"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(fig1a_slack_cdf(
            ctx.trace_invocations(),
            ctx.seed_or(0xA2C5E),
        )))
    }
}

/// `fig1b` as a registered [`Experiment`].
pub struct Fig1bExperiment;

impl Experiment for Fig1bExperiment {
    fn name(&self) -> &str {
        "fig1b"
    }

    fn describe(&self) -> &str {
        "Figure 1b: function latency variance caused by varying working sets"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(fig1b_workset_variance(
            ctx.profile_samples(),
            ctx.seed_or(0xF1B),
        )))
    }
}

/// `fig1c` as a registered [`Experiment`].
pub struct Fig1cExperiment;

impl Experiment for Fig1cExperiment {
    fn name(&self) -> &str {
        "fig1c"
    }

    fn describe(&self) -> &str {
        "Figure 1c: performance interference from co-locating homogeneous functions"
    }

    fn run(&self, _ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(fig1c_interference()))
    }
}

/// `fig2` as a registered [`Experiment`].
pub struct Fig2Experiment;

impl Experiment for Fig2Experiment {
    fn name(&self) -> &str {
        "fig2"
    }

    fn describe(&self) -> &str {
        "Figure 2: per-request early-binding vs late-binding comparison"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(fig2_binding_comparison(
            ctx.scale.fig2_requests(),
            ctx.seed_or(0xF2),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_reproduces_the_slack_claims() {
        let r = fig1a_slack_cdf(20_000, 3);
        assert!(r.frac_all_above_60 > 0.6);
        assert!(r.frac_popular_below_40 < 0.35);
        assert!(r.popular_fraction > 0.6);
        assert_eq!(r.all.len(), 21);
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn fig1b_shows_multi_x_variance_for_ia_functions() {
        let r = fig1b_workset_variance(400, 5);
        assert_eq!(r.rows.len(), 3);
        for (name, p1, p99, ratio) in &r.rows {
            assert!(p99 > p1, "{name} p99 {p99} > p1 {p1}");
            assert!(*ratio > 1.8 && *ratio < 6.5, "{name} ratio {ratio}");
        }
        assert!(format!("{r}").contains("OD"));
    }

    #[test]
    fn fig1c_ordering_matches_the_paper() {
        let r = fig1c_interference();
        assert_eq!(r.rows.len(), 4);
        for (_, series) in &r.rows {
            assert_eq!(series.len(), 6);
            assert!((series[0] - 1.0).abs() < 1e-9);
            assert!(series.windows(2).all(|w| w[1] >= w[0]));
        }
        let net = r.rows.iter().find(|(d, _)| d == "Network").unwrap().1[5];
        assert!(net > 7.0 && net < 9.5, "network slowdown {net}");
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn fig2_late_binding_reduces_cpu_within_slo() {
        let r = fig2_binding_comparison(40, 11);
        assert_eq!(r.rows.len(), 40);
        assert!(
            r.mean_cpu_reduction > 0.1,
            "reduction {}",
            r.mean_cpu_reduction
        );
        // Late binding trades time for resources but must stay within the SLO
        // for the overwhelming majority of requests.
        let violations = r
            .rows
            .iter()
            .filter(|(_, _, late, _, _)| *late > r.slo_s)
            .count();
        assert!(violations <= 1, "late binding violations {violations}");
        assert!(!format!("{r}").is_empty());
    }
}
