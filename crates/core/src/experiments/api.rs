//! The declarative experiment API: [`Experiment`], [`ExperimentCtx`],
//! [`ExperimentOutput`] and the open [`ExperimentRegistry`].
//!
//! Policies, scenarios, autoscalers and admission controllers already sit
//! behind open registries; this module gives the *experiment* layer the same
//! shape. An experiment is anything that can turn an [`ExperimentCtx`] (the
//! scale and seed knobs every runner shares) into an [`ExperimentOutput`] —
//! a bundle of result structs that are simultaneously human-readable
//! (`Display`) and machine-readable ([`ToJson`]). The paper's figures and
//! tables, the scenario/capacity sweeps and the perf trajectory are
//! pre-registered built-ins; downstream crates register their own with
//! [`ExperimentRegistry::register`] (or the closure shorthand
//! [`ExperimentRegistry::register_fn`]) and run them through the same
//! `janus` CLI without touching any `janus-*` crate.
//!
//! ```
//! use janus_core::experiments::{ExperimentCtx, ExperimentRegistry, Scale};
//!
//! let registry = ExperimentRegistry::with_builtins();
//! assert!(registry.names().contains(&"fig1c"));
//! let output = registry
//!     .run("fig1c", &ExperimentCtx::new(Scale::Quick))
//!     .expect("fig1c runs");
//! assert!(output.summary().contains("Figure 1c"));
//! assert!(output.to_json().get("experiment").is_some());
//! ```

use crate::comparison::ComparisonConfig;
use crate::experiments::{CapacitySweepConfig, PerfConfig, ScenarioSweepConfig, ToJson};
use janus_json::Value;
use janus_workloads::apps::PaperApp;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Shared experiment scale. Every runner interprets it the same way: `Paper`
/// reproduces the paper's sample counts, `Quick` preserves every code path
/// at a fraction of the cost (smoke runs, CI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-like scale: 1000 requests, 1000 profile samples, 1 ms sweep.
    Paper,
    /// Reduced scale for smoke runs and CI (`--quick`).
    Quick,
}

impl Scale {
    /// The scale's canonical name — what perf-history entries are tagged
    /// with, so baselines only ever gate runs of the same scale.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }

    /// Comparison configuration for an application at this scale.
    pub fn comparison(self, app: PaperApp, concurrency: u32) -> ComparisonConfig {
        match self {
            Scale::Paper => ComparisonConfig {
                requests: 1000,
                samples_per_point: 1000,
                budget_step_ms: 1.0,
                ..ComparisonConfig::paper_default(app, concurrency)
            },
            Scale::Quick => ComparisonConfig {
                requests: 200,
                samples_per_point: 300,
                budget_step_ms: 5.0,
                ..ComparisonConfig::paper_default(app, concurrency)
            },
        }
    }

    /// Profile samples per grid point at this scale.
    pub fn profile_samples(self) -> usize {
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 300,
        }
    }

    /// Trace invocations for the Figure 1a analysis at this scale.
    pub fn trace_invocations(self) -> usize {
        match self {
            Scale::Paper => 50_000,
            Scale::Quick => 15_000,
        }
    }

    /// Figure 2 request-sample size at this scale.
    pub fn fig2_requests(self) -> usize {
        match self {
            Scale::Paper => 50,
            Scale::Quick => 25,
        }
    }

    /// Scenario-sweep configuration for an application at this scale.
    pub fn scenario_sweep(self, app: PaperApp) -> ScenarioSweepConfig {
        match self {
            Scale::Paper => ScenarioSweepConfig::paper_default(app),
            Scale::Quick => ScenarioSweepConfig::quick(app),
        }
    }

    /// Perf-trajectory configuration at this scale.
    pub fn perf(self) -> PerfConfig {
        match self {
            Scale::Paper => PerfConfig::paper_default(),
            Scale::Quick => PerfConfig::quick(),
        }
    }

    /// Capacity-sweep configuration for an application at this scale.
    pub fn capacity_sweep(self, app: PaperApp) -> CapacitySweepConfig {
        match self {
            Scale::Paper => CapacitySweepConfig::paper_default(app),
            Scale::Quick => CapacitySweepConfig::quick(app),
        }
    }
}

/// A shared, thread-safe accumulator for JSONL trace lines. `janus run
/// <experiment> --trace PATH` hands one of these to the experiment through
/// the [`ExperimentCtx`]; trace-capable experiments append each observed
/// session's trace and the CLI writes the collected lines to `PATH`.
/// Cloning shares the underlying buffer.
#[derive(Clone, Default)]
pub struct TraceSink(Arc<Mutex<String>>);

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    // The buffer is a plain String, valid at every intermediate state, so a
    // panic on another thread cannot leave it torn: recover the guard from a
    // poisoned lock instead of propagating the panic into trace writing.
    fn lock(&self) -> std::sync::MutexGuard<'_, String> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Append a block of JSONL lines, ensuring it stays newline-terminated.
    pub fn append(&self, lines: &str) {
        if lines.is_empty() {
            return;
        }
        let mut buf = self.lock();
        buf.push_str(lines);
        if !lines.ends_with('\n') {
            buf.push('\n');
        }
    }

    /// Take the collected lines out, leaving the sink empty.
    pub fn take(&self) -> String {
        std::mem::take(&mut *self.lock())
    }

    /// True while nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let len = self.0.lock().map(|b| b.len()).unwrap_or(0);
        f.debug_struct("TraceSink").field("bytes", &len).finish()
    }
}

/// Everything an experiment may consult when running: the scale, an
/// optional seed override, and the optional observability hookup (observer
/// name + trace sink). The per-config helpers mirror the ones the bench
/// flags used to provide, with the override already applied, so experiments
/// stay one-liners.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Experiment scale.
    pub scale: Scale,
    /// Seed override (`--seed N`); `None` keeps each experiment's default.
    pub seed: Option<u64>,
    /// Observer to attach to trace-capable experiments' sessions; `None`
    /// leaves observation off (the zero-cost default).
    pub observer: Option<String>,
    /// Where trace-capable experiments append their JSONL trace lines
    /// (`--trace PATH`). Setting a sink without an observer implies the
    /// `flight-recorder` built-in — see [`observer_name`](Self::observer_name).
    pub trace: Option<TraceSink>,
}

impl ExperimentCtx {
    /// A context at the given scale with no seed override.
    pub fn new(scale: Scale) -> Self {
        ExperimentCtx {
            scale,
            seed: None,
            observer: None,
            trace: None,
        }
    }

    /// Apply a seed override.
    pub fn with_seed(mut self, seed: Option<u64>) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a trace sink (implies the `flight-recorder` observer unless
    /// one was named explicitly).
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Name an observer for trace-capable experiments to attach.
    pub fn with_observer(mut self, observer: Option<String>) -> Self {
        self.observer = observer;
        self
    }

    /// The observer trace-capable experiments should attach: the explicit
    /// choice when named, otherwise `flight-recorder` when a trace sink is
    /// present (a trace needs an observer to produce lines), otherwise none.
    pub fn observer_name(&self) -> Option<&str> {
        match (&self.observer, &self.trace) {
            (Some(name), _) => Some(name),
            (None, Some(_)) => Some("flight-recorder"),
            (None, None) => None,
        }
    }

    /// Append a session trace to the sink, if one is attached. `qualifier`
    /// distinguishes grid cells that serve the same policies (the trace's
    /// `policy` field becomes `<policy>@<qualifier>`); pass `None` for
    /// single-session experiments.
    pub fn append_trace(&self, trace: &str, qualifier: Option<&str>) -> Result<(), String> {
        let Some(sink) = &self.trace else {
            return Ok(());
        };
        match qualifier {
            Some(suffix) => sink.append(&janus_observe::qualify_policy(trace, suffix)?),
            None => sink.append(trace),
        }
        Ok(())
    }

    /// The experiment seed: the override when given, otherwise the
    /// experiment's own default (each figure has its own, so figures stay
    /// independent).
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Comparison configuration at this scale, seed override applied.
    pub fn comparison(&self, app: PaperApp, concurrency: u32) -> ComparisonConfig {
        let mut config = self.scale.comparison(app, concurrency);
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    /// Scenario-sweep configuration at this scale, seed override applied.
    pub fn scenario_sweep(&self, app: PaperApp) -> ScenarioSweepConfig {
        let mut config = self.scale.scenario_sweep(app);
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    /// Capacity-sweep configuration at this scale, seed override applied.
    pub fn capacity_sweep(&self, app: PaperApp) -> CapacitySweepConfig {
        let mut config = self.scale.capacity_sweep(app);
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    /// Perf-trajectory configuration at this scale, seed override applied.
    pub fn perf_config(&self) -> PerfConfig {
        let mut config = self.scale.perf();
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    /// Profile samples per grid point at this scale.
    pub fn profile_samples(&self) -> usize {
        self.scale.profile_samples()
    }

    /// Trace invocations for Figure 1a at this scale.
    pub fn trace_invocations(&self) -> usize {
        self.scale.trace_invocations()
    }
}

/// What every experiment result already is: a human-readable table
/// (`Display`) that is also a machine-readable document ([`ToJson`]).
/// Blanket-implemented, so the existing result structs qualify unchanged.
pub trait ExperimentResult: ToJson + fmt::Display + Send {}

impl<T: ToJson + fmt::Display + Send> ExperimentResult for T {}

/// The outcome of one experiment run: one or more result parts, each a
/// [`ToJson`] + `Display` bundle with an optional heading (multi-part
/// experiments like Figure 4 run one comparison per setup).
pub struct ExperimentOutput {
    parts: Vec<(String, Box<dyn ExperimentResult>)>,
}

impl ExperimentOutput {
    /// An output holding exactly one unlabelled result.
    pub fn single(result: impl ExperimentResult + 'static) -> Self {
        ExperimentOutput {
            parts: vec![(String::new(), Box::new(result))],
        }
    }

    /// An empty output, to be filled with [`push`](Self::push).
    pub fn new() -> Self {
        ExperimentOutput { parts: Vec::new() }
    }

    /// Append a labelled result part.
    pub fn push(&mut self, heading: impl Into<String>, result: impl ExperimentResult + 'static) {
        self.parts.push((heading.into(), Box::new(result)));
    }

    /// Number of result parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the experiment produced no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The human summary: every part's `Display` output, multi-part outputs
    /// separated by their headings.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (heading, result) in &self.parts {
            if !heading.is_empty() {
                out.push_str(&format!("## {heading}\n"));
            }
            let rendered = result.to_string();
            out.push_str(&rendered);
            if !rendered.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// The machine view: a single part's document verbatim (so e.g. the
    /// perf artefact keeps its historical schema), or an array of part
    /// documents for multi-part experiments.
    pub fn to_json(&self) -> Value {
        match self.parts.as_slice() {
            [(_, only)] => only.to_json(),
            parts => Value::Arr(parts.iter().map(|(_, r)| r.to_json()).collect()),
        }
    }
}

impl Default for ExperimentOutput {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ExperimentOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentOutput")
            .field("parts", &self.parts.len())
            .finish()
    }
}

/// An object-safe, runnable experiment: a name to address it by, a one-line
/// description for discoverability, and a run function from context to
/// output. Implementations live anywhere; the built-ins wrap the paper's
/// figure/table runners and the sweep drivers.
pub trait Experiment: Send + Sync {
    /// The name the experiment is registered and invoked under
    /// (`janus run <name>`).
    fn name(&self) -> &str;

    /// One-line human description, surfaced by `janus list`.
    fn describe(&self) -> &str;

    /// Run the experiment.
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String>;
}

/// The open experiment registry, mirroring
/// [`PolicyRegistry`](crate::registry::PolicyRegistry): ordered, open for
/// registration, resolved by name with informative unknown-name errors.
#[derive(Clone, Default)]
pub struct ExperimentRegistry {
    experiments: Vec<Arc<dyn Experiment>>,
}

impl ExperimentRegistry {
    /// An empty registry (no built-ins).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with every experiment of the evaluation, in
    /// paper order: the motivation figures, the overall comparison
    /// tables/figures, the synthesis studies, the scenario/capacity sweeps
    /// and the perf trajectory.
    pub fn with_builtins() -> Self {
        use crate::experiments::{capacity_sweep, chaos_resilience, flash_scale, metrics};
        use crate::experiments::{motivation, overall, perf, scenario_sweep, slo_sweep, synthesis};
        let mut registry = ExperimentRegistry::new();
        registry.register(Arc::new(motivation::Fig1aExperiment));
        registry.register(Arc::new(motivation::Fig1bExperiment));
        registry.register(Arc::new(motivation::Fig1cExperiment));
        registry.register(Arc::new(motivation::Fig2Experiment));
        registry.register(Arc::new(overall::Table1Experiment));
        registry.register(Arc::new(overall::Fig4Experiment));
        registry.register(Arc::new(overall::Fig5Experiment));
        registry.register(Arc::new(synthesis::Fig6Experiment));
        registry.register(Arc::new(metrics::Fig7Experiment));
        registry.register(Arc::new(synthesis::Fig8Experiment));
        registry.register(Arc::new(slo_sweep::Fig9Experiment));
        registry.register(Arc::new(synthesis::Table2Experiment));
        registry.register(Arc::new(synthesis::OverheadExperiment));
        registry.register(Arc::new(scenario_sweep::ScenarioSweepExperiment));
        registry.register(Arc::new(capacity_sweep::CapacitySweepExperiment));
        registry.register(Arc::new(chaos_resilience::ChaosResilienceExperiment));
        registry.register(Arc::new(perf::PerfExperiment));
        registry.register(Arc::new(flash_scale::FlashScaleExperiment));
        registry
    }

    /// Register an experiment. Replaces any earlier experiment with the same
    /// name (keeping its position), otherwise appends.
    pub fn register(&mut self, experiment: Arc<dyn Experiment>) -> &mut Self {
        match self
            .experiments
            .iter()
            .position(|e| e.name() == experiment.name())
        {
            Some(i) => self.experiments[i] = experiment,
            None => self.experiments.push(experiment),
        }
        self
    }

    /// Closure shorthand for [`register`](Self::register).
    pub fn register_fn<F>(
        &mut self,
        name: impl Into<String>,
        describe: impl Into<String>,
        run: F,
    ) -> &mut Self
    where
        F: Fn(&ExperimentCtx) -> Result<ExperimentOutput, String> + Send + Sync + 'static,
    {
        self.register(Arc::new(FnExperiment {
            name: name.into(),
            describe: describe.into(),
            run,
        }))
    }

    /// Look an experiment up by its registered name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Experiment>> {
        self.experiments.iter().find(|e| e.name() == name).cloned()
    }

    /// Error early (with the registered names) if `name` is unknown.
    pub fn ensure_known(&self, name: &str) -> Result<(), String> {
        if self.get(name).is_some() {
            Ok(())
        } else {
            Err(self.unknown(name))
        }
    }

    /// Run the named experiment, with an informative error for unknown
    /// names.
    pub fn run(&self, name: &str, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        self.get(name).ok_or_else(|| self.unknown(name))?.run(ctx)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.experiments.iter().map(|e| e.name()).collect()
    }

    /// `(name, description)` pairs, in registration order — the `janus list`
    /// view.
    pub fn catalog(&self) -> Vec<(&str, &str)> {
        self.experiments
            .iter()
            .map(|e| (e.name(), e.describe()))
            .collect()
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    fn unknown(&self, name: &str) -> String {
        format!(
            "unknown experiment `{name}`; registered experiments: {}",
            self.names().join(", ")
        )
    }
}

impl fmt::Debug for ExperimentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentRegistry")
            .field("experiments", &self.names())
            .finish()
    }
}

struct FnExperiment<F> {
    name: String,
    describe: String,
    run: F,
}

impl<F> Experiment for FnExperiment<F>
where
    F: Fn(&ExperimentCtx) -> Result<ExperimentOutput, String> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> &str {
        &self.describe
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        (self.run)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_cover_every_retired_binary() {
        let registry = ExperimentRegistry::with_builtins();
        for name in [
            "fig1a",
            "fig1b",
            "fig1c",
            "fig2",
            "table1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "table2",
            "overhead",
            "scenarios",
            "capacity",
            "chaos_resilience",
            "perf",
            "flash_scale",
        ] {
            assert!(
                registry.get(name).is_some(),
                "experiment `{name}` is not registered"
            );
            registry.ensure_known(name).unwrap();
        }
        assert_eq!(registry.len(), 18);
        for (name, describe) in registry.catalog() {
            assert!(!describe.is_empty(), "`{name}` has no description");
        }
    }

    #[test]
    fn unknown_names_list_the_registered_experiments() {
        let registry = ExperimentRegistry::with_builtins();
        let err = registry
            .run("fig99", &ExperimentCtx::new(Scale::Quick))
            .unwrap_err();
        assert!(err.contains("unknown experiment `fig99`"), "{err}");
        assert!(err.contains("fig1a"), "{err}");
        assert_eq!(registry.ensure_known("fig99").unwrap_err(), err);
    }

    #[test]
    fn custom_experiments_register_and_replace_by_name() {
        let mut registry = ExperimentRegistry::new();
        registry.register_fn("noop", "does nothing", |_ctx| {
            Ok(ExperimentOutput::single(
                crate::experiments::fig1c_interference(),
            ))
        });
        assert_eq!(registry.names(), vec!["noop"]);
        let out = registry
            .run("noop", &ExperimentCtx::new(Scale::Quick))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out.is_empty());
        // Same-name registration replaces in place.
        registry.register_fn("noop", "still nothing", |_ctx| Err("boom".into()));
        assert_eq!(registry.len(), 1);
        let err = registry
            .run("noop", &ExperimentCtx::new(Scale::Quick))
            .unwrap_err();
        assert_eq!(err, "boom");
    }

    #[test]
    fn multi_part_outputs_render_headings_and_json_arrays() {
        let mut out = ExperimentOutput::new();
        out.push("part one", crate::experiments::fig1c_interference());
        out.push("part two", crate::experiments::fig1c_interference());
        let summary = out.summary();
        assert!(summary.contains("## part one"), "{summary}");
        assert!(summary.contains("## part two"), "{summary}");
        let json = out.to_json();
        assert_eq!(json.as_array().map(|a| a.len()), Some(2));
        // Single-part outputs keep the bare document (historical schema).
        let single = ExperimentOutput::single(crate::experiments::fig1c_interference());
        assert_eq!(
            single.to_json().get("experiment").and_then(|v| v.as_str()),
            Some("fig1c")
        );
    }

    #[test]
    fn ctx_applies_the_seed_override_everywhere() {
        let ctx = ExperimentCtx::new(Scale::Quick).with_seed(Some(99));
        assert_eq!(ctx.seed_or(5), 99);
        assert_eq!(ctx.comparison(PaperApp::IntelligentAssistant, 1).seed, 99);
        assert_eq!(ctx.scenario_sweep(PaperApp::IntelligentAssistant).seed, 99);
        assert_eq!(ctx.capacity_sweep(PaperApp::IntelligentAssistant).seed, 99);
        assert_eq!(ctx.perf_config().seed, 99);
        let plain = ExperimentCtx::new(Scale::Paper);
        assert_eq!(plain.seed_or(5), 5);
        assert!(plain.profile_samples() > ctx.profile_samples());
        assert!(plain.trace_invocations() > ctx.trace_invocations());
    }
}
