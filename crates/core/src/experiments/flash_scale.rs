//! Flash-crowd at 10⁸ requests: the bounded-memory proof of the streaming
//! open loop.
//!
//! Every arrival is drawn lazily from a merged set of per-tenant
//! flash-crowd streams as simulated time advances — one buffered head per
//! stream, one pending arrival in the event queue, nothing else resident.
//! Outcomes are folded into running sums the moment they complete and then
//! dropped, so the paper-scale run serves 100 million requests while the
//! peak number of materialized arrivals stays at `streams + 1`. The run
//! goes through elastic capacity control (autoscaler + admission shedding),
//! so the in-flight table is bounded too: the experiment demonstrates that
//! *no* component of the serving loop scales with the request count.
//!
//! [`FlashScaleResult::validate`] enforces the invariant — a run that
//! materializes more than `streams + 1` arrivals fails, which is what the
//! CI smoke step (`janus run flash_scale --quick`) asserts.

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput, Scale};
use janus_platform::capacity::{AdmissionRegistry, AutoscalerRegistry, CapacityContext};
use janus_platform::openloop::{
    CapacityControls, OpenLoopArena, OpenLoopConfig, OpenLoopSimulation,
};
use janus_platform::outcome::{RequestDisposition, RequestOutcome};
use janus_platform::policy::FixedSizingPolicy;
use janus_scenarios::{tenant_stream_seed, MergedRequestSource, ScenarioContext, ScenarioRegistry};
use janus_simcore::engine::EngineConfig;
use janus_simcore::resources::Millicores;
use janus_simcore::stats::StreamingSummary;
use janus_workloads::apps::PaperApp;
use janus_workloads::request::RequestInputGenerator;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

use super::perf::{rate_per_sec, MIN_WALL_MS};

/// Configuration of one flash-scale run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashScaleConfig {
    /// Application whose workflow is served.
    pub app: PaperApp,
    /// Arrival scenario every tenant stream draws from (resolved from the
    /// built-in scenario registry).
    pub scenario: String,
    /// Independent tenant streams merged into the arrival timeline. Each
    /// stream gets its own derived seed, so streams are decorrelated.
    pub streams: usize,
    /// Total request budget across all streams.
    pub requests: usize,
    /// Long-run mean arrival rate per stream, in requests/second.
    pub rps_per_stream: f64,
    /// Fixed per-function CPU allocation of the serving policy.
    pub allocation_mc: u32,
    /// Autoscaler name (resolved from the built-in registry).
    pub autoscaler: String,
    /// Admission policy name. The default `queue-shed` is what bounds the
    /// in-flight table under flash-crowd overload.
    pub admission: String,
    /// Request-generation seed.
    pub seed: u64,
}

impl FlashScaleConfig {
    /// Paper scale: 100 million requests — ~20 000× the serving sessions
    /// elsewhere in this crate, runnable only because arrivals stream.
    pub fn paper_default() -> Self {
        FlashScaleConfig {
            app: PaperApp::IntelligentAssistant,
            scenario: "flash-crowd".to_string(),
            streams: 4,
            requests: 100_000_000,
            rps_per_stream: 500.0,
            allocation_mc: 2000,
            autoscaler: "utilization".to_string(),
            admission: "queue-shed".to_string(),
            seed: 7,
        }
    }

    /// Reduced scale for smoke runs and CI (`--quick`): one million
    /// requests, same shape.
    pub fn quick() -> Self {
        FlashScaleConfig {
            requests: 1_000_000,
            ..Self::paper_default()
        }
    }

    /// The aggregate offered rate across all streams.
    pub fn total_rps(&self) -> f64 {
        self.rps_per_stream * self.streams as f64
    }
}

/// The outcome of a flash-scale run: serving tallies folded from the
/// outcome stream, plus the residency figures the experiment exists to
/// bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlashScaleResult {
    /// Configuration the run used.
    pub config: FlashScaleConfig,
    /// Arrivals drawn from the merged streams (equals `config.requests`).
    pub generated: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed by admission control at arrival.
    pub shed: usize,
    /// Admitted requests lost to faults (zero here; no injector attached).
    pub failed: usize,
    /// Served requests that met the SLO.
    pub slo_met: usize,
    /// Mean end-to-end latency of served requests, in ms.
    pub mean_served_e2e_ms: f64,
    /// Peak number of arrivals materialized at once: the buffered stream
    /// heads plus the one pending arrival in the event queue. Bounded by
    /// `streams + 1` regardless of `requests` — the invariant under test.
    pub peak_resident_arrivals: usize,
    /// Peak event-queue depth of the run.
    pub peak_queue_depth: usize,
    /// Peak admitted-and-unfinished request count (bounded by admission
    /// shedding, not by the request count).
    pub peak_inflight: usize,
    /// Peak node count the autoscaler grew the fleet to.
    pub peak_nodes: usize,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock time of the run, in ms.
    pub wall_ms: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Arrivals per wall-clock second.
    pub arrivals_per_sec: f64,
}

impl FlashScaleResult {
    /// Fraction of served requests that met the SLO.
    pub fn slo_attainment(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.slo_met as f64 / self.served as f64
        }
    }

    /// Fraction of generated requests shed at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.shed as f64 / self.generated as f64
        }
    }

    /// Structural invariants of a well-formed result — above all the
    /// bounded-memory invariant: peak resident arrivals may not exceed
    /// `streams + 1`, no matter how many requests the run generated.
    pub fn validate(&self) -> Result<(), String> {
        if self.generated != self.config.requests {
            return Err(format!(
                "flash_scale drew {} of {} requests",
                self.generated, self.config.requests
            ));
        }
        if self.served + self.shed + self.failed != self.generated {
            return Err(format!(
                "flash_scale outcomes do not tally: {} served + {} shed + {} failed != {} generated",
                self.served, self.shed, self.failed, self.generated
            ));
        }
        if self.peak_resident_arrivals == 0 {
            return Err("flash_scale reported zero resident arrivals".into());
        }
        if self.peak_resident_arrivals > self.config.streams + 1 {
            return Err(format!(
                "flash_scale materialized {} arrivals at once for {} streams; \
                 the bounded-memory invariant (streams + 1) is broken",
                self.peak_resident_arrivals, self.config.streams
            ));
        }
        if self.events == 0 {
            return Err("flash_scale processed no events".into());
        }
        if !(self.wall_ms.is_finite() && self.wall_ms > 0.0) {
            return Err(format!(
                "flash_scale reported non-positive wall time {}",
                self.wall_ms
            ));
        }
        Ok(())
    }
}

impl fmt::Display for FlashScaleResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Flash scale: {} requests over {} `{}` streams @ {} rps each ({} open loop)",
            self.generated,
            self.config.streams,
            self.config.scenario,
            self.config.rps_per_stream,
            self.config.app.short_name(),
        )?;
        writeln!(
            f,
            "served {} ({:.1}% SLO attainment, mean e2e {:.1} ms), shed {} ({:.1}%), failed {}",
            self.served,
            self.slo_attainment() * 100.0,
            self.mean_served_e2e_ms,
            self.shed,
            self.shed_rate() * 100.0,
            self.failed,
        )?;
        writeln!(
            f,
            "{} events in {:.0} ms wall ({:.0} events/sec, {:.0} arrivals/sec)",
            self.events, self.wall_ms, self.events_per_sec, self.arrivals_per_sec,
        )?;
        writeln!(
            f,
            "peak resident arrivals {} (bound: streams + 1 = {}); \
             peak queue {}, peak inflight {}, peak nodes {}",
            self.peak_resident_arrivals,
            self.config.streams + 1,
            self.peak_queue_depth,
            self.peak_inflight,
            self.peak_nodes,
        )?;
        Ok(())
    }
}

/// Run the flash-scale trajectory: stream `config.requests` arrivals from
/// the merged tenant streams through the capacity-controlled open loop,
/// folding every outcome into running sums as it completes.
pub fn flash_scale_run(config: &FlashScaleConfig) -> Result<FlashScaleResult, String> {
    if config.streams == 0 {
        return Err("flash_scale needs at least one stream".into());
    }
    if config.requests == 0 {
        return Err("flash_scale needs at least one request".into());
    }
    let workflow = config.app.workflow();
    let slo = config.app.default_slo(1);
    let registry = ScenarioRegistry::with_builtins();
    let mut generators = Vec::with_capacity(config.streams);
    for stream in 0..config.streams {
        let seed = tenant_stream_seed(config.seed, stream as u64);
        let ctx = ScenarioContext {
            base_rps: config.rps_per_stream,
            requests: config.requests,
            seed,
        };
        let process = registry
            .build(&config.scenario, &ctx)
            .map_err(|e| format!("scenario `{}`: {e}", config.scenario))?;
        generators.push(RequestInputGenerator::with_sampler(seed, process.sampler()));
    }
    let mut source = MergedRequestSource::new(generators, config.requests)?;

    let open_config = OpenLoopConfig::new(slo);
    let capacity_ctx = CapacityContext {
        base_rps: config.total_rps(),
        requests: config.requests,
        initial_nodes: open_config.cluster.nodes,
        slo,
    };
    let mut autoscaler = AutoscalerRegistry::with_builtins()
        .build(&config.autoscaler, &capacity_ctx)
        .map_err(|e| format!("autoscaler `{}`: {e}", config.autoscaler))?;
    let mut admission = AdmissionRegistry::with_builtins()
        .build(&config.admission, &capacity_ctx)
        .map_err(|e| format!("admission `{}`: {e}", config.admission))?;
    let mut policy =
        FixedSizingPolicy::uniform("fixed", &workflow, Millicores::new(config.allocation_mc))
            .map_err(|e| format!("flash_scale policy: {e}"))?;
    let sim = OpenLoopSimulation::new(workflow, open_config);
    // The default engine caps at 50M events as a runaway guard; a 10⁸-request
    // run legitimately processes ~4×10⁸, so the cap comes off. The horizon
    // stays off too: the run ends when the streams run dry and drain.
    let mut arena = OpenLoopArena::with_engine_config(EngineConfig {
        max_events: None,
        horizon: None,
    });

    // Running-sum aggregation: each outcome is folded and dropped — the
    // whole point of the streaming core is that nothing per-request
    // accumulates across the run.
    let mut served = 0usize;
    let mut failed = 0usize;
    let mut slo_met = 0usize;
    let mut e2e_ms = StreamingSummary::new();
    // janus-lint: allow(nondeterminism) — wall timing IS the measurement; the simulated tallies stay seed-pure
    let started = Instant::now();
    let capacity = sim.run_streaming(
        &mut policy,
        &mut source,
        &mut arena,
        None,
        Some(CapacityControls {
            autoscaler: autoscaler.as_mut(),
            admission: admission.as_mut(),
            faults: None,
        }),
        None,
        &mut |outcome: RequestOutcome| match outcome.disposition {
            RequestDisposition::Served => {
                served += 1;
                if outcome.slo_met {
                    slo_met += 1;
                }
                e2e_ms.record(outcome.e2e.as_millis());
            }
            RequestDisposition::Shed => {}
            RequestDisposition::Failed => failed += 1,
        },
    )?;
    let wall_ms = (started.elapsed().as_secs_f64() * 1000.0).max(MIN_WALL_MS);
    let capacity = capacity.ok_or("flash_scale ran without a capacity report")?;

    let events = arena.events_processed();
    let result = FlashScaleResult {
        config: config.clone(),
        generated: capacity.generated,
        served,
        shed: capacity.shed,
        failed,
        slo_met,
        mean_served_e2e_ms: e2e_ms.mean(),
        peak_resident_arrivals: arena.peak_resident_arrivals(),
        peak_queue_depth: arena.peak_queue_depth(),
        peak_inflight: capacity.peak_inflight,
        peak_nodes: capacity.peak_nodes,
        events,
        wall_ms,
        events_per_sec: rate_per_sec(events, wall_ms),
        arrivals_per_sec: rate_per_sec(capacity.generated as u64, wall_ms),
    };
    result.validate()?;
    Ok(result)
}

/// `flash_scale` as a registered [`Experiment`]: the 10⁸-request
/// flash-crowd run that proves arrivals stream in bounded memory.
pub struct FlashScaleExperiment;

impl Experiment for FlashScaleExperiment {
    fn name(&self) -> &str {
        "flash_scale"
    }

    fn describe(&self) -> &str {
        "Flash crowd at 100M requests: bounded-memory streaming arrivals through capacity control"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let mut config = match ctx.scale {
            Scale::Paper => FlashScaleConfig::paper_default(),
            Scale::Quick => FlashScaleConfig::quick(),
        };
        if let Some(seed) = ctx.seed {
            config.seed = seed;
        }
        Ok(ExperimentOutput::single(flash_scale_run(&config)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FlashScaleConfig {
        FlashScaleConfig {
            streams: 3,
            requests: 20_000,
            ..FlashScaleConfig::quick()
        }
    }

    #[test]
    fn flash_scale_streams_in_bounded_memory() {
        let result = flash_scale_run(&tiny_config()).unwrap();
        result.validate().unwrap();
        assert_eq!(result.generated, 20_000);
        assert_eq!(result.served + result.shed + result.failed, 20_000);
        // The headline invariant: residency is bounded by the stream count,
        // not the request count.
        assert!(
            result.peak_resident_arrivals <= 4,
            "resident arrivals {} exceed streams + 1",
            result.peak_resident_arrivals
        );
        // The flash crowd overloads the fleet; admission shedding is what
        // keeps the in-flight table bounded, so it must have engaged.
        assert!(result.shed > 0, "flash crowd should shed under overload");
        assert!(result.served > 0, "some requests must be served");
        assert!(result.peak_inflight > 0);
        assert!(result.peak_inflight < result.generated);
        assert!(result.events > 0);
        let shown = format!("{result}");
        assert!(shown.contains("peak resident arrivals"), "{shown}");
        assert!(shown.contains("bound: streams + 1 = 4"), "{shown}");
    }

    #[test]
    fn flash_scale_is_seed_deterministic() {
        let a = flash_scale_run(&tiny_config()).unwrap();
        let b = flash_scale_run(&tiny_config()).unwrap();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.served, b.served);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.slo_met, b.slo_met);
        assert_eq!(a.events, b.events);
        assert_eq!(a.mean_served_e2e_ms, b.mean_served_e2e_ms);
        let c = flash_scale_run(&FlashScaleConfig {
            seed: 8,
            ..tiny_config()
        })
        .unwrap();
        assert_ne!(
            (a.served, a.events),
            (c.served, c.events),
            "a different seed must change the run"
        );
    }

    #[test]
    fn flash_scale_rejects_degenerate_configs() {
        let err = flash_scale_run(&FlashScaleConfig {
            streams: 0,
            ..tiny_config()
        })
        .unwrap_err();
        assert!(err.contains("at least one stream"), "{err}");
        let err = flash_scale_run(&FlashScaleConfig {
            requests: 0,
            ..tiny_config()
        })
        .unwrap_err();
        assert!(err.contains("at least one request"), "{err}");
        let err = flash_scale_run(&FlashScaleConfig {
            scenario: "tsunami".into(),
            ..tiny_config()
        })
        .unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        let err = flash_scale_run(&FlashScaleConfig {
            autoscaler: "psychic".into(),
            ..tiny_config()
        })
        .unwrap_err();
        assert!(err.contains("psychic"), "{err}");
    }
}
