//! The generic sweep driver: execute a [`SweepSpec`] grid in parallel.
//!
//! [`run_sweep`] is the engine behind `janus sweep <spec.json>` — the
//! data-driven generalization of the hand-written scenario/capacity sweeps.
//! The spec's axes expand into [`SessionSpec`] grid points
//! (scenario-major, then load, seed, autoscaler, admission); every point is
//! one paired, invariant-checked [`ServingSession`]. Points fan out across
//! threads in contiguous stripes, and each worker runs its stripe through
//! [`run_in`](crate::session::ServingSession::run_in) with one
//! [`OpenLoopArena`] and one set of
//! interned metric handles, so engine heaps, in-flight tables and metric
//! interning are paid once per worker instead of once per point. Results
//! come back in grid order regardless of scheduling, and sessions are
//! seed-deterministic, so a sweep is reproducible bit for bit.
//!
//! [`run_sweep_streaming`] additionally invokes a callback as each point
//! completes (from the worker thread that ran it) — the `janus` CLI uses it
//! to print progress lines while a long grid is still running.
//!
//! Every name in the spec is resolved against the built-in registries
//! *before* anything runs, and the error points at the offending spec key
//! (`` `policies[2]`: unknown policy … ``), so a typo fails in milliseconds
//! instead of after the first half of the grid.
//!
//! [`ServingSession`]: crate::session::ServingSession

use crate::experiments::perf::{rate_per_sec, MIN_WALL_MS};
use crate::experiments::spec::{SessionSpec, SweepSpec};
use crate::experiments::ToJson;
use crate::registry::PolicyRegistry;
use crate::session::SessionReport;
use janus_json::Value;
use janus_platform::capacity::{AdmissionRegistry, AutoscalerRegistry};
use janus_platform::metrics::ServingMetrics;
use janus_platform::openloop::OpenLoopArena;
use janus_scenarios::ScenarioRegistry;
use janus_simcore::metrics::MetricsRegistry;
use rayon::prelude::*;
use std::fmt;
use std::num::NonZeroUsize;
use std::time::Instant;

/// One completed grid point: the session spec that described it and the
/// invariant-checked report it produced.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Position in grid (expansion) order.
    pub index: usize,
    /// The resolved per-point spec.
    pub session: SessionSpec,
    /// The session report (one `PolicyReport` per policy).
    pub report: SessionReport,
    /// Wall-clock time of the point, in ms (clamped to stay positive).
    pub wall_ms: f64,
}

impl SweepPoint {
    /// One-line progress summary (`janus sweep` streams these as points
    /// complete).
    pub fn progress_line(&self, total: usize) -> String {
        let axes = [
            self.session.scenario.as_deref().map(|s| s.to_string()),
            self.session.rps.map(|r| format!("{r} rps")),
            Some(format!("seed {}", self.session.seed)),
            self.session.autoscaler.as_deref().map(str::to_string),
            self.session.admission.as_deref().map(str::to_string),
            self.session.fault.as_deref().map(str::to_string),
            self.session.observer.as_deref().map(str::to_string),
        ];
        let axes: Vec<String> = axes.into_iter().flatten().collect();
        format!(
            "[{}/{total}] {} ({:.0} ms)",
            self.index + 1,
            axes.join(" x "),
            self.wall_ms
        )
    }
}

/// The outcome of a sweep: every grid point in expansion order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The spec the sweep ran from.
    pub spec: SweepSpec,
    /// Completed points, in grid order.
    pub points: Vec<SweepPoint>,
    /// Wall-clock time of the whole sweep, in ms.
    pub total_wall_ms: f64,
}

impl SweepResult {
    /// The point matching the given axes (`None` arguments match points
    /// where that axis is unset).
    pub fn point(
        &self,
        scenario: &str,
        rps: f64,
        seed: u64,
        autoscaler: Option<&str>,
        admission: Option<&str>,
        fault: Option<&str>,
    ) -> Option<&SweepPoint> {
        self.points.iter().find(|p| {
            p.session.scenario.as_deref() == Some(scenario)
                && p.session.rps == Some(rps)
                && p.session.seed == seed
                && p.session.autoscaler.as_deref() == autoscaler
                && p.session.admission.as_deref() == admission
                && p.session.fault.as_deref() == fault
        })
    }

    /// Cross-point invariants on top of each session's own validation: the
    /// grid is complete, ordered exactly as the spec expands, and every
    /// report served the spec's policies.
    pub fn validate(&self) -> Result<(), String> {
        let expected = self.spec.expand();
        if self.points.len() != expected.len() {
            return Err(format!(
                "sweep produced {} points for a {}-point grid",
                self.points.len(),
                expected.len()
            ));
        }
        for (i, (point, spec)) in self.points.iter().zip(&expected).enumerate() {
            if point.index != i {
                return Err(format!("point {i} carries index {}", point.index));
            }
            if &point.session != spec {
                return Err(format!("point {i} ran a different spec than expanded"));
            }
            let names = point.report.names();
            let expected_names: Vec<&str> = self.spec.policies.iter().map(String::as_str).collect();
            if names != expected_names {
                return Err(format!(
                    "point {i} ran policies {names:?}, expected {expected_names:?}"
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for SweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Sweep `{}`: {} @ concurrency {}, {} requests/point, {} points in {:.0} ms",
            self.spec.name,
            self.spec.app.short_name(),
            self.spec.concurrency,
            self.spec.requests,
            self.points.len(),
            self.total_wall_ms
        )?;
        writeln!(
            f,
            "{:>14} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>9} {:>7} {:>7}",
            "scenario",
            "rps",
            "seed",
            "autoscaler",
            "admission",
            "fault",
            "policy",
            "attain %",
            "cpu mc",
            "p99 s",
            "shed",
            "failed"
        )?;
        for point in &self.points {
            for policy in &point.report.policies {
                writeln!(
                    f,
                    "{:>14} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10.1} {:>10.1} {:>9} \
                     {:>7} {:>7}",
                    point.session.scenario.as_deref().unwrap_or("-"),
                    point.session.rps.unwrap_or(f64::NAN),
                    point.session.seed,
                    point.session.autoscaler.as_deref().unwrap_or("-"),
                    point.session.admission.as_deref().unwrap_or("-"),
                    point.session.fault.as_deref().unwrap_or("-"),
                    policy.name,
                    policy.slo_attainment() * 100.0,
                    policy.serving.mean_cpu_millicores(),
                    policy
                        .serving
                        .e2e_percentile(99.0)
                        .map(|d| format!("{:.2}", d.as_secs()))
                        .unwrap_or_else(|| "-".into()),
                    policy.serving.shed_len(),
                    policy.serving.failed_len(),
                )?;
            }
        }
        Ok(())
    }
}

impl ToJson for SweepResult {
    fn to_json(&self) -> Value {
        let points = self
            .points
            .iter()
            .map(|point| {
                let policies = point
                    .report
                    .policies
                    .iter()
                    .map(|p| {
                        Value::Obj(vec![
                            ("name".to_string(), Value::Str(p.name.clone())),
                            ("slo_attainment".to_string(), Value::Num(p.slo_attainment())),
                            (
                                "mean_cpu_millicores".to_string(),
                                Value::Num(p.serving.mean_cpu_millicores()),
                            ),
                            (
                                "p99_e2e_s".to_string(),
                                p.serving
                                    .e2e_percentile(99.0)
                                    .map(|d| Value::Num(d.as_secs()))
                                    .unwrap_or(Value::Null),
                            ),
                            (
                                "served".to_string(),
                                Value::Num(p.serving.served_len() as f64),
                            ),
                            ("shed".to_string(), Value::Num(p.serving.shed_len() as f64)),
                            (
                                "failed".to_string(),
                                Value::Num(p.serving.failed_len() as f64),
                            ),
                            (
                                "retried".to_string(),
                                Value::Num(
                                    p.serving.capacity.as_ref().map_or(0, |c| c.retried) as f64
                                ),
                            ),
                            (
                                "nodes_lost".to_string(),
                                Value::Num(
                                    p.serving.capacity.as_ref().map_or(0, |c| c.nodes_lost) as f64
                                ),
                            ),
                            (
                                "node_seconds".to_string(),
                                p.serving
                                    .capacity
                                    .as_ref()
                                    .map(|c| Value::Num(c.node_seconds))
                                    .unwrap_or(Value::Null),
                            ),
                        ])
                    })
                    .collect();
                Value::Obj(vec![
                    ("session".to_string(), point.session.to_json()),
                    ("policies".to_string(), Value::Arr(policies)),
                    ("wall_ms".to_string(), Value::Num(point.wall_ms)),
                    (
                        "points_per_sec".to_string(),
                        Value::Num(rate_per_sec(1, point.wall_ms)),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("experiment".to_string(), Value::Str("sweep".to_string())),
            ("name".to_string(), Value::Str(self.spec.name.clone())),
            ("spec".to_string(), self.spec.to_json()),
            ("points".to_string(), Value::Arr(points)),
            ("total_wall_ms".to_string(), Value::Num(self.total_wall_ms)),
        ])
    }
}

/// Resolve every name in the spec against the built-in registries before
/// running anything, reporting the offending spec key on failure.
fn resolve_names(spec: &SweepSpec) -> Result<(), String> {
    let policies = PolicyRegistry::with_builtins();
    for (i, name) in spec.policies.iter().enumerate() {
        if policies.get(name).is_none() {
            return Err(format!(
                "`policies[{i}]`: unknown policy `{name}`; registered policies: {}",
                policies.names().join(", ")
            ));
        }
    }
    let scenarios = ScenarioRegistry::with_builtins();
    for (i, name) in spec.scenarios.iter().enumerate() {
        scenarios
            .ensure_known(name)
            .map_err(|e| format!("`scenarios[{i}]`: {e}"))?;
    }
    for (i, tenant) in spec.tenants.iter().flatten().enumerate() {
        scenarios
            .ensure_known(&tenant.scenario)
            .map_err(|e| format!("`tenants[{i}].scenario`: {e}"))?;
    }
    let autoscalers = AutoscalerRegistry::with_builtins();
    for (i, name) in spec.autoscalers.iter().flatten().enumerate() {
        autoscalers
            .ensure_known(name)
            .map_err(|e| format!("`autoscalers[{i}]`: {e}"))?;
    }
    let admissions = AdmissionRegistry::with_builtins();
    for (i, name) in spec.admissions.iter().flatten().enumerate() {
        admissions
            .ensure_known(name)
            .map_err(|e| format!("`admissions[{i}]`: {e}"))?;
    }
    let faults = janus_chaos::FaultRegistry::with_builtins();
    for (i, name) in spec.faults.iter().flatten().enumerate() {
        faults
            .ensure_known(name)
            .map_err(|e| format!("`faults[{i}]`: {e}"))?;
    }
    let observers = janus_observe::ObserverRegistry::with_builtins();
    for (i, name) in spec.observers.iter().flatten().enumerate() {
        observers
            .ensure_known(name)
            .map_err(|e| format!("`observers[{i}]`: {e}"))?;
    }
    Ok(())
}

/// Run a sweep, invoking `on_point` as each grid point completes (from the
/// worker thread that ran it; points of one stripe complete in order, but
/// stripes interleave). The returned result is in grid order regardless.
pub fn run_sweep_streaming(
    spec: &SweepSpec,
    on_point: &(dyn Fn(&SweepPoint) + Sync),
) -> Result<SweepResult, String> {
    spec.validate()?;
    resolve_names(spec)?;
    // janus-lint: allow(nondeterminism) — wall-clock sweep cost, reported as metadata; point results are seed-pure
    let started = Instant::now();
    let points = spec.expand();
    let total = points.len();

    // Contiguous stripes, one per worker: each stripe shares one arena and
    // one set of interned metric handles across all its points.
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(total.max(1));
    let stripe_len = total.div_ceil(threads);
    let indexed: Vec<(usize, SessionSpec)> = points.into_iter().enumerate().collect();
    let stripes: Vec<Vec<(usize, SessionSpec)>> = indexed
        .chunks(stripe_len.max(1))
        .map(<[_]>::to_vec)
        .collect();

    let completed: Vec<Result<Vec<SweepPoint>, String>> = stripes
        .into_par_iter()
        .map(|stripe| {
            let metrics_registry = MetricsRegistry::new();
            let metrics = ServingMetrics::intern(&metrics_registry);
            let mut arena = OpenLoopArena::new();
            let mut done = Vec::with_capacity(stripe.len());
            for (index, session_spec) in stripe {
                // janus-lint: allow(nondeterminism) — per-point wall cost for progress lines only
                let point_started = Instant::now();
                let context = |e: String| {
                    format!(
                        "point {index} (scenario `{}`, {} rps, seed {}): {e}",
                        session_spec.scenario.as_deref().unwrap_or("-"),
                        session_spec.rps.unwrap_or(f64::NAN),
                        session_spec.seed
                    )
                };
                let session = session_spec.builder().build().map_err(context)?;
                let report = session
                    .run_in(&mut arena, &metrics_registry, &metrics)
                    .map_err(context)?;
                let point = SweepPoint {
                    index,
                    session: session_spec,
                    report,
                    wall_ms: (point_started.elapsed().as_secs_f64() * 1000.0).max(MIN_WALL_MS),
                };
                on_point(&point);
                done.push(point);
            }
            Ok(done)
        })
        .collect();
    let mut points = Vec::with_capacity(total);
    for stripe in completed {
        points.extend(stripe?);
    }

    let result = SweepResult {
        spec: spec.clone(),
        points,
        total_wall_ms: (started.elapsed().as_secs_f64() * 1000.0).max(MIN_WALL_MS),
    };
    result.validate()?;
    Ok(result)
}

/// Run a sweep without progress streaming.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResult, String> {
    run_sweep_streaming(spec, &|_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_workloads::apps::PaperApp;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            app: PaperApp::IntelligentAssistant,
            concurrency: 1,
            policies: vec!["GrandSLAM".into(), "Janus".into()],
            scenarios: vec!["poisson".into(), "flash-crowd".into()],
            loads_rps: vec![2.0],
            seeds: vec![7, 11],
            autoscalers: None,
            admissions: None,
            faults: None,
            observers: None,
            cluster: None,
            tenants: None,
            requests: 30,
            samples_per_point: 250,
            budget_step_ms: 10.0,
        }
    }

    #[test]
    fn sweeps_cover_the_grid_in_order_and_stream_every_point() {
        let spec = tiny_spec();
        let streamed = AtomicUsize::new(0);
        let result = run_sweep_streaming(&spec, &|point| {
            streamed.fetch_add(1, Ordering::SeqCst);
            assert!(point.progress_line(4).contains("rps"));
        })
        .unwrap();
        assert_eq!(streamed.load(Ordering::SeqCst), 4);
        assert_eq!(result.points.len(), 4);
        result.validate().unwrap();
        // Grid order: poisson/7, poisson/11, flash-crowd/7, flash-crowd/11.
        let scenarios: Vec<_> = result
            .points
            .iter()
            .map(|p| (p.session.scenario.clone().unwrap(), p.session.seed))
            .collect();
        assert_eq!(
            scenarios,
            vec![
                ("poisson".to_string(), 7),
                ("poisson".to_string(), 11),
                ("flash-crowd".to_string(), 7),
                ("flash-crowd".to_string(), 11)
            ]
        );
        // Seeds change the outcome; the same seed reproduces it.
        let a = result.point("poisson", 2.0, 7, None, None, None).unwrap();
        let b = result.point("poisson", 2.0, 11, None, None, None).unwrap();
        assert_ne!(
            a.report.serving("Janus").unwrap(),
            b.report.serving("Janus").unwrap()
        );
        let rerun = run_sweep(&spec).unwrap();
        for (x, y) in result.points.iter().zip(&rerun.points) {
            assert_eq!(
                x.report.serving("GrandSLAM").unwrap(),
                y.report.serving("GrandSLAM").unwrap()
            );
        }
        // Display and JSON views cover every point.
        let shown = format!("{result}");
        assert!(shown.contains("flash-crowd"), "{shown}");
        let doc = janus_json::parse(&result.to_json().to_pretty()).unwrap();
        assert_eq!(doc.require("points").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(doc.require("experiment").unwrap().as_str(), Some("sweep"));
    }

    #[test]
    fn capacity_axes_flow_into_the_sessions() {
        use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
        use janus_simcore::resources::Millicores;
        let spec = SweepSpec {
            scenarios: vec!["flash-crowd".into()],
            policies: vec!["GrandSLAM".into()],
            loads_rps: vec![6.0],
            seeds: vec![7],
            autoscalers: Some(vec!["queue-depth".into()]),
            admissions: Some(vec!["token-bucket".into()]),
            cluster: Some(ClusterConfig {
                nodes: 2,
                node_capacity: Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 1,
            }),
            requests: 60,
            ..tiny_spec()
        };
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.points.len(), 1);
        let report = &result.points[0].report;
        assert_eq!(report.autoscaler.as_deref(), Some("queue-depth"));
        assert_eq!(report.admission.as_deref(), Some("token-bucket"));
        let capacity = report
            .serving("GrandSLAM")
            .unwrap()
            .capacity
            .as_ref()
            .expect("capacity report present");
        assert_eq!(capacity.admitted + capacity.shed, 60);
    }

    #[test]
    fn fault_axes_flow_into_the_sessions_and_stay_deterministic() {
        use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
        use janus_simcore::resources::Millicores;
        let spec = SweepSpec {
            scenarios: vec!["flash-crowd".into()],
            policies: vec!["GrandSLAM".into()],
            loads_rps: vec![6.0],
            seeds: vec![7],
            autoscalers: Some(vec!["static".into()]),
            admissions: Some(vec!["admit-all".into()]),
            faults: Some(vec!["zone-outage".into()]),
            cluster: Some(ClusterConfig {
                nodes: 4,
                node_capacity: Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 2,
            }),
            requests: 60,
            ..tiny_spec()
        };
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.points.len(), 1);
        let point = result
            .point(
                "flash-crowd",
                6.0,
                7,
                Some("static"),
                Some("admit-all"),
                Some("zone-outage"),
            )
            .unwrap();
        assert!(point.progress_line(1).contains("zone-outage"));
        let capacity = point
            .report
            .serving("GrandSLAM")
            .unwrap()
            .capacity
            .clone()
            .expect("capacity report present");
        assert_eq!(capacity.injector.as_deref(), Some("zone-outage"));
        // Static fleet: the 4 nodes stay round-robined 2 per zone, so the
        // outage kills exactly the dying zone's pair.
        assert_eq!(capacity.nodes_lost, 2, "exactly one 2-node zone dies");
        assert_eq!(capacity.admitted + capacity.shed, 60);
        // Rerunning the spec reproduces the fault run bit for bit.
        let rerun = run_sweep(&spec).unwrap();
        assert_eq!(
            point.report.serving("GrandSLAM").unwrap(),
            rerun.points[0].report.serving("GrandSLAM").unwrap()
        );
        // The JSON view carries the failure accounting.
        let doc = janus_json::parse(&result.to_json().to_pretty()).unwrap();
        let policy = &doc.require("points").unwrap().as_array().unwrap()[0]
            .require("policies")
            .unwrap()
            .as_array()
            .unwrap()[0];
        for key in ["failed", "retried", "nodes_lost", "node_seconds"] {
            assert!(policy.get(key).is_some(), "missing `{key}`");
        }
    }

    #[test]
    fn tenant_specs_flow_into_every_grid_point() {
        use crate::session::TenantLoad;
        let spec = SweepSpec {
            scenarios: vec!["poisson".into()],
            policies: vec!["GrandSLAM".into()],
            seeds: vec![7],
            tenants: Some(vec![TenantLoad {
                count: 2,
                scenario: "bursty".into(),
                rps: 1.0,
                slo_ms: None,
            }]),
            requests: 40,
            ..tiny_spec()
        };
        // Tenants multiply the load at each point, not the grid.
        assert_eq!(spec.grid_size(), 1);
        let result = run_sweep(&spec).unwrap();
        let report = &result.points[0].report;
        assert_eq!(report.tenants.as_ref().map(Vec::len), Some(1));
        assert_eq!(report.serving("GrandSLAM").unwrap().len(), 40);
        // Unknown tenant scenarios fail fast, pointing at the key.
        let err = run_sweep(&SweepSpec {
            tenants: Some(vec![TenantLoad {
                count: 1,
                scenario: "tsunami".into(),
                rps: 1.0,
                slo_ms: None,
            }]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`tenants[0].scenario`"), "{err}");
        assert!(err.contains("unknown scenario `tsunami`"), "{err}");
    }

    #[test]
    fn bad_names_fail_fast_and_point_at_the_key() {
        let err = run_sweep(&SweepSpec {
            policies: vec!["GrandSLAM".into(), "Janux".into()],
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(
            err.contains("`policies[1]`: unknown policy `Janux`"),
            "{err}"
        );
        let err = run_sweep(&SweepSpec {
            scenarios: vec!["tsunami".into()],
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`scenarios[0]`"), "{err}");
        assert!(err.contains("unknown scenario `tsunami`"), "{err}");
        let err = run_sweep(&SweepSpec {
            autoscalers: Some(vec!["hypergrowth".into()]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`autoscalers[0]`"), "{err}");
        let err = run_sweep(&SweepSpec {
            admissions: Some(vec!["bouncer".into()]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`admissions[0]`"), "{err}");
        let err = run_sweep(&SweepSpec {
            faults: Some(vec!["meteor-strike".into()]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`faults[0]`"), "{err}");
        assert!(err.contains("unknown fault injector"), "{err}");
        let err = run_sweep(&SweepSpec {
            observers: Some(vec!["black-box".into()]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`observers[0]`"), "{err}");
        assert!(err.contains("unknown observer `black-box`"), "{err}");
        let err = run_sweep(&SweepSpec {
            loads_rps: vec![],
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`loads_rps`"), "{err}");
    }
}
