//! The generic sweep driver: execute a [`SweepSpec`] grid in parallel.
//!
//! [`run_sweep`] is the engine behind `janus sweep <spec.json>` — the
//! data-driven generalization of the hand-written scenario/capacity sweeps.
//! The spec's axes expand into [`SessionSpec`] grid points
//! (scenario-major, then load, seed, autoscaler, admission); every point is
//! one paired, invariant-checked [`ServingSession`]. Points fan out across
//! threads in contiguous stripes, and each worker runs its stripe through
//! [`run_in`](crate::session::ServingSession::run_in) with one
//! [`OpenLoopArena`] and one set of
//! interned metric handles, so engine heaps, in-flight tables and metric
//! interning are paid once per worker instead of once per point. Results
//! come back in grid order regardless of scheduling, and sessions are
//! seed-deterministic, so a sweep is reproducible bit for bit.
//!
//! [`run_sweep_streaming`] additionally invokes a callback as each point
//! completes (from the worker thread that ran it) — the `janus` CLI uses it
//! to print progress lines while a long grid is still running.
//!
//! [`run_sweep_stored`] adds the content-addressed results store
//! (`janus-results`): before a point runs, the store is consulted under the
//! hash of the point's fully-resolved [`SessionSpec`] document plus
//! [`RESULTS_EPOCH`]; hits are replayed from disk without building a
//! session, and misses are written back atomically as they complete. A
//! replayed grid reproduces the cold run's [`SweepResult`] byte for byte:
//! every figure the aggregate carries — including per-point `wall_ms` — is
//! persisted in the cell file, not recomputed.
//!
//! Every name in the spec is resolved against the built-in registries
//! *before* anything runs, and the error points at the offending spec key
//! (`` `policies[2]`: unknown policy … ``), so a typo fails in milliseconds
//! instead of after the first half of the grid.
//!
//! [`ServingSession`]: crate::session::ServingSession

use crate::experiments::perf::{rate_per_sec, MIN_WALL_MS};
use crate::experiments::spec::{SessionSpec, SweepSpec};
use crate::experiments::ToJson;
use crate::registry::PolicyRegistry;
use crate::session::{PolicyReport, SessionReport};
use janus_json::Value;
use janus_platform::capacity::{AdmissionRegistry, AutoscalerRegistry};
use janus_platform::metrics::ServingMetrics;
use janus_platform::openloop::OpenLoopArena;
use janus_results::ResultsStore;
use janus_scenarios::ScenarioRegistry;
use janus_simcore::metrics::MetricsRegistry;
use rayon::prelude::*;
use std::fmt;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Cache epoch covered by every cell hash. Bump this when engine semantics
/// change — scheduler behaviour, metric definitions, scenario generators —
/// so every previously stored cell stops matching at once. Old-epoch files
/// are unreachable rather than invalid: the epoch is inside the hash, so a
/// stale file is simply never looked up again.
pub const RESULTS_EPOCH: u32 = 1;

/// How a results store participates in a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Consult the store before each point; replay hits, run and save misses.
    Reuse,
    /// Ignore existing cells, run everything, overwrite the store.
    Force,
}

/// The summary figures one policy produced at one grid point — exactly the
/// numbers the sweep's table and JSON views publish. This is the unit the
/// results store persists: small enough to keep thousands of cells on disk,
/// complete enough that a cache replay renders identically to a live run.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCell {
    /// Registered policy name.
    pub name: String,
    /// Fraction of served requests inside SLO.
    pub slo_attainment: f64,
    /// Mean per-request CPU in millicores.
    pub mean_cpu_millicores: f64,
    /// p99 end-to-end latency in seconds (`None` when nothing was served).
    pub p99_e2e_s: Option<f64>,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests failed by faults.
    pub failed: u64,
    /// Requests retried after node loss.
    pub retried: u64,
    /// Nodes lost to injected faults.
    pub nodes_lost: u64,
    /// Node-seconds of fleet capacity (`None` without a capacity report).
    pub node_seconds: Option<f64>,
}

fn field_num(doc: &Value, key: &str) -> Result<f64, String> {
    doc.require(key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` must be a number"))
}

fn field_opt_num(doc: &Value, key: &str) -> Result<Option<f64>, String> {
    match doc.require(key)? {
        Value::Null => Ok(None),
        v => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a number or null")),
    }
}

fn field_count(doc: &Value, key: &str) -> Result<u64, String> {
    let n = field_num(doc, key)?;
    // janus-lint: allow(float-cmp) — exactness is the point: fract() must be exactly zero for an integer-valued f64
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 || n >= 9_007_199_254_740_992.0 {
        return Err(format!(
            "field `{key}` must be a non-negative integer, got {n}"
        ));
    }
    Ok(n as u64)
}

impl PolicyCell {
    /// Extract the published figures from a live policy report.
    pub fn from_report(report: &PolicyReport) -> Self {
        Self {
            name: report.name.clone(),
            slo_attainment: report.slo_attainment(),
            mean_cpu_millicores: report.serving.mean_cpu_millicores(),
            p99_e2e_s: report.serving.e2e_percentile(99.0).map(|d| d.as_secs()),
            served: report.serving.served_len() as u64,
            shed: report.serving.shed_len() as u64,
            failed: report.serving.failed_len() as u64,
            retried: report
                .serving
                .capacity
                .as_ref()
                .map_or(0, |c| c.retried as u64),
            nodes_lost: report
                .serving
                .capacity
                .as_ref()
                .map_or(0, |c| c.nodes_lost as u64),
            node_seconds: report.serving.capacity.as_ref().map(|c| c.node_seconds),
        }
    }

    /// The JSON object published per policy per point (the schema `--out`
    /// files have always carried; the results store reuses it verbatim).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "slo_attainment".to_string(),
                Value::Num(self.slo_attainment),
            ),
            (
                "mean_cpu_millicores".to_string(),
                Value::Num(self.mean_cpu_millicores),
            ),
            (
                "p99_e2e_s".to_string(),
                self.p99_e2e_s.map(Value::Num).unwrap_or(Value::Null),
            ),
            ("served".to_string(), Value::Num(self.served as f64)),
            ("shed".to_string(), Value::Num(self.shed as f64)),
            ("failed".to_string(), Value::Num(self.failed as f64)),
            ("retried".to_string(), Value::Num(self.retried as f64)),
            ("nodes_lost".to_string(), Value::Num(self.nodes_lost as f64)),
            (
                "node_seconds".to_string(),
                self.node_seconds.map(Value::Num).unwrap_or(Value::Null),
            ),
        ])
    }

    /// Strict inverse of [`to_json`](PolicyCell::to_json): every field
    /// present and well-typed, errors naming the offending key.
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        Ok(Self {
            name: doc
                .require("name")?
                .as_str()
                .ok_or_else(|| "field `name` must be a string".to_string())?
                .to_string(),
            slo_attainment: field_num(doc, "slo_attainment")?,
            mean_cpu_millicores: field_num(doc, "mean_cpu_millicores")?,
            p99_e2e_s: field_opt_num(doc, "p99_e2e_s")?,
            served: field_count(doc, "served")?,
            shed: field_count(doc, "shed")?,
            failed: field_count(doc, "failed")?,
            retried: field_count(doc, "retried")?,
            nodes_lost: field_count(doc, "nodes_lost")?,
            node_seconds: field_opt_num(doc, "node_seconds")?,
        })
    }
}

/// The result document a stored cell carries: the per-policy figures of one
/// grid point.
fn cell_result_json(policies: &[PolicyCell]) -> Value {
    Value::Obj(vec![(
        "policies".to_string(),
        Value::Arr(policies.iter().map(PolicyCell::to_json).collect()),
    )])
}

fn decode_cell_result(result: &Value) -> Result<Vec<PolicyCell>, String> {
    let arr = result
        .require("policies")?
        .as_array()
        .ok_or_else(|| "field `policies` must be an array".to_string())?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| PolicyCell::from_json(v).map_err(|e| format!("`policies[{i}]`: {e}")))
        .collect()
}

/// One completed grid point: the session spec that described it and the
/// per-policy figures it produced — live or replayed from the results store.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Position in grid (expansion) order.
    pub index: usize,
    /// The resolved per-point spec.
    pub session: SessionSpec,
    /// Published figures, one [`PolicyCell`] per policy in spec order.
    pub policies: Vec<PolicyCell>,
    /// The full session report — present only when the point actually ran
    /// this process (`None` for cache replays, which carry just the
    /// published figures).
    pub report: Option<SessionReport>,
    /// Wall-clock time of the point, in ms (clamped to stay positive). For
    /// replayed points this is the *original* run's cost, read back from the
    /// store, so aggregates reproduce byte-identically.
    pub wall_ms: f64,
    /// Whether this point was replayed from the results store.
    pub cached: bool,
}

impl SweepPoint {
    /// The full report of a point that ran live in this process. Cache
    /// replays return `None`: the store keeps published figures, not raw
    /// per-request outcome vectors.
    pub fn live_report(&self) -> Option<&SessionReport> {
        self.report.as_ref()
    }

    /// One-line progress summary (`janus sweep` streams these as points
    /// complete).
    pub fn progress_line(&self, total: usize) -> String {
        let axes = [
            self.session.scenario.as_deref().map(|s| s.to_string()),
            self.session.rps.map(|r| format!("{r} rps")),
            Some(format!("seed {}", self.session.seed)),
            self.session.autoscaler.as_deref().map(str::to_string),
            self.session.admission.as_deref().map(str::to_string),
            self.session.fault.as_deref().map(str::to_string),
            self.session.observer.as_deref().map(str::to_string),
        ];
        let axes: Vec<String> = axes.into_iter().flatten().collect();
        let cost = if self.cached {
            "cached".to_string()
        } else {
            format!("{:.0} ms", self.wall_ms)
        };
        format!("[{}/{total}] {} ({cost})", self.index + 1, axes.join(" x "))
    }
}

/// The outcome of a sweep: every grid point in expansion order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The spec the sweep ran from.
    pub spec: SweepSpec,
    /// Completed points, in grid order.
    pub points: Vec<SweepPoint>,
    /// Aggregate compute cost in ms: the sum of per-point wall time. Cached
    /// points contribute their *original* cost, so a fully warm replay
    /// reports the same total as the cold run it reproduces.
    pub total_wall_ms: f64,
    /// How many points were replayed from the results store (0 for
    /// storeless runs). Not serialised: the JSON view must be byte-identical
    /// between cold and warm runs.
    pub cache_hits: usize,
}

impl SweepResult {
    /// The point matching the given axes (`None` arguments match points
    /// where that axis is unset).
    pub fn point(
        &self,
        scenario: &str,
        rps: f64,
        seed: u64,
        autoscaler: Option<&str>,
        admission: Option<&str>,
        fault: Option<&str>,
    ) -> Option<&SweepPoint> {
        self.points.iter().find(|p| {
            p.session.scenario.as_deref() == Some(scenario)
                && p.session.rps == Some(rps)
                && p.session.seed == seed
                && p.session.autoscaler.as_deref() == autoscaler
                && p.session.admission.as_deref() == admission
                && p.session.fault.as_deref() == fault
        })
    }

    /// Cross-point invariants on top of each session's own validation: the
    /// grid is complete, ordered exactly as the spec expands, and every
    /// point carries the spec's policies.
    pub fn validate(&self) -> Result<(), String> {
        let expected = self.spec.expand();
        if self.points.len() != expected.len() {
            return Err(format!(
                "sweep produced {} points for a {}-point grid",
                self.points.len(),
                expected.len()
            ));
        }
        for (i, (point, spec)) in self.points.iter().zip(&expected).enumerate() {
            if point.index != i {
                return Err(format!("point {i} carries index {}", point.index));
            }
            if &point.session != spec {
                return Err(format!("point {i} ran a different spec than expanded"));
            }
            let names: Vec<&str> = point.policies.iter().map(|c| c.name.as_str()).collect();
            let expected_names: Vec<&str> = self.spec.policies.iter().map(String::as_str).collect();
            if names != expected_names {
                return Err(format!(
                    "point {i} ran policies {names:?}, expected {expected_names:?}"
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for SweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Sweep `{}`: {} @ concurrency {}, {} requests/point, {} points in {:.0} ms",
            self.spec.name,
            self.spec.app.short_name(),
            self.spec.concurrency,
            self.spec.requests,
            self.points.len(),
            self.total_wall_ms
        )?;
        writeln!(
            f,
            "{:>14} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>9} {:>7} {:>7}",
            "scenario",
            "rps",
            "seed",
            "autoscaler",
            "admission",
            "fault",
            "policy",
            "attain %",
            "cpu mc",
            "p99 s",
            "shed",
            "failed"
        )?;
        for point in &self.points {
            for cell in &point.policies {
                writeln!(
                    f,
                    "{:>14} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10.1} {:>10.1} {:>9} \
                     {:>7} {:>7}",
                    point.session.scenario.as_deref().unwrap_or("-"),
                    point.session.rps.unwrap_or(f64::NAN),
                    point.session.seed,
                    point.session.autoscaler.as_deref().unwrap_or("-"),
                    point.session.admission.as_deref().unwrap_or("-"),
                    point.session.fault.as_deref().unwrap_or("-"),
                    cell.name,
                    cell.slo_attainment * 100.0,
                    cell.mean_cpu_millicores,
                    cell.p99_e2e_s
                        .map(|s| format!("{s:.2}"))
                        .unwrap_or_else(|| "-".into()),
                    cell.shed,
                    cell.failed,
                )?;
            }
        }
        Ok(())
    }
}

impl ToJson for SweepResult {
    fn to_json(&self) -> Value {
        let points = self
            .points
            .iter()
            .map(|point| {
                Value::Obj(vec![
                    ("session".to_string(), point.session.to_json()),
                    (
                        "policies".to_string(),
                        Value::Arr(point.policies.iter().map(PolicyCell::to_json).collect()),
                    ),
                    ("wall_ms".to_string(), Value::Num(point.wall_ms)),
                    (
                        "points_per_sec".to_string(),
                        Value::Num(rate_per_sec(1, point.wall_ms)),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("experiment".to_string(), Value::Str("sweep".to_string())),
            ("name".to_string(), Value::Str(self.spec.name.clone())),
            ("spec".to_string(), self.spec.to_json()),
            ("points".to_string(), Value::Arr(points)),
            ("total_wall_ms".to_string(), Value::Num(self.total_wall_ms)),
        ])
    }
}

/// Resolve every name in the spec against the built-in registries before
/// running anything, reporting the offending spec key on failure.
fn resolve_names(spec: &SweepSpec) -> Result<(), String> {
    let policies = PolicyRegistry::with_builtins();
    for (i, name) in spec.policies.iter().enumerate() {
        if policies.get(name).is_none() {
            return Err(format!(
                "`policies[{i}]`: unknown policy `{name}`; registered policies: {}",
                policies.names().join(", ")
            ));
        }
    }
    let scenarios = ScenarioRegistry::with_builtins();
    for (i, name) in spec.scenarios.iter().enumerate() {
        scenarios
            .ensure_known(name)
            .map_err(|e| format!("`scenarios[{i}]`: {e}"))?;
    }
    for (i, tenant) in spec.tenants.iter().flatten().enumerate() {
        scenarios
            .ensure_known(&tenant.scenario)
            .map_err(|e| format!("`tenants[{i}].scenario`: {e}"))?;
    }
    let autoscalers = AutoscalerRegistry::with_builtins();
    for (i, name) in spec.autoscalers.iter().flatten().enumerate() {
        autoscalers
            .ensure_known(name)
            .map_err(|e| format!("`autoscalers[{i}]`: {e}"))?;
    }
    let admissions = AdmissionRegistry::with_builtins();
    for (i, name) in spec.admissions.iter().flatten().enumerate() {
        admissions
            .ensure_known(name)
            .map_err(|e| format!("`admissions[{i}]`: {e}"))?;
    }
    let faults = janus_chaos::FaultRegistry::with_builtins();
    for (i, name) in spec.faults.iter().flatten().enumerate() {
        faults
            .ensure_known(name)
            .map_err(|e| format!("`faults[{i}]`: {e}"))?;
    }
    let observers = janus_observe::ObserverRegistry::with_builtins();
    for (i, name) in spec.observers.iter().flatten().enumerate() {
        observers
            .ensure_known(name)
            .map_err(|e| format!("`observers[{i}]`: {e}"))?;
    }
    Ok(())
}

/// Run a sweep against an optional results store, invoking `on_point` as
/// each grid point completes (cache replays first, in grid order from the
/// calling thread; live points from the worker threads that ran them).
///
/// With `Some((store, StoreMode::Reuse))`, each expanded point is looked up
/// under `hash(session spec doc + RESULTS_EPOCH)` before anything is built:
/// hits replay from disk (no session, no arena), misses run as usual and
/// are written back atomically on completion. With `StoreMode::Force`, the
/// lookup is skipped and every completed point overwrites its cell. The
/// returned result is in grid order and byte-identical (Display and JSON)
/// whether points ran live or replayed.
pub fn run_sweep_stored(
    spec: &SweepSpec,
    store: Option<(&ResultsStore, StoreMode)>,
    on_point: &(dyn Fn(&SweepPoint) + Sync),
) -> Result<SweepResult, String> {
    spec.validate()?;
    resolve_names(spec)?;
    let expanded = spec.expand();
    let total = expanded.len();

    // Partition the grid: replayable hits vs points that must run. The
    // lookup hashes the fully-resolved per-point document, so any edit to
    // any axis value changes the key and re-runs exactly the changed cells.
    let mut replayed: Vec<SweepPoint> = Vec::new();
    let mut to_run: Vec<(usize, SessionSpec)> = Vec::new();
    for (index, session_spec) in expanded.into_iter().enumerate() {
        let hit = match store {
            Some((s, StoreMode::Reuse)) => s.load(&session_spec.to_json(), RESULTS_EPOCH)?,
            _ => None,
        };
        match hit {
            Some(stored) => {
                let policies = decode_cell_result(&stored.result)
                    .map_err(|e| format!("cached point {index} (key `{}`): {e}", stored.key))?;
                let point = SweepPoint {
                    index,
                    session: session_spec,
                    policies,
                    report: None,
                    wall_ms: stored.wall_ms,
                    cached: true,
                };
                on_point(&point);
                replayed.push(point);
            }
            None => to_run.push((index, session_spec)),
        }
    }
    let cache_hits = replayed.len();

    // Contiguous stripes, one per worker: each stripe shares one arena and
    // one set of interned metric handles across all its points.
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(to_run.len().max(1));
    let stripe_len = to_run.len().div_ceil(threads);
    let stripes: Vec<Vec<(usize, SessionSpec)>> = to_run
        .chunks(stripe_len.max(1))
        .map(<[_]>::to_vec)
        .collect();

    let completed: Vec<Result<Vec<SweepPoint>, String>> = stripes
        .into_par_iter()
        .map(|stripe| {
            let metrics_registry = MetricsRegistry::new();
            let metrics = ServingMetrics::intern(&metrics_registry);
            let mut arena = OpenLoopArena::new();
            let mut done = Vec::with_capacity(stripe.len());
            for (index, session_spec) in stripe {
                // janus-lint: allow(nondeterminism) — per-point wall cost for progress lines only
                let point_started = Instant::now();
                let context = |e: String| {
                    format!(
                        "point {index} (scenario `{}`, {} rps, seed {}): {e}",
                        session_spec.scenario.as_deref().unwrap_or("-"),
                        session_spec.rps.unwrap_or(f64::NAN),
                        session_spec.seed
                    )
                };
                let session = session_spec.builder().build().map_err(context)?;
                let report = session
                    .run_in(&mut arena, &metrics_registry, &metrics)
                    .map_err(context)?;
                let policies: Vec<PolicyCell> = report
                    .policies
                    .iter()
                    .map(PolicyCell::from_report)
                    .collect();
                let wall_ms = (point_started.elapsed().as_secs_f64() * 1000.0).max(MIN_WALL_MS);
                if let Some((s, _)) = store {
                    s.save(
                        &session_spec.to_json(),
                        RESULTS_EPOCH,
                        wall_ms,
                        &cell_result_json(&policies),
                    )
                    .map_err(context)?;
                }
                let point = SweepPoint {
                    index,
                    session: session_spec,
                    policies,
                    report: Some(report),
                    wall_ms,
                    cached: false,
                };
                on_point(&point);
                done.push(point);
            }
            Ok(done)
        })
        .collect();

    let mut points = replayed;
    points.reserve(total.saturating_sub(points.len()));
    for stripe in completed {
        points.extend(stripe?);
    }
    points.sort_by_key(|p| p.index);

    let result = SweepResult {
        spec: spec.clone(),
        total_wall_ms: points
            .iter()
            .map(|p| p.wall_ms)
            .sum::<f64>()
            .max(MIN_WALL_MS),
        points,
        cache_hits,
    };
    result.validate()?;
    Ok(result)
}

/// Run a sweep with no results store, invoking `on_point` as each point
/// completes (from the worker thread that ran it; points of one stripe
/// complete in order, but stripes interleave).
pub fn run_sweep_streaming(
    spec: &SweepSpec,
    on_point: &(dyn Fn(&SweepPoint) + Sync),
) -> Result<SweepResult, String> {
    run_sweep_stored(spec, None, on_point)
}

/// Run a sweep without progress streaming or a results store.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResult, String> {
    run_sweep_streaming(spec, &|_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_workloads::apps::PaperApp;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            app: PaperApp::IntelligentAssistant,
            concurrency: 1,
            policies: vec!["GrandSLAM".into(), "Janus".into()],
            scenarios: vec!["poisson".into(), "flash-crowd".into()],
            loads_rps: vec![2.0],
            seeds: vec![7, 11],
            autoscalers: None,
            admissions: None,
            faults: None,
            observers: None,
            cluster: None,
            tenants: None,
            requests: 30,
            samples_per_point: 250,
            budget_step_ms: 10.0,
        }
    }

    #[test]
    fn sweeps_cover_the_grid_in_order_and_stream_every_point() {
        let spec = tiny_spec();
        let streamed = AtomicUsize::new(0);
        let result = run_sweep_streaming(&spec, &|point| {
            streamed.fetch_add(1, Ordering::SeqCst);
            assert!(point.progress_line(4).contains("rps"));
        })
        .unwrap();
        assert_eq!(streamed.load(Ordering::SeqCst), 4);
        assert_eq!(result.points.len(), 4);
        assert_eq!(result.cache_hits, 0);
        result.validate().unwrap();
        // Grid order: poisson/7, poisson/11, flash-crowd/7, flash-crowd/11.
        let scenarios: Vec<_> = result
            .points
            .iter()
            .map(|p| (p.session.scenario.clone().unwrap(), p.session.seed))
            .collect();
        assert_eq!(
            scenarios,
            vec![
                ("poisson".to_string(), 7),
                ("poisson".to_string(), 11),
                ("flash-crowd".to_string(), 7),
                ("flash-crowd".to_string(), 11)
            ]
        );
        // Seeds change the outcome; the same seed reproduces it.
        let a = result.point("poisson", 2.0, 7, None, None, None).unwrap();
        let b = result.point("poisson", 2.0, 11, None, None, None).unwrap();
        assert_ne!(
            a.live_report().unwrap().serving("Janus").unwrap(),
            b.live_report().unwrap().serving("Janus").unwrap()
        );
        let rerun = run_sweep(&spec).unwrap();
        for (x, y) in result.points.iter().zip(&rerun.points) {
            assert_eq!(
                x.live_report().unwrap().serving("GrandSLAM").unwrap(),
                y.live_report().unwrap().serving("GrandSLAM").unwrap()
            );
        }
        // Display and JSON views cover every point.
        let shown = format!("{result}");
        assert!(shown.contains("flash-crowd"), "{shown}");
        let doc = janus_json::parse(&result.to_json().to_pretty()).unwrap();
        assert_eq!(doc.require("points").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(doc.require("experiment").unwrap().as_str(), Some("sweep"));
    }

    #[test]
    fn policy_cells_round_trip_through_json() {
        let cell = PolicyCell {
            name: "Janus".into(),
            slo_attainment: 0.9725,
            mean_cpu_millicores: 412.03125,
            p99_e2e_s: Some(1.75),
            served: 58,
            shed: 2,
            failed: 0,
            retried: 3,
            nodes_lost: 1,
            node_seconds: Some(360.5),
        };
        let doc = janus_json::parse(&cell.to_json().to_pretty()).unwrap();
        assert_eq!(PolicyCell::from_json(&doc).unwrap(), cell);
        // Optional fields survive as null.
        let sparse = PolicyCell {
            p99_e2e_s: None,
            node_seconds: None,
            ..cell.clone()
        };
        let doc = janus_json::parse(&sparse.to_json().to_pretty()).unwrap();
        assert_eq!(PolicyCell::from_json(&doc).unwrap(), sparse);
        // Corrupt counts fail with the key named.
        let mut bad = doc.clone();
        if let Value::Obj(members) = &mut bad {
            for (k, v) in members.iter_mut() {
                if k == "served" {
                    *v = Value::Num(-3.0);
                }
            }
        }
        let err = PolicyCell::from_json(&bad).unwrap_err();
        assert!(err.contains("`served`"), "{err}");
    }

    fn temp_store(tag: &str) -> (ResultsStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("janus-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultsStore::open(&dir).expect("open store");
        (store, dir)
    }

    #[test]
    fn warm_store_replays_byte_identically_with_zero_sessions_run() {
        let spec = tiny_spec();
        let (store, dir) = temp_store("replay");

        let cold = run_sweep_stored(&spec, Some((&store, StoreMode::Reuse)), &|_| {}).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(store.load_all().unwrap().len(), 4);

        let ran = AtomicUsize::new(0);
        let warm = run_sweep_stored(&spec, Some((&store, StoreMode::Reuse)), &|point| {
            if !point.cached {
                ran.fetch_add(1, Ordering::SeqCst);
            }
            assert!(point.progress_line(4).contains("cached"));
        })
        .unwrap();
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "warm run must not run sessions"
        );
        assert_eq!(warm.cache_hits, 4);
        assert!(warm.points.iter().all(|p| p.live_report().is_none()));

        // The aggregate views are byte-identical between cold and warm.
        assert_eq!(format!("{cold}"), format!("{warm}"));
        assert_eq!(cold.to_json().to_pretty(), warm.to_json().to_pretty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn editing_one_axis_reruns_only_the_changed_cells() {
        let spec = tiny_spec();
        let (store, dir) = temp_store("edit");
        run_sweep_stored(&spec, Some((&store, StoreMode::Reuse)), &|_| {}).unwrap();

        // Adding a seed keeps the original 4 cells warm and runs only the
        // 2 new (scenario x new-seed) points.
        let edited = SweepSpec {
            seeds: vec![7, 11, 13],
            ..tiny_spec()
        };
        let ran = AtomicUsize::new(0);
        let result = run_sweep_stored(&edited, Some((&store, StoreMode::Reuse)), &|point| {
            if !point.cached {
                ran.fetch_add(1, Ordering::SeqCst);
                assert_eq!(point.session.seed, 13, "only the new seed should run");
            }
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        assert_eq!(result.cache_hits, 4);
        assert_eq!(result.points.len(), 6);
        assert_eq!(store.load_all().unwrap().len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn force_mode_reruns_everything_and_overwrites() {
        let spec = SweepSpec {
            scenarios: vec!["poisson".into()],
            seeds: vec![7],
            ..tiny_spec()
        };
        let (store, dir) = temp_store("force");
        run_sweep_stored(&spec, Some((&store, StoreMode::Reuse)), &|_| {}).unwrap();

        let ran = AtomicUsize::new(0);
        let forced = run_sweep_stored(&spec, Some((&store, StoreMode::Force)), &|point| {
            assert!(!point.cached);
            ran.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(forced.cache_hits, 0);
        assert!(forced.points[0].live_report().is_some());
        assert_eq!(
            store.load_all().unwrap().len(),
            1,
            "cell overwritten, not duplicated"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_axes_flow_into_the_sessions() {
        use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
        use janus_simcore::resources::Millicores;
        let spec = SweepSpec {
            scenarios: vec!["flash-crowd".into()],
            policies: vec!["GrandSLAM".into()],
            loads_rps: vec![6.0],
            seeds: vec![7],
            autoscalers: Some(vec!["queue-depth".into()]),
            admissions: Some(vec!["token-bucket".into()]),
            cluster: Some(ClusterConfig {
                nodes: 2,
                node_capacity: Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 1,
            }),
            requests: 60,
            ..tiny_spec()
        };
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.points.len(), 1);
        let report = result.points[0].live_report().unwrap();
        assert_eq!(report.autoscaler.as_deref(), Some("queue-depth"));
        assert_eq!(report.admission.as_deref(), Some("token-bucket"));
        let capacity = report
            .serving("GrandSLAM")
            .unwrap()
            .capacity
            .as_ref()
            .expect("capacity report present");
        assert_eq!(capacity.admitted + capacity.shed, 60);
    }

    #[test]
    fn fault_axes_flow_into_the_sessions_and_stay_deterministic() {
        use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
        use janus_simcore::resources::Millicores;
        let spec = SweepSpec {
            scenarios: vec!["flash-crowd".into()],
            policies: vec!["GrandSLAM".into()],
            loads_rps: vec![6.0],
            seeds: vec![7],
            autoscalers: Some(vec!["static".into()]),
            admissions: Some(vec!["admit-all".into()]),
            faults: Some(vec!["zone-outage".into()]),
            cluster: Some(ClusterConfig {
                nodes: 4,
                node_capacity: Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 2,
            }),
            requests: 60,
            ..tiny_spec()
        };
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.points.len(), 1);
        let point = result
            .point(
                "flash-crowd",
                6.0,
                7,
                Some("static"),
                Some("admit-all"),
                Some("zone-outage"),
            )
            .unwrap();
        assert!(point.progress_line(1).contains("zone-outage"));
        let capacity = point
            .live_report()
            .unwrap()
            .serving("GrandSLAM")
            .unwrap()
            .capacity
            .clone()
            .expect("capacity report present");
        assert_eq!(capacity.injector.as_deref(), Some("zone-outage"));
        // Static fleet: the 4 nodes stay round-robined 2 per zone, so the
        // outage kills exactly the dying zone's pair.
        assert_eq!(capacity.nodes_lost, 2, "exactly one 2-node zone dies");
        assert_eq!(capacity.admitted + capacity.shed, 60);
        // Rerunning the spec reproduces the fault run bit for bit.
        let rerun = run_sweep(&spec).unwrap();
        assert_eq!(
            point.live_report().unwrap().serving("GrandSLAM").unwrap(),
            rerun.points[0]
                .live_report()
                .unwrap()
                .serving("GrandSLAM")
                .unwrap()
        );
        // The JSON view carries the failure accounting.
        let doc = janus_json::parse(&result.to_json().to_pretty()).unwrap();
        let policy = &doc.require("points").unwrap().as_array().unwrap()[0]
            .require("policies")
            .unwrap()
            .as_array()
            .unwrap()[0];
        for key in ["failed", "retried", "nodes_lost", "node_seconds"] {
            assert!(policy.get(key).is_some(), "missing `{key}`");
        }
    }

    #[test]
    fn tenant_specs_flow_into_every_grid_point() {
        use crate::session::TenantLoad;
        let spec = SweepSpec {
            scenarios: vec!["poisson".into()],
            policies: vec!["GrandSLAM".into()],
            seeds: vec![7],
            tenants: Some(vec![TenantLoad {
                count: 2,
                scenario: "bursty".into(),
                rps: 1.0,
                slo_ms: None,
            }]),
            requests: 40,
            ..tiny_spec()
        };
        // Tenants multiply the load at each point, not the grid.
        assert_eq!(spec.grid_size(), 1);
        let result = run_sweep(&spec).unwrap();
        let report = result.points[0].live_report().unwrap();
        assert_eq!(report.tenants.as_ref().map(Vec::len), Some(1));
        assert_eq!(report.serving("GrandSLAM").unwrap().len(), 40);
        // Unknown tenant scenarios fail fast, pointing at the key.
        let err = run_sweep(&SweepSpec {
            tenants: Some(vec![TenantLoad {
                count: 1,
                scenario: "tsunami".into(),
                rps: 1.0,
                slo_ms: None,
            }]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`tenants[0].scenario`"), "{err}");
        assert!(err.contains("unknown scenario `tsunami`"), "{err}");
    }

    #[test]
    fn bad_names_fail_fast_and_point_at_the_key() {
        let err = run_sweep(&SweepSpec {
            policies: vec!["GrandSLAM".into(), "Janux".into()],
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(
            err.contains("`policies[1]`: unknown policy `Janux`"),
            "{err}"
        );
        let err = run_sweep(&SweepSpec {
            scenarios: vec!["tsunami".into()],
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`scenarios[0]`"), "{err}");
        assert!(err.contains("unknown scenario `tsunami`"), "{err}");
        let err = run_sweep(&SweepSpec {
            autoscalers: Some(vec!["hypergrowth".into()]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`autoscalers[0]`"), "{err}");
        let err = run_sweep(&SweepSpec {
            admissions: Some(vec!["bouncer".into()]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`admissions[0]`"), "{err}");
        let err = run_sweep(&SweepSpec {
            faults: Some(vec!["meteor-strike".into()]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`faults[0]`"), "{err}");
        assert!(err.contains("unknown fault injector"), "{err}");
        let err = run_sweep(&SweepSpec {
            observers: Some(vec!["black-box".into()]),
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`observers[0]`"), "{err}");
        assert!(err.contains("unknown observer `black-box`"), "{err}");
        let err = run_sweep(&SweepSpec {
            loads_rps: vec![],
            ..tiny_spec()
        })
        .unwrap_err();
        assert!(err.contains("`loads_rps`"), "{err}");
    }
}
