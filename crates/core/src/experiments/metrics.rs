//! Figure 7: the timeout and resilience metrics of the TS function (§V-D).

use janus_profiler::percentiles::Percentile;
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_workloads::apps::text_to_speech;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Figure 7 data: timeout vs cores per percentile, and resilience vs cores
/// per concurrency, for the TS function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// CPU allocations (millicores) the curves are sampled at.
    pub cores: Vec<u32>,
    /// `(percentile, timeout seconds per allocation)` — Figure 7a.
    pub timeout: Vec<(f64, Vec<f64>)>,
    /// `(concurrency, resilience seconds per allocation)` — Figure 7b.
    pub resilience: Vec<(u32, Vec<f64>)>,
}

/// Compute Figure 7 for the TS function: timeout `D(p, k)` for P25/P50/P75
/// and resilience `R(99, k)` for concurrency 1–3.
pub fn fig7_timeout_resilience(samples: usize, seed: u64) -> Fig7Result {
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point: samples,
        seed,
        ..ProfilerConfig::default()
    })
    .expect("valid profiler configuration");
    let ts = text_to_speech();
    let cores: Vec<u32> = (1000..=3000).step_by(500).collect();

    let profile_c1 = profiler.profile_function(&ts, 1);
    let timeout = [25.0, 50.0, 75.0]
        .iter()
        .map(|&p| {
            let pct = Percentile::new(p).expect("static percentile in range");
            let series = cores
                .iter()
                .map(|&mc| {
                    profile_c1
                        .timeout(
                            pct,
                            janus_simcore::resources::Millicores::new(mc),
                            Percentile::P99,
                        )
                        .as_secs()
                })
                .collect();
            (p, series)
        })
        .collect();

    let resilience = [1u32, 2, 3]
        .iter()
        .map(|&conc| {
            let profile = profiler.profile_function(&ts, conc);
            let series = cores
                .iter()
                .map(|&mc| {
                    profile
                        .resilience(
                            Percentile::P99,
                            janus_simcore::resources::Millicores::new(mc),
                        )
                        .as_secs()
                })
                .collect();
            (conc, series)
        })
        .collect();

    Fig7Result {
        cores,
        timeout,
        resilience,
    }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Figure 7a: timeout of TS (s) vs CPU cores")?;
        write!(f, "{:>10}", "millicores")?;
        for c in &self.cores {
            write!(f, "{c:>8}")?;
        }
        writeln!(f)?;
        for (p, series) in &self.timeout {
            write!(f, "{:>10}", format!("P{p:.0}"))?;
            for v in series {
                write!(f, "{v:>8.3}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "# Figure 7b: resilience of TS (s) vs CPU cores")?;
        for (conc, series) in &self.resilience {
            write!(f, "{:>10}", format!("conc={conc}"))?;
            for v in series {
                write!(f, "{v:>8.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput};

/// `fig7` as a registered [`Experiment`].
pub struct Fig7Experiment;

impl Experiment for Fig7Experiment {
    fn name(&self) -> &str {
        "fig7"
    }

    fn describe(&self) -> &str {
        "Figure 7: timeout and resilience of the TS function"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(fig7_timeout_resilience(
            ctx.profile_samples(),
            ctx.seed_or(0xF7),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes_match_the_paper() {
        let r = fig7_timeout_resilience(400, 9);
        assert_eq!(r.cores, vec![1000, 1500, 2000, 2500, 3000]);
        assert_eq!(r.timeout.len(), 3);
        assert_eq!(r.resilience.len(), 3);

        // 7a: timeout decreases as cores increase, and as the percentile rises.
        for (_, series) in &r.timeout {
            assert!(series.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        }
        let t25 = &r.timeout[0].1;
        let t75 = &r.timeout[2].1;
        assert!(t25[0] > t75[0], "P25 timeout exceeds P75 timeout");

        // 7b: resilience decreases with cores (zero at Kmax) and grows with
        // concurrency.
        for (_, series) in &r.resilience {
            assert!(series.windows(2).all(|w| w[1] <= w[0] + 1e-9));
            assert!(
                series.last().unwrap().abs() < 1e-9,
                "resilience at Kmax is 0"
            );
        }
        let c1 = &r.resilience[0].1;
        let c3 = &r.resilience[2].1;
        assert!(c3[0] > c1[0], "higher concurrency boosts resilience");
        assert!(!format!("{r}").is_empty());
    }
}
