//! Perf trajectory: how fast the serving hot path itself runs.
//!
//! Every other experiment in this module measures *simulated* quantities
//! (latencies, CPU, SLO attainment). This one measures the simulator: it
//! drives a fixed grid of arrival scenarios through the open-loop engine
//! under a constant-cost sizing policy and reports wall-clock events/sec,
//! per-experiment wall time, peak event-queue depth and the number of metric
//! samples recorded through the pre-interned handles. `janus run perf --out
//! BENCH_perf.json` writes the result — the perf baseline every later
//! optimisation PR is measured against.
//!
//! The policy is a [`FixedSizingPolicy`] on purpose: profiling and hint
//! synthesis would dominate the measurement, and the quantity under test is
//! the event loop (queue, pool, cluster, interference model, metrics
//! recording), not policy construction.

use janus_observe::{FlightRecorder, ObserverContext};
use janus_platform::metrics::ServingMetrics;
use janus_platform::openloop::{OpenLoopArena, OpenLoopConfig, OpenLoopSimulation};
use janus_platform::policy::FixedSizingPolicy;
use janus_scenarios::{ScenarioContext, ScenarioRegistry};
use janus_simcore::metrics::{MetricsRegistry, MetricsSnapshot};
use janus_simcore::resources::Millicores;
use janus_simcore::stats::StreamingSummary;
use janus_workloads::apps::PaperApp;
use janus_workloads::request::{GeneratorSource, RequestInput, RequestInputGenerator};
use janus_workloads::workflow::Workflow;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Configuration of one perf-trajectory run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfConfig {
    /// Application whose workflow is served.
    pub app: PaperApp,
    /// Scenario names driven through the grid (resolved from the built-in
    /// scenario registry).
    pub scenarios: Vec<String>,
    /// Requests generated per scenario.
    pub requests: usize,
    /// Long-run mean arrival rate every scenario is normalized to. High on
    /// purpose: the bench wants deep queues and real event pressure, so the
    /// paper-scale grid deliberately runs the single-node fleet in the
    /// *overload* regime (overcommitted placement, near-total SLO
    /// violations) — the committed `BENCH_perf.json` baseline measures
    /// simulator throughput under that pressure, not steady-state serving
    /// quality.
    pub rps: f64,
    /// Fixed per-function CPU allocation of the serving policy.
    pub allocation_mc: u32,
    /// Timed repetitions per scenario; the fastest is reported (standard
    /// min-of-N wall-clock noise rejection).
    pub repetitions: usize,
    /// Request-generation seed.
    pub seed: u64,
}

impl PerfConfig {
    /// Paper-scale grid: every built-in scenario, 5000 requests each.
    pub fn paper_default() -> Self {
        PerfConfig {
            app: PaperApp::IntelligentAssistant,
            scenarios: ScenarioRegistry::with_builtins()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            requests: 5000,
            rps: 20.0,
            allocation_mc: 2000,
            repetitions: 3,
            seed: 7,
        }
    }

    /// Reduced scale for smoke runs and CI (`--quick`): same grid, fewer
    /// requests. A quick cell finishes in ~2 ms, so a single timing is
    /// noise-dominated on a shared CI machine; min-of-5 keeps the
    /// regression gate stable for ~100 ms of extra wall time.
    pub fn quick() -> Self {
        PerfConfig {
            requests: 500,
            repetitions: 5,
            ..Self::paper_default()
        }
    }
}

/// Measurements of one (scenario) grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfCell {
    /// Scenario name the cell ran under.
    pub scenario: String,
    /// Requests served.
    pub requests: usize,
    /// Engine events processed per run.
    pub events: u64,
    /// Fastest wall time across the configured repetitions, in ms —
    /// observers disabled, i.e. the zero-cost path every session pays.
    pub wall_ms: f64,
    /// Events per wall-clock second (from the fastest repetition).
    pub events_per_sec: f64,
    /// Peak event-queue depth of the run.
    pub peak_queue_depth: usize,
    /// Peak number of arrivals resident in memory at once: requests buffered
    /// inside the source plus the one pending arrival in the event queue.
    /// Slice-backed cells sit at ≈ the request count (the slice is already
    /// materialized); the streaming cell stays at ≈ 1 — the bounded-memory
    /// invariant `validate` enforces.
    pub peak_resident_arrivals: usize,
    /// Whether the cell drew arrivals lazily from a generator stream
    /// (`true`) or replayed a materialized slice (`false`). Cells of
    /// different shapes are never compared against each other: the headline
    /// `mean_events_per_sec` summarizes slice-backed cells only, keeping it
    /// comparable with pre-streaming history entries.
    pub streaming: bool,
    /// Fastest wall time with a full flight recorder attached, in ms — the
    /// overhead-guard companion measurement of `wall_ms`.
    pub observed_wall_ms: f64,
    /// Events per wall-clock second with the flight recorder attached.
    pub observed_events_per_sec: f64,
    /// Observation overhead in percent:
    /// `(observed_wall_ms / wall_ms - 1) * 100`. Can dip below zero within
    /// wall-clock noise; must stay finite.
    pub observer_overhead_pct: f64,
}

/// The outcome of a perf-trajectory run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfResult {
    /// Configuration the run used.
    pub config: PerfConfig,
    /// Per-scenario measurements, in `config.scenarios` order.
    pub cells: Vec<PerfCell>,
    /// Sum of the per-cell (fastest-repetition) wall times, in ms.
    pub total_wall_ms: f64,
    /// Sum of per-cell events (one repetition each).
    pub total_events: u64,
    /// Metric samples recorded through the pre-interned handles across the
    /// whole grid (all repetitions).
    pub samples_recorded: u64,
    /// Full metrics snapshot backing `samples_recorded`.
    pub metrics: MetricsSnapshot,
    /// Streaming summary of the per-cell events/sec figures.
    pub events_per_sec_summary: StreamingSummary,
    /// Mean of the per-cell `observer_overhead_pct` figures — what a full
    /// flight recorder costs relative to the observer-off path.
    pub mean_observer_overhead_pct: f64,
}

impl PerfResult {
    /// Events/sec of one scenario's slice-backed cell.
    pub fn events_per_sec(&self, scenario: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && !c.streaming)
            .map(|c| c.events_per_sec)
    }

    /// Structural invariants of a well-formed result.
    pub fn validate(&self) -> Result<(), String> {
        // One slice-backed cell per scenario plus the streaming cell.
        if self.cells.len() != self.config.scenarios.len() + 1 {
            return Err(format!(
                "perf grid produced {} cells for {} scenarios (+1 streaming)",
                self.cells.len(),
                self.config.scenarios.len()
            ));
        }
        match self.cells.iter().filter(|c| c.streaming).count() {
            1 if self.cells.last().is_some_and(|c| c.streaming) => {}
            1 => return Err("the streaming cell must come last".into()),
            n => {
                return Err(format!(
                    "perf grid produced {n} streaming cells, expected 1"
                ))
            }
        }
        for cell in &self.cells {
            if cell.peak_resident_arrivals == 0 {
                return Err(format!(
                    "scenario `{}` reported zero resident arrivals",
                    cell.scenario
                ));
            }
            // The bounded-memory invariant: a streaming cell that buffers
            // more than its single stream's head has lost the lazy pull.
            if cell.streaming && cell.peak_resident_arrivals > 2 {
                return Err(format!(
                    "streaming cell materialized {} arrivals at once; \
                     the lazy pull is broken",
                    cell.peak_resident_arrivals
                ));
            }
        }
        for cell in &self.cells {
            if cell.events == 0 {
                return Err(format!("scenario `{}` processed no events", cell.scenario));
            }
            if !(cell.wall_ms.is_finite() && cell.wall_ms > 0.0) {
                return Err(format!(
                    "scenario `{}` reported non-positive wall time {}",
                    cell.scenario, cell.wall_ms
                ));
            }
            if cell.peak_queue_depth == 0 {
                return Err(format!(
                    "scenario `{}` reported an empty event queue",
                    cell.scenario
                ));
            }
            if !(cell.observed_wall_ms.is_finite() && cell.observed_wall_ms > 0.0) {
                return Err(format!(
                    "scenario `{}` reported non-positive observed wall time {}",
                    cell.scenario, cell.observed_wall_ms
                ));
            }
            if !(cell.observed_events_per_sec.is_finite() && cell.observed_events_per_sec > 0.0) {
                return Err(format!(
                    "scenario `{}` reported a degenerate observed rate {}",
                    cell.scenario, cell.observed_events_per_sec
                ));
            }
            if !cell.observer_overhead_pct.is_finite() {
                return Err(format!(
                    "scenario `{}` reported a non-finite observer overhead",
                    cell.scenario
                ));
            }
        }
        if self.samples_recorded == 0 {
            return Err("perf run recorded no metric samples".into());
        }
        Ok(())
    }
}

impl fmt::Display for PerfResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Perf trajectory: {} open loop, {} requests/scenario @ {} rps, {} mc fixed",
            self.config.app.short_name(),
            self.config.requests,
            self.config.rps,
            self.config.allocation_mc
        )?;
        writeln!(
            f,
            "{:>14} {:>6} {:>9} {:>9} {:>11} {:>13} {:>10} {:>9} {:>13} {:>7}",
            "scenario",
            "mode",
            "requests",
            "events",
            "wall (ms)",
            "events/sec",
            "peak queue",
            "resident",
            "observed/s",
            "ovh %"
        )?;
        for cell in &self.cells {
            writeln!(
                f,
                "{:>14} {:>6} {:>9} {:>9} {:>11.2} {:>13.0} {:>10} {:>9} {:>13.0} {:>7.1}",
                cell.scenario,
                if cell.streaming { "stream" } else { "slice" },
                cell.requests,
                cell.events,
                cell.wall_ms,
                cell.events_per_sec,
                cell.peak_queue_depth,
                cell.peak_resident_arrivals,
                cell.observed_events_per_sec,
                cell.observer_overhead_pct
            )?;
        }
        writeln!(
            f,
            "total: {} events in {:.2} ms wall; {} metric samples recorded; \
             flight-recorder overhead {:.1}% mean",
            self.total_events,
            self.total_wall_ms,
            self.samples_recorded,
            self.mean_observer_overhead_pct
        )?;
        Ok(())
    }
}

/// Smallest wall-clock interval a cell is billed for, in ms (1 µs). Clamping
/// keeps throughput figures finite on `--quick` runs whose measured wall
/// time can round to ~0.
pub const MIN_WALL_MS: f64 = 1e-3;

/// `count` events over `wall_ms` as a per-second rate, guarded against
/// degenerate timings: a ~0 wall time would produce `inf` (and a NaN input
/// NaN), which the hand-rolled JSON writer encodes as `null` — breaking
/// every typed reader of the emitted artefact. Wall time is clamped to
/// [`MIN_WALL_MS`]; non-finite wall times yield a rate of 0.
pub fn rate_per_sec(count: u64, wall_ms: f64) -> f64 {
    if !wall_ms.is_finite() {
        return 0.0;
    }
    count as f64 / (wall_ms.max(MIN_WALL_MS) / 1000.0)
}

/// Run the perf trajectory: serve `config.requests` under every scenario of
/// the grid through one shared open-loop arena and pre-interned metrics,
/// timing each cell with the wall clock.
pub fn perf_trajectory(config: &PerfConfig) -> Result<PerfResult, String> {
    if config.scenarios.is_empty() {
        return Err("perf grid needs at least one scenario".into());
    }
    if config.requests == 0 {
        return Err("perf grid needs at least one request per scenario".into());
    }
    if config.repetitions == 0 {
        return Err("perf grid needs at least one repetition".into());
    }
    let workflow = config.app.workflow();
    let slo = config.app.default_slo(1);
    let registry = ScenarioRegistry::with_builtins();
    // Setup-time interning; the timed loops below never resolve a name.
    let metrics_registry = MetricsRegistry::new();
    let metrics = ServingMetrics::intern(&metrics_registry);
    let mut arena = OpenLoopArena::new();
    let sim = OpenLoopSimulation::new(workflow.clone(), OpenLoopConfig::new(slo));

    let mut cells = Vec::with_capacity(config.scenarios.len());
    let mut events_per_sec_summary = StreamingSummary::new();
    let mut overhead_summary = StreamingSummary::new();
    for scenario in &config.scenarios {
        let ctx = ScenarioContext {
            base_rps: config.rps,
            requests: config.requests,
            seed: config.seed,
        };
        let process = registry
            .build(scenario, &ctx)
            .map_err(|e| format!("scenario `{scenario}`: {e}"))?;
        let mut generator = RequestInputGenerator::with_sampler(config.seed, process.sampler());
        let requests: Vec<RequestInput> = generator.generate(&workflow, config.requests);

        let mut wall_ms = f64::INFINITY;
        let mut observed_wall_ms = f64::INFINITY;
        let mut events = 0;
        let mut peak = 0;
        let mut resident = 0;
        for _ in 0..config.repetitions {
            let mut policy = FixedSizingPolicy::uniform(
                "fixed",
                &workflow,
                Millicores::new(config.allocation_mc),
            )
            .map_err(|e| format!("perf policy: {e}"))?;
            // janus-lint: allow(nondeterminism) — min-of-N wall timing IS the measurement; the simulated report stays seed-pure
            let started = Instant::now();
            let report =
                sim.run_instrumented(&mut policy, &requests, &mut arena, Some(&metrics))?;
            let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
            if report.len() != config.requests {
                return Err(format!(
                    "scenario `{scenario}`: served {} of {} requests",
                    report.len(),
                    config.requests
                ));
            }
            wall_ms = wall_ms.min(elapsed_ms);
            events = arena.events_processed();
            peak = arena.peak_queue_depth();
            resident = arena.peak_resident_arrivals();

            // The overhead-guard companion: the identical run with a full
            // flight recorder attached. Timed under the same min-of-N
            // discipline, so `observed_wall_ms / wall_ms` quantifies what
            // observation costs — and the baseline `wall_ms` above keeps
            // measuring the observer-off path the regression gate watches.
            let mut policy = FixedSizingPolicy::uniform(
                "fixed",
                &workflow,
                Millicores::new(config.allocation_mc),
            )
            .map_err(|e| format!("perf policy: {e}"))?;
            let mut recorder = FlightRecorder::new(&ObserverContext {
                seed: config.seed,
                policy: "fixed".to_string(),
                requests: config.requests,
                zones: 1,
                slo,
            });
            // janus-lint: allow(nondeterminism) — same min-of-N wall timing for the observer-on companion run
            let started = Instant::now();
            let observed = sim.run_traced(
                &mut policy,
                &requests,
                &mut arena,
                Some(&metrics),
                None,
                Some(&mut recorder),
            )?;
            let observed_ms = started.elapsed().as_secs_f64() * 1000.0;
            if observed.len() != config.requests {
                return Err(format!(
                    "scenario `{scenario}` (observed): served {} of {} requests",
                    observed.len(),
                    config.requests
                ));
            }
            observed_wall_ms = observed_wall_ms.min(observed_ms);
        }
        // The same clamp keeps `wall_ms` itself positive, so validate()'s
        // non-positive check cannot reject a legitimately-too-fast cell.
        let wall_ms = wall_ms.max(MIN_WALL_MS);
        let observed_wall_ms = observed_wall_ms.max(MIN_WALL_MS);
        let events_per_sec = rate_per_sec(events, wall_ms);
        events_per_sec_summary.record(events_per_sec);
        let overhead = (observed_wall_ms / wall_ms - 1.0) * 100.0;
        overhead_summary.record(overhead);
        cells.push(PerfCell {
            scenario: scenario.clone(),
            requests: config.requests,
            events,
            wall_ms,
            events_per_sec,
            peak_queue_depth: peak,
            peak_resident_arrivals: resident,
            streaming: false,
            observed_wall_ms,
            observed_events_per_sec: rate_per_sec(events, observed_wall_ms),
            observer_overhead_pct: overhead,
        });
    }
    // The streaming-shape cell: the first grid scenario again, but with
    // arrivals drawn lazily from the generator as simulated time advances
    // instead of replaying a materialized slice. Deliberately excluded from
    // both summaries (it is a different shape of work — per-arrival RNG
    // draws live inside the timed region), so `mean_events_per_sec` stays
    // comparable with pre-streaming history entries; the regression gate
    // compares like against like.
    cells.push(streaming_cell(
        config, &workflow, &registry, &sim, &mut arena,
    )?);

    let snapshot = metrics_registry.snapshot();
    let result = PerfResult {
        config: config.clone(),
        total_wall_ms: cells.iter().map(|c| c.wall_ms).sum(),
        total_events: cells.iter().map(|c| c.events).sum(),
        samples_recorded: snapshot.total_samples(),
        metrics: snapshot,
        events_per_sec_summary,
        mean_observer_overhead_pct: overhead_summary.mean(),
        cells,
    };
    result.validate()?;
    Ok(result)
}

/// Measure the streaming-shape cell: the first grid scenario served through
/// [`GeneratorSource`] — arrivals drawn one at a time as simulated time
/// advances, nothing materialized up front. The generator shares the seed
/// and sampler construction of the slice-backed cell, so it is draw-for-draw
/// the same workload; only the arrival *residency* differs, which is exactly
/// what `peak_resident_arrivals` captures (≈ 1 here vs ≈ `requests` for the
/// slice). Metrics stay detached so the slice-backed cells keep owning the
/// recorded-sample accounting.
fn streaming_cell(
    config: &PerfConfig,
    workflow: &Workflow,
    registry: &ScenarioRegistry,
    sim: &OpenLoopSimulation,
    arena: &mut OpenLoopArena,
) -> Result<PerfCell, String> {
    let scenario = &config.scenarios[0];
    let ctx = ScenarioContext {
        base_rps: config.rps,
        requests: config.requests,
        seed: config.seed,
    };
    let process = registry
        .build(scenario, &ctx)
        .map_err(|e| format!("scenario `{scenario}` (streaming): {e}"))?;
    let mut wall_ms = f64::INFINITY;
    let mut observed_wall_ms = f64::INFINITY;
    let mut events = 0;
    let mut peak = 0;
    let mut resident = 0;
    for _ in 0..config.repetitions {
        let mut policy =
            FixedSizingPolicy::uniform("fixed", workflow, Millicores::new(config.allocation_mc))
                .map_err(|e| format!("perf policy: {e}"))?;
        let mut source = GeneratorSource::new(
            RequestInputGenerator::with_sampler(config.seed, process.sampler()),
            config.requests,
        );
        // janus-lint: allow(nondeterminism) — min-of-N wall timing IS the measurement; the simulated report stays seed-pure
        let started = Instant::now();
        let report = sim.run_from_source(&mut policy, &mut source, arena, None, None, None)?;
        let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        if report.len() != config.requests {
            return Err(format!(
                "scenario `{scenario}` (streaming): served {} of {} requests",
                report.len(),
                config.requests
            ));
        }
        wall_ms = wall_ms.min(elapsed_ms);
        events = arena.events_processed();
        peak = arena.peak_queue_depth();
        resident = arena.peak_resident_arrivals();

        // The observed companion, same discipline as the slice-backed cells.
        let mut policy =
            FixedSizingPolicy::uniform("fixed", workflow, Millicores::new(config.allocation_mc))
                .map_err(|e| format!("perf policy: {e}"))?;
        let mut recorder = FlightRecorder::new(&ObserverContext {
            seed: config.seed,
            policy: "fixed".to_string(),
            requests: config.requests,
            zones: 1,
            slo: config.app.default_slo(1),
        });
        let mut source = GeneratorSource::new(
            RequestInputGenerator::with_sampler(config.seed, process.sampler()),
            config.requests,
        );
        // janus-lint: allow(nondeterminism) — same min-of-N wall timing for the observer-on companion run
        let started = Instant::now();
        let observed = sim.run_from_source(
            &mut policy,
            &mut source,
            arena,
            None,
            None,
            Some(&mut recorder),
        )?;
        let observed_ms = started.elapsed().as_secs_f64() * 1000.0;
        if observed.len() != config.requests {
            return Err(format!(
                "scenario `{scenario}` (streaming, observed): served {} of {} requests",
                observed.len(),
                config.requests
            ));
        }
        observed_wall_ms = observed_wall_ms.min(observed_ms);
    }
    let wall_ms = wall_ms.max(MIN_WALL_MS);
    let observed_wall_ms = observed_wall_ms.max(MIN_WALL_MS);
    Ok(PerfCell {
        scenario: scenario.clone(),
        requests: config.requests,
        events,
        wall_ms,
        events_per_sec: rate_per_sec(events, wall_ms),
        peak_queue_depth: peak,
        peak_resident_arrivals: resident,
        streaming: true,
        observed_wall_ms,
        observed_events_per_sec: rate_per_sec(events, observed_wall_ms),
        observer_overhead_pct: (observed_wall_ms / wall_ms - 1.0) * 100.0,
    })
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput};

/// `perf` as a registered [`Experiment`]: the simulator's events/sec
/// trajectory across the built-in arrival scenarios.
pub struct PerfExperiment;

impl Experiment for PerfExperiment {
    fn name(&self) -> &str {
        "perf"
    }

    fn describe(&self) -> &str {
        "Perf trajectory: simulator events/sec across the built-in arrival scenarios"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(perf_trajectory(
            &ctx.perf_config(),
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PerfConfig {
        PerfConfig {
            scenarios: vec!["poisson".into(), "flash-crowd".into()],
            requests: 60,
            repetitions: 2,
            ..PerfConfig::quick()
        }
    }

    #[test]
    fn perf_trajectory_measures_every_cell() {
        let config = tiny_config();
        let result = perf_trajectory(&config).unwrap();
        result.validate().unwrap();
        // One slice-backed cell per scenario plus the streaming cell.
        assert_eq!(result.cells.len(), 3);
        for cell in &result.cells {
            // 60 arrivals + 3 function completions each (IA workflow).
            assert_eq!(cell.events, 60 * 4);
            assert!(cell.events_per_sec > 0.0);
            assert!(cell.peak_queue_depth >= 1);
        }
        // Slice-backed cells hold the whole request set resident; the
        // streaming cell holds one pending arrival — the bounded-memory
        // invariant of the lazy pull.
        let (stream, slices) = result.cells.split_last().unwrap();
        assert!(stream.streaming);
        assert_eq!(stream.scenario, "poisson");
        assert_eq!(stream.peak_resident_arrivals, 1);
        for cell in slices {
            assert!(!cell.streaming);
            assert_eq!(cell.peak_resident_arrivals, 60);
        }
        // Same seed, same sampler construction: the streaming cell is
        // draw-for-draw the slice-backed poisson cell.
        assert_eq!(stream.events, slices[0].events);
        // The streaming cell stays out of the headline summary, which keeps
        // the regression gate comparing slice-shaped runs against the
        // pre-streaming history.
        assert_eq!(result.events_per_sec_summary.count(), 2);
        // Summed totals cover all three cells.
        assert_eq!(result.total_events, 3 * 60 * 4);
        // 2 scenarios × 2 repetitions × 2 runs (baseline + observed) × 60
        // e2e samples, plus the same again ×3 for per-function samples.
        assert_eq!(
            result.samples_recorded,
            2 * 2 * 2 * 60 + 2 * 2 * 2 * 60 * 3,
            "every run of every repetition records through the handles"
        );
        assert_eq!(
            result
                .metrics
                .counter(janus_platform::metrics::ServingMetrics::REQUESTS),
            2 * 2 * 2 * 60
        );
        // The overhead guard: the observed companion processes the same
        // events, and the disabled-path figures stay the headline numbers.
        for cell in &result.cells {
            assert!(cell.observed_events_per_sec > 0.0);
            assert!(cell.observer_overhead_pct.is_finite());
        }
        assert!(result.mean_observer_overhead_pct.is_finite());
        assert!(result.events_per_sec("poisson").unwrap() > 0.0);
        assert!(result.events_per_sec("tsunami").is_none());
        let shown = format!("{result}");
        assert!(shown.contains("events/sec"));
        assert!(shown.contains("poisson"));
    }

    #[test]
    fn zero_duration_rates_stay_finite_and_json_safe() {
        use crate::experiments::ToJson;
        use janus_json as json;
        // The guard itself: zero, sub-clamp, non-finite.
        assert!(rate_per_sec(1000, 0.0).is_finite());
        assert_eq!(rate_per_sec(1000, 0.0), 1000.0 / (MIN_WALL_MS / 1000.0));
        assert_eq!(rate_per_sec(0, 0.0), 0.0);
        assert!(rate_per_sec(1000, 1e-9).is_finite());
        assert_eq!(rate_per_sec(1000, f64::NAN), 0.0);
        assert_eq!(rate_per_sec(1000, f64::INFINITY), 0.0);
        // A result whose cell measured ~0 wall time still validates and
        // round-trips through the hand-rolled JSON with numeric (non-null)
        // rate fields.
        let mut result = perf_trajectory(&PerfConfig {
            scenarios: vec!["poisson".into()],
            requests: 30,
            repetitions: 1,
            ..PerfConfig::quick()
        })
        .unwrap();
        result.cells[0].wall_ms = MIN_WALL_MS; // what a ~0 timing clamps to
        result.cells[0].events_per_sec = rate_per_sec(result.cells[0].events, 0.0);
        result.validate().unwrap();
        let doc = json::parse(&result.to_json().to_pretty()).unwrap();
        let cell = &doc.require("cells").unwrap().as_array().unwrap()[0];
        let rate = cell.require("events_per_sec").unwrap().as_f64();
        assert!(rate.is_some(), "rate must decode as a number, not null");
        assert!(rate.unwrap().is_finite() && rate.unwrap() > 0.0);
        assert!(cell.require("wall_ms").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn perf_trajectory_rejects_degenerate_grids() {
        let err = perf_trajectory(&PerfConfig {
            scenarios: vec![],
            ..tiny_config()
        })
        .unwrap_err();
        assert!(err.contains("at least one scenario"), "{err}");
        let err = perf_trajectory(&PerfConfig {
            requests: 0,
            ..tiny_config()
        })
        .unwrap_err();
        assert!(err.contains("at least one request"), "{err}");
        let err = perf_trajectory(&PerfConfig {
            repetitions: 0,
            ..tiny_config()
        })
        .unwrap_err();
        assert!(err.contains("repetition"), "{err}");
        let err = perf_trajectory(&PerfConfig {
            scenarios: vec!["tsunami".into()],
            ..tiny_config()
        })
        .unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }
}
