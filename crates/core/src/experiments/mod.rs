//! One runner per table / figure of the paper's evaluation.
//!
//! Every runner returns a plain-data result struct (serde-serialisable) whose
//! `Display` implementation prints the same rows / series the paper reports,
//! so the `janus-bench` binaries and the examples can regenerate each artefact
//! with a single call. The experiment-to-module mapping is documented in
//! `DESIGN.md` (§3, experiment index).

pub mod capacity_sweep;
pub mod metrics;
pub mod motivation;
pub mod overall;
pub mod perf;
pub mod report_json;
pub mod scenario_sweep;
pub mod slo_sweep;
pub mod synthesis;

pub use capacity_sweep::{capacity_sweep, CapacityCell, CapacitySweepConfig, CapacitySweepResult};
pub use metrics::{fig7_timeout_resilience, Fig7Result};
pub use motivation::{
    fig1a_slack_cdf, fig1b_workset_variance, fig1c_interference, fig2_binding_comparison,
    Fig1aResult, Fig1bResult, Fig1cResult, Fig2Result,
};
pub use overall::{fig4_latency_cdfs, fig5_resource_consumption, table1_overall, OverallResult};
pub use perf::{perf_trajectory, rate_per_sec, PerfCell, PerfConfig, PerfResult};
pub use report_json::ToJson;
pub use scenario_sweep::{
    scenario_sweep, scenario_sweep_with, ScenarioCell, ScenarioSweepConfig, ScenarioSweepResult,
};
pub use slo_sweep::{fig9_slo_sweep, Fig9Result};
pub use synthesis::{
    fig6_exploration_cost, fig8_hint_counts, overhead_report, table2_weight_impact, Fig6Result,
    Fig8Result, OverheadResult, Table2Result,
};
