//! The experiment layer: one runner per table / figure of the paper's
//! evaluation, unified behind a declarative API.
//!
//! Every runner returns a plain-data result struct whose `Display`
//! implementation prints the same rows / series the paper reports and whose
//! [`ToJson`] view writes the machine-readable artefact. Three surfaces sit
//! on top:
//!
//! * [`api`] — the object-safe [`Experiment`] trait and the open
//!   [`ExperimentRegistry`] (every runner below is a registered built-in,
//!   runnable by name via `janus run <name>`);
//! * [`spec`] — the serializable [`SweepSpec`]/[`SessionSpec`] data model
//!   (`janus sweep <spec.json>` describes a whole evaluation grid as JSON);
//! * [`sweep`] — the rayon-parallel [`run_sweep`] driver executing those
//!   grids with per-worker arena/metrics reuse.
//!
//! The experiment-to-module mapping is documented in `DESIGN.md` (§3).

pub mod api;
pub mod capacity_sweep;
pub mod chaos_resilience;
pub mod flash_scale;
pub mod metrics;
pub mod motivation;
pub mod overall;
pub mod perf;
pub mod perf_history;
pub mod report_json;
pub mod results_report;
pub mod scenario_sweep;
pub mod slo_sweep;
pub mod spec;
pub mod sweep;
pub mod synthesis;

pub use api::{
    Experiment, ExperimentCtx, ExperimentOutput, ExperimentRegistry, ExperimentResult, Scale,
    TraceSink,
};
pub use capacity_sweep::{
    capacity_sweep, capacity_sweep_observed, CapacityCell, CapacitySweepConfig, CapacitySweepResult,
};
pub use chaos_resilience::{
    chaos_resilience, chaos_resilience_observed, ChaosCell, ChaosResilienceConfig,
    ChaosResilienceResult,
};
pub use flash_scale::{flash_scale_run, FlashScaleConfig, FlashScaleResult};
pub use metrics::{fig7_timeout_resilience, Fig7Result};
pub use motivation::{
    fig1a_slack_cdf, fig1b_workset_variance, fig1c_interference, fig2_binding_comparison,
    Fig1aResult, Fig1bResult, Fig1cResult, Fig2Result,
};
pub use overall::{fig4_latency_cdfs, fig5_resource_consumption, table1_overall, OverallResult};
pub use perf::{perf_trajectory, rate_per_sec, PerfCell, PerfConfig, PerfResult};
pub use perf_history::{
    check_against, comparable_mean, history_with_entry, latest_baseline, today_utc, PerfBaseline,
    HISTORY_EXPERIMENT, REGRESSION_TOLERANCE,
};
pub use report_json::ToJson;
pub use results_report::{ResultsReport, ResultsRow};
pub use scenario_sweep::{
    scenario_sweep, scenario_sweep_with, ScenarioCell, ScenarioSweepConfig, ScenarioSweepResult,
};
pub use slo_sweep::{fig9_slo_sweep, Fig9Result};
pub use spec::{SessionSpec, SweepSpec};
pub use sweep::{
    run_sweep, run_sweep_stored, run_sweep_streaming, PolicyCell, StoreMode, SweepPoint,
    SweepResult, RESULTS_EPOCH,
};
pub use synthesis::{
    fig6_exploration_cost, fig8_hint_counts, overhead_report, table2_weight_impact, Fig6Result,
    Fig8Result, OverheadResult, Table2Result,
};
