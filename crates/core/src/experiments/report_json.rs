//! Machine-readable views of the experiment results.
//!
//! The serde shim carries no serialisation machinery (see `DESIGN.md` §4),
//! so results become JSON the same way the hints bundle does: through the
//! hand-rolled encoder in [`janus_json`]. Every experiment
//! result struct implements [`ToJson`]; the `janus-bench` binaries write the
//! document next to their stdout tables when `--out <path>` is given, which
//! makes performance trajectories diffable and plottable without scraping
//! the tables.

use super::{
    CapacitySweepResult, Fig1aResult, Fig1bResult, Fig1cResult, Fig2Result, Fig6Result, Fig7Result,
    Fig8Result, Fig9Result, FlashScaleResult, OverallResult, OverheadResult, PerfResult,
    ScenarioSweepResult, Table2Result,
};
use janus_json::Value;

/// A machine-readable (JSON) view of an experiment result.
pub trait ToJson {
    /// The result as a JSON document.
    fn to_json(&self) -> Value;
}

fn num(n: f64) -> Value {
    Value::Num(n)
}

fn count(n: usize) -> Value {
    Value::Num(n as f64)
}

fn text(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn nums(values: &[f64]) -> Value {
    Value::Arr(values.iter().copied().map(Value::Num).collect())
}

/// `(x, y)` point series as `[[x, y], …]`.
fn points(series: &[(f64, f64)]) -> Value {
    Value::Arr(
        series
            .iter()
            .map(|&(x, y)| Value::Arr(vec![num(x), num(y)]))
            .collect(),
    )
}

fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl ToJson for Fig1aResult {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("fig1a")),
            ("all_cdf", points(&self.all)),
            ("popular_cdf", points(&self.popular)),
            ("popular_fraction", num(self.popular_fraction)),
            ("frac_all_above_60", num(self.frac_all_above_60)),
            ("frac_popular_below_40", num(self.frac_popular_below_40)),
        ])
    }
}

impl ToJson for Fig1bResult {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("fig1b")),
            (
                "rows",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|(name, p1, p99, ratio)| {
                            obj(vec![
                                ("function", text(name)),
                                ("p1_s", num(*p1)),
                                ("p99_s", num(*p99)),
                                ("ratio", num(*ratio)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for Fig1cResult {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("fig1c")),
            (
                "rows",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|(dim, series)| {
                            obj(vec![
                                ("dimension", text(dim)),
                                ("normalized_latency", nums(series)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for Fig2Result {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("fig2")),
            ("slo_s", num(self.slo_s)),
            ("mean_cpu_reduction", num(self.mean_cpu_reduction)),
            (
                "rows",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|&(id, e_early, e_late, c_early, c_late)| {
                            obj(vec![
                                ("request", count(id as usize)),
                                ("e2e_early_s", num(e_early)),
                                ("e2e_late_s", num(e_late)),
                                ("cpu_early_vs_optimal", num(c_early)),
                                ("cpu_late_vs_optimal", num(c_late)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for OverallResult {
    fn to_json(&self) -> Value {
        let cfg = &self.outcome.config;
        let policies = cfg
            .policies
            .iter()
            .zip(&self.outcome.reports)
            .map(|(kind, report)| {
                obj(vec![
                    ("name", text(kind.name())),
                    ("mean_cpu_millicores", num(report.mean_cpu_millicores())),
                    (
                        "normalized_cpu",
                        self.outcome
                            .normalized_cpu(*kind)
                            .map(num)
                            .unwrap_or(Value::Null),
                    ),
                    (
                        "p99_e2e_s",
                        report
                            .e2e_percentile(99.0)
                            .map(|d| num(d.as_secs()))
                            .unwrap_or(Value::Null),
                    ),
                    ("slo_violation_rate", num(report.slo_violation_rate())),
                ])
            })
            .collect();
        let table1 = self
            .table1_row()
            .into_iter()
            .map(|(name, reduction)| {
                obj(vec![
                    ("baseline", text(&name)),
                    ("janus_reduction_percent", num(reduction)),
                ])
            })
            .collect();
        obj(vec![
            ("experiment", text("overall")),
            ("app", text(self.app_name())),
            ("concurrency", count(cfg.concurrency as usize)),
            ("slo_s", num(cfg.slo.as_secs())),
            ("requests", count(cfg.requests)),
            ("policies", Value::Arr(policies)),
            ("table1", Value::Arr(table1)),
        ])
    }
}

impl ToJson for Fig6Result {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("fig6")),
            ("slos_s", nums(&self.slos_s)),
            ("janus_cpu", nums(&self.janus_cpu)),
            ("janus_plus_cpu", nums(&self.janus_plus_cpu)),
            ("janus_time_s", nums(&self.janus_time_s)),
            ("janus_plus_time_s", nums(&self.janus_plus_time_s)),
        ])
    }
}

impl ToJson for Fig7Result {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("fig7")),
            (
                "cores",
                Value::Arr(self.cores.iter().map(|&c| count(c as usize)).collect()),
            ),
            (
                "timeout",
                Value::Arr(
                    self.timeout
                        .iter()
                        .map(|(pct, series)| {
                            obj(vec![("percentile", num(*pct)), ("seconds", nums(series))])
                        })
                        .collect(),
                ),
            ),
            (
                "resilience",
                Value::Arr(
                    self.resilience
                        .iter()
                        .map(|(conc, series)| {
                            obj(vec![
                                ("concurrency", count(*conc as usize)),
                                ("seconds", nums(series)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for Fig8Result {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("fig8")),
            ("weights", nums(&self.weights)),
            (
                "series",
                Value::Arr(
                    self.series
                        .iter()
                        .map(|(label, hints, compression)| {
                            obj(vec![
                                ("label", text(label)),
                                (
                                    "hints",
                                    Value::Arr(hints.iter().map(|&h| count(h)).collect()),
                                ),
                                ("compression", nums(compression)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for Fig9Result {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("fig9")),
            ("app", text(&self.app)),
            ("slos_s", nums(&self.slos_s)),
            (
                "series",
                Value::Arr(
                    self.series
                        .iter()
                        .map(|(policy, values)| {
                            obj(vec![
                                ("policy", text(policy)),
                                ("normalized_cpu", nums(values)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for Table2Result {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("table2")),
            (
                "rows",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|&(weight, cpu, pct)| {
                            obj(vec![
                                ("weight", num(weight)),
                                ("head_millicores", num(cpu)),
                                ("head_percentile", num(pct)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for OverheadResult {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("overhead")),
            (
                "rows",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|(app, mean_us, max_us, bytes, hints, synth_ms)| {
                            obj(vec![
                                ("app", text(app)),
                                ("mean_decision_us", num(*mean_us)),
                                ("max_decision_us", num(*max_us)),
                                ("bundle_bytes", count(*bytes)),
                                ("condensed_hints", count(*hints)),
                                ("synthesis_ms", num(*synth_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for ScenarioSweepResult {
    fn to_json(&self) -> Value {
        let grid = self
            .cells
            .iter()
            .map(|cell| {
                let policies = cell
                    .report
                    .policies
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("name", text(&p.name)),
                            ("slo_attainment", num(p.slo_attainment())),
                            ("mean_cpu_millicores", num(p.serving.mean_cpu_millicores())),
                            (
                                "p99_e2e_s",
                                p.serving
                                    .e2e_percentile(99.0)
                                    .map(|d| num(d.as_secs()))
                                    .unwrap_or(Value::Null),
                            ),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("scenario", text(&cell.scenario)),
                    ("policies", Value::Arr(policies)),
                ])
            })
            .collect();
        obj(vec![
            ("experiment", text("scenario_sweep")),
            ("app", text(self.config.app.short_name())),
            ("concurrency", count(self.config.concurrency as usize)),
            ("requests", count(self.config.requests)),
            ("base_rps", num(self.config.rps)),
            ("grid", Value::Arr(grid)),
        ])
    }
}

impl ToJson for CapacitySweepResult {
    fn to_json(&self) -> Value {
        let grid = self
            .cells
            .iter()
            .map(|cell| {
                obj(vec![
                    ("scenario", text(&cell.scenario)),
                    ("autoscaler", text(&cell.autoscaler)),
                    ("admission", text(&cell.admission)),
                    ("slo_violation_rate", num(cell.slo_violation_rate)),
                    ("shed_rate", num(cell.shed_rate)),
                    ("admitted", count(cell.admitted)),
                    ("shed", count(cell.shed)),
                    ("node_seconds", num(cell.node_seconds)),
                    ("peak_queue_depth", count(cell.peak_queue_depth)),
                    ("peak_nodes", count(cell.peak_nodes)),
                    ("scale_ups", count(cell.scale_ups)),
                    ("scale_downs", count(cell.scale_downs)),
                    ("wall_ms", num(cell.wall_ms)),
                    ("requests_per_sec", num(cell.requests_per_sec)),
                ])
            })
            .collect();
        obj(vec![
            ("experiment", text("capacity_sweep")),
            ("app", text(self.config.app.short_name())),
            ("policy", text(&self.config.policy)),
            ("requests", count(self.config.requests)),
            ("base_rps", num(self.config.rps)),
            ("initial_nodes", count(self.config.cluster.nodes)),
            (
                "node_capacity_mc",
                count(self.config.cluster.node_capacity.get() as usize),
            ),
            ("seed", count(self.config.seed as usize)),
            ("grid", Value::Arr(grid)),
        ])
    }
}

impl ToJson for PerfResult {
    fn to_json(&self) -> Value {
        let cells = self
            .cells
            .iter()
            .map(|cell| {
                obj(vec![
                    ("scenario", text(&cell.scenario)),
                    ("requests", count(cell.requests)),
                    ("events", count(cell.events as usize)),
                    ("wall_ms", num(cell.wall_ms)),
                    ("events_per_sec", num(cell.events_per_sec)),
                    ("peak_queue_depth", count(cell.peak_queue_depth)),
                    ("peak_resident_arrivals", count(cell.peak_resident_arrivals)),
                    ("streaming", Value::Bool(cell.streaming)),
                    ("observed_wall_ms", num(cell.observed_wall_ms)),
                    ("observed_events_per_sec", num(cell.observed_events_per_sec)),
                    ("observer_overhead_pct", num(cell.observer_overhead_pct)),
                ])
            })
            .collect();
        let counters = self
            .metrics
            .counters
            .iter()
            .map(|(name, value)| {
                obj(vec![
                    ("name", text(name)),
                    ("value", count(*value as usize)),
                ])
            })
            .collect();
        obj(vec![
            ("experiment", text("perf")),
            ("app", text(self.config.app.short_name())),
            ("requests_per_scenario", count(self.config.requests)),
            ("base_rps", num(self.config.rps)),
            ("allocation_mc", count(self.config.allocation_mc as usize)),
            ("repetitions", count(self.config.repetitions)),
            ("seed", count(self.config.seed as usize)),
            ("cells", Value::Arr(cells)),
            ("total_wall_ms", num(self.total_wall_ms)),
            ("total_events", count(self.total_events as usize)),
            ("samples_recorded", count(self.samples_recorded as usize)),
            ("counters", Value::Arr(counters)),
            (
                "mean_events_per_sec",
                num(self.events_per_sec_summary.mean()),
            ),
            (
                "mean_observer_overhead_pct",
                num(self.mean_observer_overhead_pct),
            ),
        ])
    }
}

impl ToJson for FlashScaleResult {
    fn to_json(&self) -> Value {
        obj(vec![
            ("experiment", text("flash_scale")),
            ("app", text(self.config.app.short_name())),
            ("scenario", text(&self.config.scenario)),
            ("streams", count(self.config.streams)),
            ("requests", count(self.config.requests)),
            ("rps_per_stream", num(self.config.rps_per_stream)),
            ("allocation_mc", count(self.config.allocation_mc as usize)),
            ("autoscaler", text(&self.config.autoscaler)),
            ("admission", text(&self.config.admission)),
            ("seed", count(self.config.seed as usize)),
            ("generated", count(self.generated)),
            ("served", count(self.served)),
            ("shed", count(self.shed)),
            ("failed", count(self.failed)),
            ("slo_attainment", num(self.slo_attainment())),
            ("shed_rate", num(self.shed_rate())),
            ("mean_served_e2e_ms", num(self.mean_served_e2e_ms)),
            ("peak_resident_arrivals", count(self.peak_resident_arrivals)),
            ("peak_queue_depth", count(self.peak_queue_depth)),
            ("peak_inflight", count(self.peak_inflight)),
            ("peak_nodes", count(self.peak_nodes)),
            ("events", count(self.events as usize)),
            ("wall_ms", num(self.wall_ms)),
            ("events_per_sec", num(self.events_per_sec)),
            ("arrivals_per_sec", num(self.arrivals_per_sec)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;
    use janus_json as json;

    #[test]
    fn encoded_results_parse_back_and_carry_the_headline_numbers() {
        let fig1a = experiments::fig1a_slack_cdf(5000, 3);
        let doc = json::parse(&fig1a.to_json().to_pretty()).unwrap();
        assert_eq!(doc.require("experiment").unwrap().as_str(), Some("fig1a"));
        let frac = doc.require("popular_fraction").unwrap().as_f64().unwrap();
        assert!((frac - fig1a.popular_fraction).abs() < 1e-9);
        assert_eq!(
            doc.require("all_cdf").unwrap().as_array().unwrap().len(),
            fig1a.all.len()
        );

        let fig1c = experiments::fig1c_interference();
        let doc = json::parse(&fig1c.to_json().to_pretty()).unwrap();
        assert_eq!(
            doc.require("rows").unwrap().as_array().unwrap().len(),
            fig1c.rows.len()
        );
    }

    #[test]
    fn sweep_results_encode_the_full_grid() {
        use janus_workloads::apps::PaperApp;
        let config = experiments::ScenarioSweepConfig {
            scenarios: vec!["poisson".into()],
            policies: vec!["GrandSLAM".into()],
            requests: 20,
            rps: 2.0,
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..experiments::ScenarioSweepConfig::quick(PaperApp::IntelligentAssistant)
        };
        let result = experiments::scenario_sweep(&config).unwrap();
        let doc = json::parse(&result.to_json().to_pretty()).unwrap();
        let grid = doc.require("grid").unwrap().as_array().unwrap();
        assert_eq!(grid.len(), 1);
        assert_eq!(
            grid[0].require("scenario").unwrap().as_str(),
            Some("poisson")
        );
        let policies = grid[0].require("policies").unwrap().as_array().unwrap();
        assert_eq!(
            policies[0].require("name").unwrap().as_str(),
            Some("GrandSLAM")
        );
        let attainment = policies[0]
            .require("slo_attainment")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((0.0..=1.0).contains(&attainment));
    }

    #[test]
    fn perf_results_round_trip_through_the_decoder() {
        let config = experiments::PerfConfig {
            scenarios: vec!["poisson".into(), "bursty".into()],
            requests: 40,
            repetitions: 1,
            ..experiments::PerfConfig::quick()
        };
        let result = experiments::perf_trajectory(&config).unwrap();
        let doc = json::parse(&result.to_json().to_pretty()).unwrap();
        assert_eq!(doc.require("experiment").unwrap().as_str(), Some("perf"));
        let cells = doc.require("cells").unwrap().as_array().unwrap();
        // Two slice-backed scenario cells plus the streaming-shape cell.
        assert_eq!(cells.len(), 3);
        assert_eq!(
            cells[0].require("streaming").unwrap().as_bool(),
            Some(false)
        );
        assert_eq!(cells[2].require("streaming").unwrap().as_bool(), Some(true));
        assert_eq!(
            cells[2].require("peak_resident_arrivals").unwrap().as_f64(),
            Some(1.0)
        );
        for (cell, expected) in cells.iter().zip(&result.cells) {
            assert_eq!(
                cell.require("scenario").unwrap().as_str(),
                Some(expected.scenario.as_str())
            );
            assert!(cell.require("events_per_sec").unwrap().as_f64().unwrap() > 0.0);
            assert_eq!(
                cell.require("events").unwrap().as_f64(),
                Some(expected.events as f64)
            );
        }
        assert_eq!(
            doc.require("samples_recorded").unwrap().as_f64(),
            Some(result.samples_recorded as f64)
        );
        assert!(doc.require("total_wall_ms").unwrap().as_f64().unwrap() > 0.0);
    }
}
