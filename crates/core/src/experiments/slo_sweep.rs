//! Figure 9: resource consumption (normalised by Optimal) across SLOs (§V-G).

use crate::comparison::{self, ComparisonConfig, PolicyKind};
use janus_simcore::time::SimDuration;
use janus_workloads::apps::PaperApp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Figure 9 data for one application: normalised CPU per policy per SLO.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Application short name.
    pub app: String,
    /// SLOs evaluated (seconds).
    pub slos_s: Vec<f64>,
    /// `(policy, normalised CPU per SLO)` series.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Run the SLO sweep for one application: IA over 3–7 s, VA over 1.5–2.0 s in
/// the paper; the SLO list is a parameter so tests can use fewer points.
pub fn fig9_slo_sweep(
    app: PaperApp,
    slos_s: &[f64],
    base: &ComparisonConfig,
) -> Result<Fig9Result, String> {
    let policies = [PolicyKind::Orion, PolicyKind::GrandSlam, PolicyKind::Janus];
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for &slo in slos_s {
        let config = ComparisonConfig {
            app,
            slo: SimDuration::from_secs(slo),
            policies: PolicyKind::SLO_SWEEP.to_vec(),
            ..base.clone()
        };
        let outcome = comparison::run(&config)?;
        for (i, &p) in policies.iter().enumerate() {
            per_policy[i].push(outcome.normalized_cpu(p).unwrap_or(f64::NAN));
        }
    }
    Ok(Fig9Result {
        app: app.short_name().to_string(),
        slos_s: slos_s.to_vec(),
        series: policies
            .iter()
            .zip(per_policy)
            .map(|(p, v)| (p.name().to_string(), v))
            .collect(),
    })
}

impl Fig9Result {
    /// Mean advantage (in normalised-CPU points) of Janus over a baseline
    /// across the sweep.
    pub fn mean_advantage_over(&self, baseline: &str) -> Option<f64> {
        let janus = &self.series.iter().find(|(n, _)| n == "Janus")?.1;
        let base = &self.series.iter().find(|(n, _)| n == baseline)?.1;
        let diffs: Vec<f64> = janus.iter().zip(base).map(|(j, b)| b - j).collect();
        Some(diffs.iter().sum::<f64>() / diffs.len() as f64)
    }
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Figure 9: {} CPU normalised by Optimal vs SLO",
            self.app
        )?;
        write!(f, "{:>12}", "SLO (s)")?;
        for slo in &self.slos_s {
            write!(f, "{slo:>8.1}")?;
        }
        writeln!(f)?;
        for (name, series) in &self.series {
            write!(f, "{name:>12}")?;
            for v in series {
                write!(f, "{v:>8.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput, Scale};

/// The SLO grids of the paper's Figure 9 at each scale.
pub fn fig9_slos(app: PaperApp, scale: Scale) -> &'static [f64] {
    match (app, scale) {
        (PaperApp::IntelligentAssistant, Scale::Paper) => &[3.0, 4.0, 5.0, 6.0, 7.0],
        (PaperApp::IntelligentAssistant, Scale::Quick) => &[3.0, 5.0, 7.0],
        (PaperApp::VideoAnalyze, Scale::Paper) => &[1.5, 1.6, 1.7, 1.8, 1.9, 2.0],
        (PaperApp::VideoAnalyze, Scale::Quick) => &[1.5, 1.75, 2.0],
    }
}

/// `fig9` as a registered [`Experiment`]: the IA and VA sweeps.
pub struct Fig9Experiment;

impl Experiment for Fig9Experiment {
    fn name(&self) -> &str {
        "fig9"
    }

    fn describe(&self) -> &str {
        "Figure 9: resource consumption (normalised by Optimal) under varying SLOs"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let mut out = ExperimentOutput::new();
        for app in PaperApp::ALL {
            let result = fig9_slo_sweep(app, fig9_slos(app, ctx.scale), &ctx.comparison(app, 1))
                .map_err(|e| format!("{}: {e}", app.short_name()))?;
            out.push(app.short_name(), result);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn janus_beats_the_early_binders_across_slos() {
        // 120 requests is noise-dominated (ORION can "beat" the oracle on a
        // lucky draw); 300 keeps the run fast while the ordering is stable.
        let base = ComparisonConfig {
            requests: 300,
            samples_per_point: 300,
            budget_step_ms: 2.0,
            ..ComparisonConfig::paper_default(PaperApp::IntelligentAssistant, 1)
        };
        let result = fig9_slo_sweep(PaperApp::IntelligentAssistant, &[3.0, 3.5], &base).unwrap();
        assert_eq!(result.slos_s, vec![3.0, 3.5]);
        assert_eq!(result.series.len(), 3);
        // Late binding pays off most where the SLO is tight: at the 3 s point
        // Janus must beat ORION outright. At looser SLOs every sizing policy
        // converges towards Kmin, so only require Janus to stay competitive
        // there (the paper-scale sweep, 1000 requests, shows a positive mean
        // advantage throughout).
        let series = |name: &str| {
            &result
                .series
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
                .1
        };
        assert!(
            series("Janus")[0] < series("ORION")[0],
            "tight-SLO advantage"
        );
        assert!(result.mean_advantage_over("ORION").unwrap() > -0.05);
        assert!(result.mean_advantage_over("GrandSLAM").unwrap() > 0.0);
        assert!(result.mean_advantage_over("nonexistent").is_none());
        // Every normalised value is >= 1 (nothing beats the oracle).
        for (_, series) in &result.series {
            assert!(series.iter().all(|&v| v >= 0.99), "series {series:?}");
        }
        assert!(!format!("{result}").is_empty());
    }
}
