//! Capacity sweep: every arrival scenario under every capacity regime.
//!
//! The scenario sweep (PR 2) asks how load *shape* changes serving on a
//! fixed fleet; this sweep asks what elastic capacity buys. Each cell of the
//! (scenario × autoscaler × admission) grid is one [`ServingSession`] run of
//! a single sizing policy on a small spread fleet, and reports the four
//! quantities that summarize a capacity regime: SLO violation rate (over
//! served requests), shed rate, node-seconds consumed (the capacity bill)
//! and peak queue depth (admitted-and-unfinished requests).
//!
//! With the defaults — `{static, utilization} × {admit-all, queue-shed}` —
//! the grid turns the PR 2 flash crowd from a queueing-collapse story into a
//! capacity story: at equal offered load the utilization-threshold
//! autoscaler absorbs the spike that collapses the static fleet, and
//! shedding trades a bounded rejection rate for latency on what it admits.
//! Request conservation (`admitted + shed == generated`) is validated in
//! every cell.

use crate::experiments::perf::{rate_per_sec, MIN_WALL_MS};
use crate::session::{Load, ServingSession, SessionReport};
use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
use janus_simcore::resources::Millicores;
use janus_workloads::apps::PaperApp;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Configuration of one capacity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacitySweepConfig {
    /// Application under test.
    pub app: PaperApp,
    /// Batch size (concurrency) requests are served at.
    pub concurrency: u32,
    /// The one sizing policy every cell serves under (capacity effects are
    /// the variable; sizing is held constant).
    pub policy: String,
    /// Scenario names to sweep (resolved from the scenario registry).
    pub scenarios: Vec<String>,
    /// Autoscaler names to sweep (resolved from the autoscaler registry).
    pub autoscalers: Vec<String>,
    /// Admission-policy names to sweep (resolved from the admission
    /// registry).
    pub admissions: Vec<String>,
    /// Starting cluster layout — small spread nodes, so fleet size drives
    /// co-location and the autoscaler has something to trade off.
    pub cluster: ClusterConfig,
    /// Requests generated per cell.
    pub requests: usize,
    /// Long-run mean arrival rate every scenario is normalized to.
    pub rps: f64,
    /// Request / profiling seed.
    pub seed: u64,
    /// Profiler samples per grid point.
    pub samples_per_point: usize,
    /// Synthesizer budget step in milliseconds.
    pub budget_step_ms: f64,
}

impl CapacitySweepConfig {
    /// The starting fleet capacity experiments grow from: two spread
    /// 8-core nodes (the paper's single 52-core box would never need to
    /// scale at these loads).
    pub fn small_fleet() -> ClusterConfig {
        ClusterConfig {
            nodes: 2,
            node_capacity: Millicores::from_cores(8),
            placement: PlacementPolicy::Spread,
            zones: 1,
        }
    }

    /// Paper-scale sweep: every built-in scenario × {static, utilization} ×
    /// {admit-all, queue-shed} at a load that overloads the starting fleet.
    pub fn paper_default(app: PaperApp) -> Self {
        CapacitySweepConfig {
            app,
            concurrency: 1,
            policy: "GrandSLAM".into(),
            scenarios: vec![
                "poisson".into(),
                "diurnal".into(),
                "bursty".into(),
                "flash-crowd".into(),
                "trace-replay".into(),
            ],
            autoscalers: vec!["static".into(), "utilization".into()],
            admissions: vec!["admit-all".into(), "queue-shed".into()],
            cluster: Self::small_fleet(),
            requests: 400,
            rps: 6.0,
            seed: 7,
            samples_per_point: 1000,
            budget_step_ms: 1.0,
        }
    }

    /// Reduced scale for smoke runs and CI (`--quick`): same regimes, fewer
    /// scenarios, requests and profile samples.
    pub fn quick(app: PaperApp) -> Self {
        CapacitySweepConfig {
            scenarios: vec!["poisson".into(), "flash-crowd".into()],
            requests: 120,
            samples_per_point: 300,
            budget_step_ms: 5.0,
            ..Self::paper_default(app)
        }
    }
}

/// One cell of the capacity grid: one scenario served under one
/// (autoscaler, admission) regime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityCell {
    /// Scenario name the cell ran under.
    pub scenario: String,
    /// Autoscaler name the cell ran under.
    pub autoscaler: String,
    /// Admission-policy name the cell ran under.
    pub admission: String,
    /// SLO violation rate over served requests, in `[0, 1]`.
    pub slo_violation_rate: f64,
    /// Shed fraction of the offered load, in `[0, 1]`.
    pub shed_rate: f64,
    /// Requests admitted and served.
    pub admitted: usize,
    /// Requests shed at arrival.
    pub shed: usize,
    /// Node-seconds consumed (the capacity bill of the cell).
    pub node_seconds: f64,
    /// Peak admitted-and-unfinished request count (serving queue depth).
    pub peak_queue_depth: usize,
    /// Peak non-retired node count.
    pub peak_nodes: usize,
    /// Applied scale-up actions.
    pub scale_ups: usize,
    /// Applied scale-down actions.
    pub scale_downs: usize,
    /// Wall-clock time of the cell, in ms (clamped to stay positive).
    pub wall_ms: f64,
    /// Requests processed per wall-clock second (zero-duration-guarded).
    pub requests_per_sec: f64,
    /// The full session report behind the cell.
    pub report: SessionReport,
}

/// The outcome of a capacity sweep: one invariant-checked cell per
/// (scenario, autoscaler, admission) triple, in configuration order
/// (scenario-major, then autoscaler, then admission).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacitySweepResult {
    /// Configuration the sweep ran with.
    pub config: CapacitySweepConfig,
    /// Grid cells, in configuration order.
    pub cells: Vec<CapacityCell>,
}

impl CapacitySweepResult {
    /// The cell of one (scenario, autoscaler, admission) triple.
    pub fn cell(&self, scenario: &str, autoscaler: &str, admission: &str) -> Option<&CapacityCell> {
        self.cells.iter().find(|c| {
            c.scenario == scenario && c.autoscaler == autoscaler && c.admission == admission
        })
    }

    /// SLO violation rate of one cell, in `[0, 1]`.
    pub fn violation_rate(&self, scenario: &str, autoscaler: &str, admission: &str) -> Option<f64> {
        self.cell(scenario, autoscaler, admission)
            .map(|c| c.slo_violation_rate)
    }

    /// Shed rate of one cell, in `[0, 1]`.
    pub fn shed_rate(&self, scenario: &str, autoscaler: &str, admission: &str) -> Option<f64> {
        self.cell(scenario, autoscaler, admission)
            .map(|c| c.shed_rate)
    }

    /// Cross-cell invariants on top of each session's own validation: the
    /// grid is complete and ordered, requests are conserved in every cell
    /// (`admitted + shed == generated`), and every rate is a valid fraction.
    pub fn validate(&self) -> Result<(), String> {
        let expected = self.config.scenarios.len()
            * self.config.autoscalers.len()
            * self.config.admissions.len();
        if self.cells.len() != expected {
            return Err(format!(
                "capacity sweep produced {} cells for a {}-cell grid",
                self.cells.len(),
                expected
            ));
        }
        let mut i = 0;
        for scenario in &self.config.scenarios {
            for autoscaler in &self.config.autoscalers {
                for admission in &self.config.admissions {
                    let cell = &self.cells[i];
                    i += 1;
                    if &cell.scenario != scenario
                        || &cell.autoscaler != autoscaler
                        || &cell.admission != admission
                    {
                        return Err(format!(
                            "cell order broken: got ({}, {}, {}), expected ({scenario}, \
                             {autoscaler}, {admission})",
                            cell.scenario, cell.autoscaler, cell.admission
                        ));
                    }
                    if cell.admitted + cell.shed != self.config.requests {
                        return Err(format!(
                            "cell ({scenario}, {autoscaler}, {admission}): admitted {} + shed {} \
                             != generated {}",
                            cell.admitted, cell.shed, self.config.requests
                        ));
                    }
                    for (what, rate) in [
                        ("violation rate", cell.slo_violation_rate),
                        ("shed rate", cell.shed_rate),
                    ] {
                        if !(0.0..=1.0).contains(&rate) {
                            return Err(format!(
                                "cell ({scenario}, {autoscaler}, {admission}): {what} {rate} \
                                 outside [0, 1]"
                            ));
                        }
                    }
                    if !(cell.node_seconds.is_finite() && cell.node_seconds > 0.0) {
                        return Err(format!(
                            "cell ({scenario}, {autoscaler}, {admission}): non-positive \
                             node-seconds {}",
                            cell.node_seconds
                        ));
                    }
                    if !(cell.requests_per_sec.is_finite() && cell.wall_ms > 0.0) {
                        return Err(format!(
                            "cell ({scenario}, {autoscaler}, {admission}): degenerate timing \
                             ({} req/s over {} ms)",
                            cell.requests_per_sec, cell.wall_ms
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for CapacitySweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Capacity sweep: {} under `{}`, {} requests/cell @ {} rps on {}x{}mc ({:?})",
            self.config.app.short_name(),
            self.config.policy,
            self.config.requests,
            self.config.rps,
            self.config.cluster.nodes,
            self.config.cluster.node_capacity.get(),
            self.config.cluster.placement,
        )?;
        writeln!(
            f,
            "{:>14} {:>12} {:>11} {:>10} {:>8} {:>12} {:>11} {:>11}",
            "scenario",
            "autoscaler",
            "admission",
            "viol rate",
            "shed",
            "node-sec",
            "peak queue",
            "peak nodes"
        )?;
        for cell in &self.cells {
            writeln!(
                f,
                "{:>14} {:>12} {:>11} {:>9.1}% {:>7.1}% {:>12.1} {:>11} {:>11}",
                cell.scenario,
                cell.autoscaler,
                cell.admission,
                cell.slo_violation_rate * 100.0,
                cell.shed_rate * 100.0,
                cell.node_seconds,
                cell.peak_queue_depth,
                cell.peak_nodes
            )?;
        }
        Ok(())
    }
}

/// Run the capacity sweep: one single-policy session per (scenario,
/// autoscaler, admission) cell, fanned out across threads. Deterministic in
/// the seed; results come back in configuration order.
pub fn capacity_sweep(config: &CapacitySweepConfig) -> Result<CapacitySweepResult, String> {
    capacity_sweep_observed(config, None)
}

/// [`capacity_sweep`] with an observer attached to every cell's session
/// (`janus run capacity --trace`): each cell's [`SessionReport`] then
/// carries a flight report, and the per-cell traces can be collected via
/// [`SessionReport::trace`](crate::session::SessionReport::trace).
pub fn capacity_sweep_observed(
    config: &CapacitySweepConfig,
    observer: Option<&str>,
) -> Result<CapacitySweepResult, String> {
    if config.scenarios.is_empty() {
        return Err("capacity sweep needs at least one scenario".into());
    }
    if config.autoscalers.is_empty() || config.admissions.is_empty() {
        return Err("capacity sweep needs at least one autoscaler and one admission policy".into());
    }
    let mut grid = Vec::new();
    for scenario in &config.scenarios {
        for autoscaler in &config.autoscalers {
            for admission in &config.admissions {
                grid.push((scenario.clone(), autoscaler.clone(), admission.clone()));
            }
        }
    }
    let cells: Vec<Result<CapacityCell, String>> = grid
        .into_par_iter()
        .map(|(scenario, autoscaler, admission)| {
            // janus-lint: allow(nondeterminism) — wall-clock cost of the cell, reported as metadata; cell results are seed-pure
            let started = Instant::now();
            let mut builder = ServingSession::builder()
                .app(config.app)
                .concurrency(config.concurrency)
                .policy(&config.policy)
                .load(Load::Open {
                    requests: config.requests,
                    rps: config.rps,
                })
                .cluster(config.cluster.clone())
                .scenario(&scenario)
                .autoscaler(&autoscaler)
                .admission(&admission)
                .seed(config.seed)
                .samples_per_point(config.samples_per_point)
                .budget_step_ms(config.budget_step_ms);
            if let Some(observer) = observer {
                builder = builder.observe(observer);
            }
            let report = builder
                .run()
                .map_err(|e| format!("cell ({scenario}, {autoscaler}, {admission}): {e}"))?;
            let wall_ms = (started.elapsed().as_secs_f64() * 1000.0).max(MIN_WALL_MS);
            let serving = report.serving(&config.policy).ok_or_else(|| {
                format!("policy `{}` missing from its own session", config.policy)
            })?;
            let capacity = serving.capacity.clone().ok_or_else(|| {
                format!("cell ({scenario}, {autoscaler}, {admission}): no capacity report")
            })?;
            Ok(CapacityCell {
                scenario,
                autoscaler,
                admission,
                slo_violation_rate: serving.slo_violation_rate(),
                shed_rate: capacity.shed_rate(),
                admitted: capacity.admitted,
                shed: capacity.shed,
                node_seconds: capacity.node_seconds,
                peak_queue_depth: capacity.peak_inflight,
                peak_nodes: capacity.peak_nodes,
                scale_ups: capacity.scale_ups,
                scale_downs: capacity.scale_downs,
                wall_ms,
                requests_per_sec: rate_per_sec(config.requests as u64, wall_ms),
                report,
            })
        })
        .collect();
    let cells = cells.into_iter().collect::<Result<Vec<_>, _>>()?;
    let result = CapacitySweepResult {
        config: config.clone(),
        cells,
    };
    result.validate()?;
    Ok(result)
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput};

/// `capacity` as a registered [`Experiment`]: the IA scenario × autoscaler ×
/// admission grid at the configured scale.
pub struct CapacitySweepExperiment;

impl Experiment for CapacitySweepExperiment {
    fn name(&self) -> &str {
        "capacity"
    }

    fn describe(&self) -> &str {
        "Capacity sweep: every arrival scenario under every capacity regime"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let config = ctx.capacity_sweep(PaperApp::IntelligentAssistant);
        let result = capacity_sweep_observed(&config, ctx.observer_name())?;
        // Cells all serve the same policy, so cell traces are qualified with
        // their grid coordinates before they share one artefact.
        for cell in &result.cells {
            if let Some(trace) = cell.report.trace() {
                let at = format!("{}/{}/{}", cell.scenario, cell.autoscaler, cell.admission);
                ctx.append_trace(&trace, Some(&at))?;
            }
        }
        Ok(ExperimentOutput::single(result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CapacitySweepConfig {
        CapacitySweepConfig {
            scenarios: vec!["flash-crowd".into()],
            requests: 90,
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..CapacitySweepConfig::quick(PaperApp::IntelligentAssistant)
        }
    }

    #[test]
    fn autoscaling_beats_the_static_fleet_under_the_flash_crowd() {
        // The acceptance criterion of the elastic-capacity PR: at equal
        // offered load, the utilization-threshold autoscaler demonstrably
        // reduces the SLO violation rate versus the static cluster, and
        // requests are conserved in every cell.
        let result = capacity_sweep(&tiny_config()).unwrap();
        result.validate().unwrap();
        assert_eq!(result.cells.len(), 4);
        let static_rate = result
            .violation_rate("flash-crowd", "static", "admit-all")
            .unwrap();
        let scaled_rate = result
            .violation_rate("flash-crowd", "utilization", "admit-all")
            .unwrap();
        assert!(
            scaled_rate < static_rate,
            "autoscaled violation rate {scaled_rate} must beat static {static_rate}"
        );
        let scaled = result
            .cell("flash-crowd", "utilization", "admit-all")
            .unwrap();
        assert!(scaled.scale_ups > 0, "the spike must trigger scale-ups");
        assert!(scaled.peak_nodes > result.config.cluster.nodes);
        // Both regimes bill real capacity. (No ordering assertion: the
        // static fleet *collapses* under the spike — its run stretches over
        // a longer simulated span, so two slow nodes can out-bill a larger
        // fleet that finishes quickly.)
        let static_cell = result.cell("flash-crowd", "static", "admit-all").unwrap();
        assert!(scaled.node_seconds > 0.0 && static_cell.node_seconds > 0.0);
        // Shedding sheds under overload, and never on the admit-all column.
        assert_eq!(static_cell.shed, 0);
        let shed_cell = result.cell("flash-crowd", "static", "queue-shed").unwrap();
        assert!(
            shed_cell.shed > 0,
            "queue-shed must shed during the static-fleet spike"
        );
        for cell in &result.cells {
            assert_eq!(cell.admitted + cell.shed, result.config.requests);
            assert!(cell.requests_per_sec > 0.0);
        }
        let shown = format!("{result}");
        assert!(shown.contains("viol rate"));
        assert!(shown.contains("flash-crowd"));
    }

    #[test]
    fn traced_capacity_runs_fill_the_sink_with_qualified_cells() {
        use crate::experiments::api::{Experiment, Scale, TraceSink};
        use janus_observe::TraceReport;

        let sink = TraceSink::new();
        assert!(sink.is_empty());
        let ctx = ExperimentCtx::new(Scale::Quick)
            .with_seed(Some(7))
            .with_trace(sink.clone());
        assert_eq!(ctx.observer_name(), Some("flight-recorder"));
        CapacitySweepExperiment.run(&ctx).unwrap();
        let trace = sink.take();
        assert!(sink.is_empty(), "take drains the sink");
        let report = TraceReport::from_jsonl(&trace).unwrap();
        // One qualified label per grid cell: 2 scenarios x 2 x 2 at --quick.
        assert_eq!(report.policies.len(), 8);
        let labels: Vec<&str> = report.policies.iter().map(|p| p.policy.as_str()).collect();
        assert!(
            labels.contains(&"GrandSLAM@flash-crowd/static/admit-all"),
            "{labels:?}"
        );
        for policy in &report.policies {
            assert!(
                policy.spans.arrivals > 0,
                "{}: empty cell trace",
                policy.policy
            );
            assert!(
                !policy.time_series.points.is_empty(),
                "{}: no telemetry ticks",
                policy.policy
            );
        }
        // Same seed, same sink contents, byte for byte.
        let again = TraceSink::new();
        CapacitySweepExperiment
            .run(&ctx.clone().with_trace(again.clone()))
            .unwrap();
        assert_eq!(again.take(), trace);
    }

    #[test]
    fn capacity_sweep_is_deterministic_and_rejects_bad_grids() {
        let config = CapacitySweepConfig {
            scenarios: vec!["poisson".into()],
            autoscalers: vec!["queue-depth".into()],
            admissions: vec!["token-bucket".into()],
            requests: 50,
            ..tiny_config()
        };
        let a = capacity_sweep(&config).unwrap();
        let b = capacity_sweep(&config).unwrap();
        let serving =
            |r: &CapacitySweepResult| r.cells[0].report.serving("GrandSLAM").unwrap().clone();
        assert_eq!(serving(&a), serving(&b));
        assert_eq!(
            serving(&a).capacity.unwrap().events,
            serving(&b).capacity.unwrap().events
        );
        let err = capacity_sweep(&CapacitySweepConfig {
            scenarios: vec![],
            ..config.clone()
        })
        .unwrap_err();
        assert!(err.contains("at least one scenario"), "{err}");
        let err = capacity_sweep(&CapacitySweepConfig {
            autoscalers: vec![],
            ..config.clone()
        })
        .unwrap_err();
        assert!(err.contains("at least one autoscaler"), "{err}");
        let err = capacity_sweep(&CapacitySweepConfig {
            autoscalers: vec!["hypergrowth".into()],
            ..config
        })
        .unwrap_err();
        assert!(err.contains("unknown autoscaler"), "{err}");
    }
}
