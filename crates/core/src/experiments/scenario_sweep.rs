//! Scenario sweep: every policy under every load shape, in parallel.
//!
//! The paper evaluates its policies under a single load shape; the sweep
//! generalizes that into a (scenario × policy) grid. Each grid column is one
//! [`ServingSession`] — all policies of a column replay the *same* request
//! set under the same arrival process (paired comparison), and the session
//! checks its structural invariants before returning. Columns are
//! independent, so they fan out across threads (rayon); results come back in
//! configuration order regardless of scheduling.
//!
//! Because every built-in scenario is normalized to the sweep's base rate
//! (see `janus-scenarios`), differences across a row isolate the effect of
//! load *shape* — burstiness, spikes, trace dynamics — from offered load.

use crate::session::{Load, ServingSession, SessionReport};
use janus_scenarios::ScenarioRegistry;
use janus_simcore::stats::StreamingSummary;
use janus_workloads::apps::PaperApp;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of one scenario sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSweepConfig {
    /// Application under test.
    pub app: PaperApp,
    /// Batch size (concurrency) requests are served at.
    pub concurrency: u32,
    /// Scenario names to sweep (resolved from the scenario registry).
    pub scenarios: Vec<String>,
    /// Policy names to serve under each scenario (resolved from the policy
    /// registry).
    pub policies: Vec<String>,
    /// Requests generated per (scenario, policy) cell.
    pub requests: usize,
    /// Long-run mean arrival rate every scenario is normalized to.
    pub rps: f64,
    /// Request / profiling seed.
    pub seed: u64,
    /// Profiler samples per grid point.
    pub samples_per_point: usize,
    /// Synthesizer budget step in milliseconds.
    pub budget_step_ms: f64,
}

impl ScenarioSweepConfig {
    /// Paper-scale sweep: the five built-in scenarios × four representative
    /// policies at a load that produces real queueing.
    pub fn paper_default(app: PaperApp) -> Self {
        ScenarioSweepConfig {
            app,
            concurrency: 1,
            scenarios: ScenarioRegistry::with_builtins()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            policies: vec![
                "ORION".into(),
                "GrandSLAM".into(),
                "Janus".into(),
                "Janus+".into(),
            ],
            requests: 500,
            rps: 1.0,
            seed: 7,
            samples_per_point: 1000,
            budget_step_ms: 1.0,
        }
    }

    /// Reduced scale for smoke runs and CI (`--quick`): same grid, fewer
    /// requests and profile samples.
    pub fn quick(app: PaperApp) -> Self {
        ScenarioSweepConfig {
            requests: 120,
            samples_per_point: 300,
            budget_step_ms: 5.0,
            ..Self::paper_default(app)
        }
    }
}

/// One column of the sweep grid: every configured policy served under one
/// scenario, paired on an identical request set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// Scenario name the column ran under.
    pub scenario: String,
    /// The session report (one `PolicyReport` per policy, invariant-checked).
    pub report: SessionReport,
}

/// The outcome of a scenario sweep: one invariant-checked session per
/// scenario, in configuration order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSweepResult {
    /// Configuration the sweep ran with.
    pub config: ScenarioSweepConfig,
    /// Per-scenario sessions, in `config.scenarios` order.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioSweepResult {
    /// The session of one scenario.
    pub fn cell(&self, scenario: &str) -> Option<&SessionReport> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario)
            .map(|c| &c.report)
    }

    /// SLO attainment of one (scenario, policy) grid cell, in `[0, 1]`.
    pub fn attainment(&self, scenario: &str, policy: &str) -> Option<f64> {
        self.cell(scenario)?.slo_attainment(policy)
    }

    /// Mean per-request CPU (millicores) of one (scenario, policy) cell.
    pub fn mean_cpu(&self, scenario: &str, policy: &str) -> Option<f64> {
        self.cell(scenario)?.mean_cpu_millicores(policy)
    }

    /// Pooled end-to-end latency statistics of one policy across **every**
    /// scenario of the sweep, folded through [`StreamingSummary::merge`] —
    /// the whole-sweep tail without re-buffering or re-sorting the combined
    /// per-request sample set. `None` if the policy ran in no cell.
    pub fn pooled_e2e_streaming(&self, policy: &str) -> Option<StreamingSummary> {
        let mut pooled = StreamingSummary::new();
        for cell in &self.cells {
            // Cells missing the policy (possible in hand-assembled partial
            // sweeps) are skipped rather than zeroing out the whole pool.
            if let Some(serving) = cell.report.serving(policy) {
                pooled.merge(&serving.e2e_streaming());
            }
        }
        (!pooled.is_empty()).then_some(pooled)
    }

    /// Cross-cell invariants on top of each session's own validation: the
    /// grid is complete (every scenario ran every policy, in order) and each
    /// cell served the configured number of requests.
    pub fn validate(&self) -> Result<(), String> {
        if self.cells.len() != self.config.scenarios.len() {
            return Err(format!(
                "sweep produced {} cells for {} scenarios",
                self.cells.len(),
                self.config.scenarios.len()
            ));
        }
        for (cell, expected) in self.cells.iter().zip(&self.config.scenarios) {
            if &cell.scenario != expected {
                return Err(format!(
                    "cell order broken: got `{}`, expected `{expected}`",
                    cell.scenario
                ));
            }
            let names: Vec<&str> = cell.report.names();
            if names
                != self
                    .config
                    .policies
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
            {
                return Err(format!(
                    "scenario `{}` ran policies {names:?}, expected {:?}",
                    cell.scenario, self.config.policies
                ));
            }
            for policy in &cell.report.policies {
                if policy.serving.len() != self.config.requests {
                    return Err(format!(
                        "scenario `{}` / policy `{}`: served {} of {} requests",
                        cell.scenario,
                        policy.name,
                        policy.serving.len(),
                        self.config.requests
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ScenarioSweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Scenario sweep: {} @ concurrency {} ({} requests per cell, base {} rps)",
            self.config.app.short_name(),
            self.config.concurrency,
            self.config.requests,
            self.config.rps
        )?;
        writeln!(f, "## SLO attainment (%)")?;
        write!(f, "{:>14}", "scenario")?;
        for policy in &self.config.policies {
            write!(f, " {policy:>12}")?;
        }
        writeln!(f)?;
        for cell in &self.cells {
            write!(f, "{:>14}", cell.scenario)?;
            for policy in &self.config.policies {
                match cell.report.slo_attainment(policy) {
                    Some(a) => write!(f, " {:>11.1}%", a * 100.0)?,
                    None => write!(f, " {:>12}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(f, "## Mean CPU per request (millicores)")?;
        write!(f, "{:>14}", "scenario")?;
        for policy in &self.config.policies {
            write!(f, " {policy:>12}")?;
        }
        writeln!(f)?;
        for cell in &self.cells {
            write!(f, "{:>14}", cell.scenario)?;
            for policy in &self.config.policies {
                match cell.report.mean_cpu_millicores(policy) {
                    Some(cpu) => write!(f, " {cpu:>12.1}")?,
                    None => write!(f, " {:>12}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "## Pooled E2E latency across all scenarios (ms, streaming)"
        )?;
        writeln!(
            f,
            "{:>14} {:>9} {:>10} {:>10} {:>10}",
            "policy", "samples", "mean", "~P50", "~P99"
        )?;
        for policy in &self.config.policies {
            match self.pooled_e2e_streaming(policy).and_then(|s| s.summary()) {
                Some(s) => writeln!(
                    f,
                    "{:>14} {:>9} {:>10.1} {:>10.1} {:>10.1}",
                    policy, s.count, s.mean, s.p50, s.p99
                )?,
                None => writeln!(f, "{policy:>14} {:>9}", "-")?,
            }
        }
        Ok(())
    }
}

/// Run the sweep against the built-in scenario registry.
pub fn scenario_sweep(config: &ScenarioSweepConfig) -> Result<ScenarioSweepResult, String> {
    scenario_sweep_with(&ScenarioRegistry::with_builtins(), config)
}

/// Run the sweep against a custom scenario registry (for sweeps over
/// downstream-registered arrival processes).
pub fn scenario_sweep_with(
    registry: &ScenarioRegistry,
    config: &ScenarioSweepConfig,
) -> Result<ScenarioSweepResult, String> {
    if config.scenarios.is_empty() {
        return Err("sweep needs at least one scenario".into());
    }
    // One session per scenario, fanned out across threads. Sessions are
    // seed-deterministic, so the parallel sweep is reproducible and its
    // result order follows configuration order (the shim's parallel map is
    // order-preserving).
    let cells: Vec<Result<ScenarioCell, String>> = config
        .scenarios
        .clone()
        .into_par_iter()
        .map(|scenario| {
            let report = ServingSession::builder()
                .app(config.app)
                .concurrency(config.concurrency)
                .policies(config.policies.clone())
                .load(Load::Open {
                    requests: config.requests,
                    rps: config.rps,
                })
                .scenario_registry(registry.clone())
                .scenario(&scenario)
                .seed(config.seed)
                .samples_per_point(config.samples_per_point)
                .budget_step_ms(config.budget_step_ms)
                .run()
                .map_err(|e| format!("scenario `{scenario}`: {e}"))?;
            Ok(ScenarioCell { scenario, report })
        })
        .collect();
    let cells = cells.into_iter().collect::<Result<Vec<_>, _>>()?;
    let result = ScenarioSweepResult {
        config: config.clone(),
        cells,
    };
    result.validate()?;
    Ok(result)
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput};

/// `scenarios` as a registered [`Experiment`]: the IA scenario × policy
/// sweep at the configured scale.
pub struct ScenarioSweepExperiment;

impl Experiment for ScenarioSweepExperiment {
    fn name(&self) -> &str {
        "scenarios"
    }

    fn describe(&self) -> &str {
        "Scenario sweep: every policy under every built-in load shape"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(scenario_sweep(
            &ctx.scenario_sweep(PaperApp::IntelligentAssistant),
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid_with_paired_invariant_checked_cells() {
        let config = ScenarioSweepConfig {
            scenarios: vec!["poisson".into(), "flash-crowd".into(), "bursty".into()],
            policies: vec!["GrandSLAM".into(), "Janus".into()],
            requests: 40,
            rps: 2.0,
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..ScenarioSweepConfig::quick(PaperApp::IntelligentAssistant)
        };
        let result = scenario_sweep(&config).unwrap();
        assert_eq!(result.cells.len(), 3);
        result.validate().unwrap();
        for scenario in ["poisson", "flash-crowd", "bursty"] {
            for policy in ["GrandSLAM", "Janus"] {
                let attainment = result.attainment(scenario, policy).unwrap();
                assert!((0.0..=1.0).contains(&attainment), "{scenario}/{policy}");
                assert!(result.mean_cpu(scenario, policy).unwrap() > 0.0);
            }
            assert_eq!(
                result.cell(scenario).unwrap().scenario.as_deref(),
                Some(scenario)
            );
        }
        // Shape matters: at least one scenario serves differently from the
        // constant-rate baseline.
        let p = result.cell("poisson").unwrap().serving("Janus").unwrap();
        let b = result.cell("bursty").unwrap().serving("Janus").unwrap();
        assert_ne!(p, b);
        let shown = format!("{result}");
        assert!(shown.contains("SLO attainment"));
        assert!(shown.contains("Pooled E2E latency"));
        // The pooled streaming view folds every cell of the row without
        // re-buffering: 3 scenarios × 40 requests, mean equal to the exact
        // pooled mean.
        let pooled = result.pooled_e2e_streaming("Janus").unwrap();
        assert_eq!(pooled.count(), 3 * 40);
        let exact_mean: f64 = result
            .cells
            .iter()
            .map(|c| c.report.serving("Janus").unwrap().e2e_summary().unwrap())
            .map(|s| s.mean * s.count as f64)
            .sum::<f64>()
            / pooled.count() as f64;
        assert!((pooled.mean() - exact_mean).abs() < 1e-9);
        assert!(result.pooled_e2e_streaming("ORION").is_none());
    }

    #[test]
    fn sweep_is_deterministic_and_rejects_bad_grids() {
        let config = ScenarioSweepConfig {
            scenarios: vec!["diurnal".into()],
            policies: vec!["GrandSLAM".into()],
            requests: 25,
            rps: 2.0,
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..ScenarioSweepConfig::quick(PaperApp::IntelligentAssistant)
        };
        let a = scenario_sweep(&config).unwrap();
        let b = scenario_sweep(&config).unwrap();
        assert_eq!(
            a.cell("diurnal").unwrap().serving("GrandSLAM"),
            b.cell("diurnal").unwrap().serving("GrandSLAM")
        );
        let err = scenario_sweep(&ScenarioSweepConfig {
            scenarios: vec![],
            ..config.clone()
        })
        .unwrap_err();
        assert!(err.contains("at least one scenario"), "{err}");
        let err = scenario_sweep(&ScenarioSweepConfig {
            scenarios: vec!["tsunami".into()],
            ..config
        })
        .unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }
}
