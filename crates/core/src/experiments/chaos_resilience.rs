//! Chaos resilience: which capacity regime degrades most gracefully when a
//! zone dies mid flash-crowd.
//!
//! The capacity sweep asks what elasticity buys under load *shape*; this
//! experiment asks what it buys under *failure*. Every cell of the
//! (autoscaler × admission) grid serves the same flash-crowd request set on
//! a multi-zone spread fleet while the configured fault injector (default
//! `zone-outage`) kills a whole zone partway through the spike — the worst
//! correlated failure the topology admits. Both sizing policies run paired
//! inside each cell, so the grid separates three effects that a single run
//! confounds: what the sizing policy contributes, what the autoscaler
//! recovers, and what admission control protects.
//!
//! Each row reports the graceful-degradation quantities: SLO attainment over
//! what was served, shed and failed counts, fault-triggered retries,
//! node-seconds billed and nodes lost. Conservation
//! (`admitted + shed == generated`, `admitted == served + failed`) is
//! validated in every cell, and the whole grid is bit-reproducible in the
//! seed — the fault schedule is part of the replayed experiment, not
//! ambient randomness.

use crate::experiments::perf::{rate_per_sec, MIN_WALL_MS};
use crate::experiments::ToJson;
use crate::session::{Load, ServingSession, SessionReport};
use janus_json::Value;
use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
use janus_simcore::resources::Millicores;
use janus_workloads::apps::PaperApp;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Configuration of one chaos-resilience grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosResilienceConfig {
    /// Application under test.
    pub app: PaperApp,
    /// Batch size (concurrency) requests are served at.
    pub concurrency: u32,
    /// Sizing policies served paired in every cell.
    pub policies: Vec<String>,
    /// Fault injector every cell runs under.
    pub fault: String,
    /// Arrival scenario every cell runs under.
    pub scenario: String,
    /// Autoscaler names to sweep.
    pub autoscalers: Vec<String>,
    /// Admission-policy names to sweep.
    pub admissions: Vec<String>,
    /// Starting fleet: multi-zone spread nodes, so a zone outage is a
    /// correlated loss the survivors can (or cannot) absorb.
    pub cluster: ClusterConfig,
    /// Requests generated per cell per policy.
    pub requests: usize,
    /// Long-run mean arrival rate.
    pub rps: f64,
    /// Request / profiling / fault seed.
    pub seed: u64,
    /// Profiler samples per grid point.
    pub samples_per_point: usize,
    /// Synthesizer budget step in milliseconds.
    pub budget_step_ms: f64,
}

impl ChaosResilienceConfig {
    /// The default fleet: four spread 8-core nodes across two zones, so the
    /// outage halves capacity in one event.
    pub fn two_zone_fleet() -> ClusterConfig {
        ClusterConfig {
            nodes: 4,
            node_capacity: Millicores::from_cores(8),
            placement: PlacementPolicy::Spread,
            zones: 2,
        }
    }

    /// Paper-scale grid: {static, utilization} × {admit-all, queue-shed}
    /// under a flash crowd with a mid-run zone outage.
    pub fn paper_default(app: PaperApp) -> Self {
        ChaosResilienceConfig {
            app,
            concurrency: 1,
            policies: vec!["GrandSLAM".into(), "Janus".into()],
            fault: "zone-outage".into(),
            scenario: "flash-crowd".into(),
            autoscalers: vec!["static".into(), "utilization".into()],
            admissions: vec!["admit-all".into(), "queue-shed".into()],
            cluster: Self::two_zone_fleet(),
            requests: 300,
            rps: 6.0,
            seed: 7,
            samples_per_point: 1000,
            budget_step_ms: 1.0,
        }
    }

    /// Reduced scale for smoke runs and CI (`--quick`).
    pub fn quick(app: PaperApp) -> Self {
        ChaosResilienceConfig {
            requests: 90,
            samples_per_point: 300,
            budget_step_ms: 5.0,
            ..Self::paper_default(app)
        }
    }
}

/// One row of the grid: one sizing policy under one (autoscaler, admission)
/// regime, with the fault applied.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Autoscaler name the cell ran under.
    pub autoscaler: String,
    /// Admission-policy name the cell ran under.
    pub admission: String,
    /// Sizing-policy name of this row.
    pub policy: String,
    /// SLO attainment over served requests, in `[0, 1]`.
    pub slo_attainment: f64,
    /// Requests admitted and served to completion.
    pub served: usize,
    /// Requests shed at arrival.
    pub shed: usize,
    /// Admitted requests lost to the fault (retry budget exhausted).
    pub failed: usize,
    /// Fault-interrupted requests that re-enqueued and started over.
    pub retried: usize,
    /// Nodes force-killed by the fault.
    pub nodes_lost: usize,
    /// Node-seconds billed (the capacity bill of surviving the fault).
    pub node_seconds: f64,
    /// Peak non-retired node count.
    pub peak_nodes: usize,
}

/// The outcome of a chaos-resilience run: one row per (autoscaler,
/// admission, policy), in configuration order, plus the full session
/// reports behind them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosResilienceResult {
    /// Configuration the grid ran with.
    pub config: ChaosResilienceConfig,
    /// Grid rows, autoscaler-major, then admission, then policy.
    pub cells: Vec<ChaosCell>,
    /// One session report per (autoscaler, admission) cell, in grid order.
    pub reports: Vec<SessionReport>,
    /// Wall-clock time of the whole grid, in ms (clamped to stay positive).
    pub wall_ms: f64,
    /// Cells processed per wall-clock second.
    pub cells_per_sec: f64,
}

impl ChaosResilienceResult {
    /// The row of one (autoscaler, admission, policy) triple.
    pub fn cell(&self, autoscaler: &str, admission: &str, policy: &str) -> Option<&ChaosCell> {
        self.cells
            .iter()
            .find(|c| c.autoscaler == autoscaler && c.admission == admission && c.policy == policy)
    }

    /// Rows ranked most-graceful first: highest SLO attainment over what was
    /// served, fewest failed requests breaking ties.
    pub fn ranked(&self) -> Vec<&ChaosCell> {
        let mut rows: Vec<&ChaosCell> = self.cells.iter().collect();
        rows.sort_by(|a, b| {
            b.slo_attainment
                .total_cmp(&a.slo_attainment)
                .then(a.failed.cmp(&b.failed))
        });
        rows
    }

    /// Cross-cell invariants on top of each session's own validation.
    pub fn validate(&self) -> Result<(), String> {
        let expected = self.config.autoscalers.len()
            * self.config.admissions.len()
            * self.config.policies.len();
        if self.cells.len() != expected {
            return Err(format!(
                "chaos grid produced {} rows for a {expected}-row grid",
                self.cells.len()
            ));
        }
        for cell in &self.cells {
            let label = format!(
                "cell ({}, {}, {})",
                cell.autoscaler, cell.admission, cell.policy
            );
            if cell.served + cell.shed + cell.failed != self.config.requests {
                return Err(format!(
                    "{label}: served {} + shed {} + failed {} != generated {}",
                    cell.served, cell.shed, cell.failed, self.config.requests
                ));
            }
            if !(0.0..=1.0).contains(&cell.slo_attainment) {
                return Err(format!(
                    "{label}: SLO attainment {} outside [0, 1]",
                    cell.slo_attainment
                ));
            }
            if cell.nodes_lost == 0 {
                return Err(format!("{label}: the fault killed no nodes"));
            }
            if !(cell.node_seconds.is_finite() && cell.node_seconds > 0.0) {
                return Err(format!(
                    "{label}: non-positive node-seconds {}",
                    cell.node_seconds
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ChaosResilienceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Chaos resilience: {} under `{}` during `{}`, {} requests/cell @ {} rps on \
             {}x{}mc in {} zones",
            self.config.app.short_name(),
            self.config.fault,
            self.config.scenario,
            self.config.requests,
            self.config.rps,
            self.config.cluster.nodes,
            self.config.cluster.node_capacity.get(),
            self.config.cluster.zones,
        )?;
        writeln!(
            f,
            "{:>12} {:>11} {:>12} {:>9} {:>7} {:>7} {:>7} {:>8} {:>6} {:>12}",
            "autoscaler",
            "admission",
            "policy",
            "attain %",
            "served",
            "shed",
            "failed",
            "retried",
            "lost",
            "node-sec"
        )?;
        for cell in &self.cells {
            writeln!(
                f,
                "{:>12} {:>11} {:>12} {:>8.1}% {:>7} {:>7} {:>7} {:>8} {:>6} {:>12.1}",
                cell.autoscaler,
                cell.admission,
                cell.policy,
                cell.slo_attainment * 100.0,
                cell.served,
                cell.shed,
                cell.failed,
                cell.retried,
                cell.nodes_lost,
                cell.node_seconds,
            )?;
        }
        if let Some(best) = self.ranked().first() {
            writeln!(
                f,
                "most graceful: {} x {} under {} ({:.1}% attainment, {} failed)",
                best.autoscaler,
                best.admission,
                best.policy,
                best.slo_attainment * 100.0,
                best.failed,
            )?;
        }
        Ok(())
    }
}

impl ToJson for ChaosResilienceResult {
    fn to_json(&self) -> Value {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("autoscaler".to_string(), Value::Str(c.autoscaler.clone())),
                    ("admission".to_string(), Value::Str(c.admission.clone())),
                    ("policy".to_string(), Value::Str(c.policy.clone())),
                    ("slo_attainment".to_string(), Value::Num(c.slo_attainment)),
                    ("served".to_string(), Value::Num(c.served as f64)),
                    ("shed".to_string(), Value::Num(c.shed as f64)),
                    ("failed".to_string(), Value::Num(c.failed as f64)),
                    ("retried".to_string(), Value::Num(c.retried as f64)),
                    ("nodes_lost".to_string(), Value::Num(c.nodes_lost as f64)),
                    ("node_seconds".to_string(), Value::Num(c.node_seconds)),
                    ("peak_nodes".to_string(), Value::Num(c.peak_nodes as f64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            (
                "experiment".to_string(),
                Value::Str("chaos_resilience".to_string()),
            ),
            (
                "app".to_string(),
                Value::Str(self.config.app.short_name().into()),
            ),
            ("fault".to_string(), Value::Str(self.config.fault.clone())),
            (
                "scenario".to_string(),
                Value::Str(self.config.scenario.clone()),
            ),
            ("seed".to_string(), Value::Num(self.config.seed as f64)),
            (
                "requests".to_string(),
                Value::Num(self.config.requests as f64),
            ),
            ("cells".to_string(), Value::Arr(cells)),
            ("wall_ms".to_string(), Value::Num(self.wall_ms)),
            ("cells_per_sec".to_string(), Value::Num(self.cells_per_sec)),
        ])
    }
}

/// Run the chaos-resilience grid: one paired multi-policy session per
/// (autoscaler, admission) cell, every cell under the same fault schedule,
/// fanned out across threads. Deterministic in the seed.
pub fn chaos_resilience(config: &ChaosResilienceConfig) -> Result<ChaosResilienceResult, String> {
    chaos_resilience_observed(config, None)
}

/// [`chaos_resilience`] with an observer attached to every cell's session
/// (`janus run chaos_resilience --trace`): the fault deliveries then show up
/// as typed records in each cell's flight report.
pub fn chaos_resilience_observed(
    config: &ChaosResilienceConfig,
    observer: Option<&str>,
) -> Result<ChaosResilienceResult, String> {
    if config.policies.is_empty() {
        return Err("chaos resilience needs at least one policy".into());
    }
    if config.autoscalers.is_empty() || config.admissions.is_empty() {
        return Err(
            "chaos resilience needs at least one autoscaler and one admission policy".into(),
        );
    }
    // janus-lint: allow(nondeterminism) — wall-clock cost of the grid, reported as metadata; grid results are seed-pure
    let started = Instant::now();
    let mut grid = Vec::new();
    for autoscaler in &config.autoscalers {
        for admission in &config.admissions {
            grid.push((autoscaler.clone(), admission.clone()));
        }
    }
    let reports: Vec<Result<SessionReport, String>> = grid
        .into_par_iter()
        .map(|(autoscaler, admission)| {
            let mut builder = ServingSession::builder()
                .app(config.app)
                .concurrency(config.concurrency)
                .policies(config.policies.clone())
                .load(Load::Open {
                    requests: config.requests,
                    rps: config.rps,
                })
                .cluster(config.cluster.clone())
                .scenario(&config.scenario)
                .autoscaler(&autoscaler)
                .admission(&admission)
                .fault(&config.fault)
                .seed(config.seed)
                .samples_per_point(config.samples_per_point)
                .budget_step_ms(config.budget_step_ms);
            if let Some(observer) = observer {
                builder = builder.observe(observer);
            }
            builder
                .run()
                .map_err(|e| format!("cell ({autoscaler}, {admission}): {e}"))
        })
        .collect();
    let reports = reports.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut cells = Vec::with_capacity(reports.len() * config.policies.len());
    for report in &reports {
        for policy in &config.policies {
            let serving = report
                .serving(policy)
                .ok_or_else(|| format!("policy `{policy}` missing from its own session"))?;
            let capacity = serving
                .capacity
                .as_ref()
                .ok_or_else(|| format!("policy `{policy}`: no capacity report"))?;
            cells.push(ChaosCell {
                autoscaler: capacity.autoscaler.clone(),
                admission: capacity.admission.clone(),
                policy: policy.clone(),
                slo_attainment: 1.0 - serving.slo_violation_rate(),
                served: serving.served_len(),
                shed: capacity.shed,
                failed: capacity.failed,
                retried: capacity.retried,
                nodes_lost: capacity.nodes_lost,
                node_seconds: capacity.node_seconds,
                peak_nodes: capacity.peak_nodes,
            });
        }
    }
    let wall_ms = (started.elapsed().as_secs_f64() * 1000.0).max(MIN_WALL_MS);
    let result = ChaosResilienceResult {
        config: config.clone(),
        cells_per_sec: rate_per_sec(cells.len() as u64, wall_ms),
        cells,
        reports,
        wall_ms,
    };
    result.validate()?;
    Ok(result)
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput, Scale};

/// `chaos_resilience` as a registered [`Experiment`]: the IA flash-crowd
/// zone-outage grid at the configured scale.
pub struct ChaosResilienceExperiment;

impl Experiment for ChaosResilienceExperiment {
    fn name(&self) -> &str {
        "chaos_resilience"
    }

    fn describe(&self) -> &str {
        "Chaos resilience: capacity regimes under a mid-flash-crowd zone outage"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let mut config = match ctx.scale {
            Scale::Paper => ChaosResilienceConfig::paper_default(PaperApp::IntelligentAssistant),
            Scale::Quick => ChaosResilienceConfig::quick(PaperApp::IntelligentAssistant),
        };
        config.seed = ctx.seed_or(config.seed);
        let result = chaos_resilience_observed(&config, ctx.observer_name())?;
        // Reports come back in grid order (autoscaler-major, then
        // admission); both policies of one cell share its qualifier.
        let mut reports = result.reports.iter();
        for autoscaler in &config.autoscalers {
            for admission in &config.admissions {
                let Some(report) = reports.next() else { break };
                if let Some(trace) = report.trace() {
                    ctx.append_trace(&trace, Some(&format!("{autoscaler}/{admission}")))?;
                }
            }
        }
        Ok(ExperimentOutput::single(result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ChaosResilienceConfig {
        ChaosResilienceConfig {
            requests: 60,
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..ChaosResilienceConfig::quick(PaperApp::IntelligentAssistant)
        }
    }

    #[test]
    fn the_grid_survives_a_zone_outage_and_accounts_for_every_request() {
        let result = chaos_resilience(&tiny_config()).unwrap();
        result.validate().unwrap();
        assert_eq!(
            result.cells.len(),
            8,
            "2 autoscalers x 2 admissions x 2 policies"
        );
        for cell in &result.cells {
            assert_eq!(
                cell.served + cell.shed + cell.failed,
                result.config.requests
            );
            if cell.autoscaler == "static" {
                // With a fixed fleet the 4 nodes stay 2 per zone, so the
                // outage kills exactly the dying zone's pair; elastic cells
                // may have reshaped the zone by outage time.
                assert_eq!(cell.nodes_lost, 2, "static cells lose exactly one zone");
            }
        }
        // The ranking orders by attainment; the display names the winner.
        let ranked = result.ranked();
        assert!(ranked
            .windows(2)
            .all(|w| w[0].slo_attainment >= w[1].slo_attainment));
        let shown = format!("{result}");
        assert!(shown.contains("most graceful:"), "{shown}");
        assert!(shown.contains("zone-outage"), "{shown}");
        // Machine view carries the full accounting per row.
        let doc = janus_json::parse(&result.to_json().to_pretty()).unwrap();
        assert_eq!(
            doc.require("experiment").unwrap().as_str(),
            Some("chaos_resilience")
        );
        assert_eq!(doc.require("cells").unwrap().as_array().unwrap().len(), 8);
    }

    #[test]
    fn traced_chaos_runs_carry_the_fault_deliveries() {
        use crate::experiments::api::TraceSink;
        use janus_observe::TraceReport;

        let sink = TraceSink::new();
        let ctx = ExperimentCtx::new(Scale::Quick)
            .with_seed(Some(7))
            .with_observer(Some("trace".into()))
            .with_trace(sink.clone());
        assert_eq!(ctx.observer_name(), Some("trace"));
        ChaosResilienceExperiment.run(&ctx).unwrap();
        let trace = sink.take();
        assert!(
            trace.contains("\"type\":\"fault\"") && trace.contains("zone-outage"),
            "fault deliveries must appear in the trace"
        );
        let report = TraceReport::from_jsonl(&trace).unwrap();
        // 2 policies x 4 (autoscaler, admission) cells, each qualified.
        assert_eq!(report.policies.len(), 8);
        assert!(report
            .policies
            .iter()
            .any(|p| p.policy == "GrandSLAM@static/admit-all"));
    }

    #[test]
    fn chaos_grids_are_deterministic_and_reject_bad_configs() {
        let config = ChaosResilienceConfig {
            autoscalers: vec!["utilization".into()],
            admissions: vec!["admit-all".into()],
            policies: vec!["GrandSLAM".into()],
            ..tiny_config()
        };
        let a = chaos_resilience(&config).unwrap();
        let b = chaos_resilience(&config).unwrap();
        assert_eq!(
            a.reports[0].serving("GrandSLAM").unwrap(),
            b.reports[0].serving("GrandSLAM").unwrap()
        );
        let err = chaos_resilience(&ChaosResilienceConfig {
            policies: vec![],
            ..config.clone()
        })
        .unwrap_err();
        assert!(err.contains("at least one policy"), "{err}");
        let err = chaos_resilience(&ChaosResilienceConfig {
            fault: "meteor-strike".into(),
            ..config
        })
        .unwrap_err();
        assert!(err.contains("unknown fault injector"), "{err}");
    }
}
