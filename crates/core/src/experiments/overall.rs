//! Overall performance experiments: Table I, Figure 4 and Figure 5 (§V-B).

use crate::comparison::{self, ComparisonConfig, ComparisonOutcome, PolicyKind};
use janus_workloads::apps::PaperApp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result shared by Table I, Figure 4 and Figure 5: a full policy comparison
/// for one (application, concurrency) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverallResult {
    /// The underlying comparison outcome.
    pub outcome: ComparisonOutcome,
}

impl OverallResult {
    /// Application short name ("IA" / "VA").
    pub fn app_name(&self) -> &'static str {
        self.outcome.config.app.short_name()
    }

    /// Table I row: reduction (%) of Janus vs each baseline, normalised by
    /// Optimal, in the paper's column order.
    pub fn table1_row(&self) -> Vec<(String, f64)> {
        [
            PolicyKind::Orion,
            PolicyKind::GrandSlamPlus,
            PolicyKind::GrandSlam,
            PolicyKind::JanusMinus,
            PolicyKind::JanusPlus,
        ]
        .iter()
        .filter_map(|&other| {
            self.outcome
                .reduction_percent(PolicyKind::Janus, other)
                .map(|r| (other.name().to_string(), r))
        })
        .collect()
    }

    /// Figure 5 row: mean CPU (millicores) per policy.
    pub fn fig5_row(&self) -> Vec<(String, f64)> {
        self.outcome
            .config
            .policies
            .iter()
            .zip(&self.outcome.reports)
            .map(|(k, r)| (k.name().to_string(), r.mean_cpu_millicores()))
            .collect()
    }

    /// Figure 4 series: `(policy, E2E latency CDF points)`.
    pub fn fig4_series(&self, points: usize) -> Vec<(String, Vec<(f64, f64)>)> {
        self.outcome
            .config
            .policies
            .iter()
            .zip(&self.outcome.reports)
            .map(|(k, r)| (k.name().to_string(), r.e2e_cdf().points(points)))
            .collect()
    }

    /// Maximum SLO violation rate across the Janus variants in this run.
    pub fn janus_violation_rate(&self) -> f64 {
        [
            PolicyKind::JanusMinus,
            PolicyKind::Janus,
            PolicyKind::JanusPlus,
        ]
        .iter()
        .filter_map(|&k| self.outcome.report(k))
        .map(|r| r.slo_violation_rate())
        .fold(0.0, f64::max)
    }
}

impl fmt::Display for OverallResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cfg = &self.outcome.config;
        writeln!(
            f,
            "# {} @ concurrency {} (SLO {:.1} s, {} requests)",
            self.app_name(),
            cfg.concurrency,
            cfg.slo.as_secs(),
            cfg.requests
        )?;
        writeln!(f, "## Figure 5: mean CPU per request (millicores)")?;
        for (name, cpu) in self.fig5_row() {
            let norm = cpu
                / self
                    .outcome
                    .report(PolicyKind::Optimal)
                    .map(|r| r.mean_cpu_millicores())
                    .unwrap_or(cpu);
            writeln!(f, "{name:>12} {cpu:>10.1}  (x{norm:.3} of Optimal)")?;
        }
        writeln!(
            f,
            "## Table I: Janus resource reduction vs baselines (% of Optimal)"
        )?;
        for (name, reduction) in self.table1_row() {
            writeln!(f, "{name:>12} {reduction:>8.1}%")?;
        }
        writeln!(f, "## SLO compliance")?;
        for (kind, report) in self
            .outcome
            .config
            .policies
            .iter()
            .zip(&self.outcome.reports)
        {
            writeln!(
                f,
                "{:>12} P99 E2E {:>8.2} s, violations {:>6.2}%",
                kind.name(),
                report
                    .e2e_percentile(99.0)
                    .map(|d| d.as_secs())
                    .unwrap_or(0.0),
                report.slo_violation_rate() * 100.0
            )?;
        }
        Ok(())
    }
}

/// Run the Table I / Figure 5a comparison for one application at one
/// concurrency level.
pub fn table1_overall(config: &ComparisonConfig) -> Result<OverallResult, String> {
    Ok(OverallResult {
        outcome: comparison::run(config)?,
    })
}

/// Figure 4: the same run viewed as latency CDFs; provided as an alias so the
/// bench binaries read naturally.
pub fn fig4_latency_cdfs(config: &ComparisonConfig) -> Result<OverallResult, String> {
    table1_overall(config)
}

/// Figure 5: the same run viewed as resource-consumption bars.
pub fn fig5_resource_consumption(config: &ComparisonConfig) -> Result<OverallResult, String> {
    table1_overall(config)
}

/// Convenience: the standard paper configuration for an app/concurrency.
pub fn paper_config(app: PaperApp, concurrency: u32) -> ComparisonConfig {
    ComparisonConfig::paper_default(app, concurrency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_result_exposes_table1_and_fig5_views() {
        let mut config = ComparisonConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
        config.policies = vec![
            PolicyKind::Optimal,
            PolicyKind::Orion,
            PolicyKind::GrandSlam,
            PolicyKind::GrandSlamPlus,
            PolicyKind::JanusMinus,
            PolicyKind::Janus,
        ];
        let result = table1_overall(&config).unwrap();
        assert_eq!(result.app_name(), "IA");

        let row = result.table1_row();
        assert_eq!(row.len(), 4, "Janus+ not in the run");
        // Janus improves on every early-binding baseline.
        for (name, reduction) in &row {
            if name != "Janus-" {
                assert!(*reduction > 0.0, "{name} reduction {reduction}");
            } else {
                assert!(*reduction >= -1.0, "Janus- close to Janus: {reduction}");
            }
        }
        let fig5 = result.fig5_row();
        assert_eq!(fig5.len(), 6);
        let fig4 = result.fig4_series(11);
        assert_eq!(fig4.len(), 6);
        assert_eq!(fig4[0].1.len(), 11);
        assert!(result.janus_violation_rate() <= 0.03);
        assert!(format!("{result}").contains("Table I"));
    }
}
