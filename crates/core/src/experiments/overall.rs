//! Overall performance experiments: Table I, Figure 4 and Figure 5 (§V-B).

use crate::comparison::{self, ComparisonConfig, ComparisonOutcome, PolicyKind};
use janus_workloads::apps::PaperApp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result shared by Table I, Figure 4 and Figure 5: a full policy comparison
/// for one (application, concurrency) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverallResult {
    /// The underlying comparison outcome.
    pub outcome: ComparisonOutcome,
}

impl OverallResult {
    /// Application short name ("IA" / "VA").
    pub fn app_name(&self) -> &'static str {
        self.outcome.config.app.short_name()
    }

    /// Table I row: reduction (%) of Janus vs each baseline, normalised by
    /// Optimal, in the paper's column order.
    pub fn table1_row(&self) -> Vec<(String, f64)> {
        [
            PolicyKind::Orion,
            PolicyKind::GrandSlamPlus,
            PolicyKind::GrandSlam,
            PolicyKind::JanusMinus,
            PolicyKind::JanusPlus,
        ]
        .iter()
        .filter_map(|&other| {
            self.outcome
                .reduction_percent(PolicyKind::Janus, other)
                .map(|r| (other.name().to_string(), r))
        })
        .collect()
    }

    /// Figure 5 row: mean CPU (millicores) per policy.
    pub fn fig5_row(&self) -> Vec<(String, f64)> {
        self.outcome
            .config
            .policies
            .iter()
            .zip(&self.outcome.reports)
            .map(|(k, r)| (k.name().to_string(), r.mean_cpu_millicores()))
            .collect()
    }

    /// Figure 4 series: `(policy, E2E latency CDF points)`.
    pub fn fig4_series(&self, points: usize) -> Vec<(String, Vec<(f64, f64)>)> {
        self.outcome
            .config
            .policies
            .iter()
            .zip(&self.outcome.reports)
            .map(|(k, r)| (k.name().to_string(), r.e2e_cdf().points(points)))
            .collect()
    }

    /// Maximum SLO violation rate across the Janus variants in this run.
    pub fn janus_violation_rate(&self) -> f64 {
        [
            PolicyKind::JanusMinus,
            PolicyKind::Janus,
            PolicyKind::JanusPlus,
        ]
        .iter()
        .filter_map(|&k| self.outcome.report(k))
        .map(|r| r.slo_violation_rate())
        .fold(0.0, f64::max)
    }
}

impl fmt::Display for OverallResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cfg = &self.outcome.config;
        writeln!(
            f,
            "# {} @ concurrency {} (SLO {:.1} s, {} requests)",
            self.app_name(),
            cfg.concurrency,
            cfg.slo.as_secs(),
            cfg.requests
        )?;
        writeln!(f, "## Figure 5: mean CPU per request (millicores)")?;
        for (name, cpu) in self.fig5_row() {
            let norm = cpu
                / self
                    .outcome
                    .report(PolicyKind::Optimal)
                    .map(|r| r.mean_cpu_millicores())
                    .unwrap_or(cpu);
            writeln!(f, "{name:>12} {cpu:>10.1}  (x{norm:.3} of Optimal)")?;
        }
        writeln!(
            f,
            "## Table I: Janus resource reduction vs baselines (% of Optimal)"
        )?;
        for (name, reduction) in self.table1_row() {
            writeln!(f, "{name:>12} {reduction:>8.1}%")?;
        }
        writeln!(f, "## SLO compliance")?;
        for (kind, report) in self
            .outcome
            .config
            .policies
            .iter()
            .zip(&self.outcome.reports)
        {
            writeln!(
                f,
                "{:>12} P99 E2E {:>8.2} s, violations {:>6.2}%",
                kind.name(),
                report
                    .e2e_percentile(99.0)
                    .map(|d| d.as_secs())
                    .unwrap_or(0.0),
                report.slo_violation_rate() * 100.0
            )?;
        }
        Ok(())
    }
}

/// Run the Table I / Figure 5a comparison for one application at one
/// concurrency level.
pub fn table1_overall(config: &ComparisonConfig) -> Result<OverallResult, String> {
    Ok(OverallResult {
        outcome: comparison::run(config)?,
    })
}

/// Figure 4: the same run viewed as latency CDFs; provided as an alias so the
/// bench binaries read naturally.
pub fn fig4_latency_cdfs(config: &ComparisonConfig) -> Result<OverallResult, String> {
    table1_overall(config)
}

/// Figure 5: the same run viewed as resource-consumption bars.
pub fn fig5_resource_consumption(config: &ComparisonConfig) -> Result<OverallResult, String> {
    table1_overall(config)
}

/// Convenience: the standard paper configuration for an app/concurrency.
pub fn paper_config(app: PaperApp, concurrency: u32) -> ComparisonConfig {
    ComparisonConfig::paper_default(app, concurrency)
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiments::ToJson;
use janus_json::Value;

/// `table1` as a registered [`Experiment`]: the overall comparison for both
/// paper applications at concurrency 1.
pub struct Table1Experiment;

impl Experiment for Table1Experiment {
    fn name(&self) -> &str {
        "table1"
    }

    fn describe(&self) -> &str {
        "Table I: overall resource reduction of Janus vs baselines for IA and VA"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let mut out = ExperimentOutput::new();
        for app in PaperApp::ALL {
            let result = table1_overall(&ctx.comparison(app, 1))
                .map_err(|e| format!("{}: {e}", app.short_name()))?;
            out.push(app.short_name(), result);
        }
        Ok(out)
    }
}

/// The Figure 4 presentation of an [`OverallResult`]: one latency-CDF series
/// per policy, instead of the Table I rows. JSON view delegates to the
/// underlying result (same document the retired `fig4` binary wrote).
pub struct Fig4Cdf(pub OverallResult);

impl fmt::Display for Fig4Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cfg = &self.0.outcome.config;
        writeln!(
            f,
            "# Figure 4: {} concurrency {} (SLO {:.1} s) E2E latency CDF",
            self.0.app_name(),
            cfg.concurrency,
            cfg.slo.as_secs()
        )?;
        for (policy, points) in self.0.fig4_series(11) {
            write!(f, "{policy:>12}:")?;
            for (latency_ms, q) in points {
                write!(f, " ({:.2}s,{q:.1})", latency_ms / 1000.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl ToJson for Fig4Cdf {
    fn to_json(&self) -> Value {
        self.0.to_json()
    }
}

/// `fig4` as a registered [`Experiment`]: IA at concurrency 1–3 plus VA.
pub struct Fig4Experiment;

impl Experiment for Fig4Experiment {
    fn name(&self) -> &str {
        "fig4"
    }

    fn describe(&self) -> &str {
        "Figure 4: end-to-end latency CDFs of IA (concurrency 1-3) and VA"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let setups = [
            (PaperApp::IntelligentAssistant, 1u32),
            (PaperApp::IntelligentAssistant, 2),
            (PaperApp::IntelligentAssistant, 3),
            (PaperApp::VideoAnalyze, 1),
        ];
        let mut out = ExperimentOutput::new();
        for (app, conc) in setups {
            let result = fig4_latency_cdfs(&ctx.comparison(app, conc))
                .map_err(|e| format!("{} conc {conc}: {e}", app.short_name()))?;
            out.push(
                format!("{} concurrency {conc}", app.short_name()),
                Fig4Cdf(result),
            );
        }
        Ok(out)
    }
}

/// The Figure 5 presentation of an [`OverallResult`]: per-policy CPU, either
/// absolute millicores (5a) or normalised by Optimal (5b).
pub struct Fig5Consumption {
    /// The underlying comparison.
    pub result: OverallResult,
    /// Normalise by the Optimal oracle (the Figure 5b presentation).
    pub normalized: bool,
}

impl fmt::Display for Fig5Consumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.normalized {
            for (kind, report) in self
                .result
                .outcome
                .config
                .policies
                .iter()
                .zip(&self.result.outcome.reports)
            {
                let norm = self
                    .result
                    .outcome
                    .normalized_cpu(*kind)
                    .unwrap_or(f64::NAN);
                writeln!(
                    f,
                    "{:>12} {:>8.3}  ({:.1} mc)",
                    kind.name(),
                    norm,
                    report.mean_cpu_millicores()
                )?;
            }
        } else {
            for (policy, cpu) in self.result.fig5_row() {
                writeln!(f, "{policy:>12} {cpu:>10.1}")?;
            }
        }
        Ok(())
    }
}

impl ToJson for Fig5Consumption {
    fn to_json(&self) -> Value {
        self.result.to_json()
    }
}

/// `fig5` as a registered [`Experiment`]: absolute CPU for IA and VA at
/// concurrency 1, normalised CPU for IA at concurrency 2 and 3.
pub struct Fig5Experiment;

impl Experiment for Fig5Experiment {
    fn name(&self) -> &str {
        "fig5"
    }

    fn describe(&self) -> &str {
        "Figure 5: resource consumption per policy, absolute and normalised by Optimal"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let mut out = ExperimentOutput::new();
        for app in PaperApp::ALL {
            let result = fig5_resource_consumption(&ctx.comparison(app, 1))
                .map_err(|e| format!("{}: {e}", app.short_name()))?;
            out.push(
                format!(
                    "{} absolute CPU (millicores), concurrency 1",
                    app.short_name()
                ),
                Fig5Consumption {
                    result,
                    normalized: false,
                },
            );
        }
        for conc in [2u32, 3] {
            let config = ctx.comparison(PaperApp::IntelligentAssistant, conc);
            let slo_s = config.slo.as_secs();
            let result =
                fig5_resource_consumption(&config).map_err(|e| format!("IA conc {conc}: {e}"))?;
            out.push(
                format!("IA normalised CPU, concurrency {conc} (SLO {slo_s:.1} s)"),
                Fig5Consumption {
                    result,
                    normalized: true,
                },
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_result_exposes_table1_and_fig5_views() {
        let mut config = ComparisonConfig::quick_for_tests(PaperApp::IntelligentAssistant, 1);
        config.policies = vec![
            PolicyKind::Optimal,
            PolicyKind::Orion,
            PolicyKind::GrandSlam,
            PolicyKind::GrandSlamPlus,
            PolicyKind::JanusMinus,
            PolicyKind::Janus,
        ];
        let result = table1_overall(&config).unwrap();
        assert_eq!(result.app_name(), "IA");

        let row = result.table1_row();
        assert_eq!(row.len(), 4, "Janus+ not in the run");
        // Janus improves on every early-binding baseline.
        for (name, reduction) in &row {
            if name != "Janus-" {
                assert!(*reduction > 0.0, "{name} reduction {reduction}");
            } else {
                assert!(*reduction >= -1.0, "Janus- close to Janus: {reduction}");
            }
        }
        let fig5 = result.fig5_row();
        assert_eq!(fig5.len(), 6);
        let fig4 = result.fig4_series(11);
        assert_eq!(fig4.len(), 6);
        assert_eq!(fig4[0].1.len(), 11);
        assert!(result.janus_violation_rate() <= 0.03);
        assert!(format!("{result}").contains("Table I"));
    }
}
