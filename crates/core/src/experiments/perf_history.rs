//! The perf history: `BENCH_perf.json` as a dated series of perf runs, and
//! the regression gate over it.
//!
//! A single flat perf artefact answers *how fast is the simulator now* but
//! not *is it getting slower* — every optimisation PR had to eyeball the
//! previous number out of git history. This module turns the committed
//! artefact into an append-only document:
//!
//! ```json
//! { "experiment": "perf-history",
//!   "entries": [ { "date": "2026-08-07", "scale": "paper", "result": {…} }, … ] }
//! ```
//!
//! `janus run perf --out BENCH_perf.json` appends one dated entry per run
//! (wrapping a pre-history flat artefact as its first, undated entry), and
//! `janus perf-check` runs a fresh perf trajectory and fails when its
//! `mean_events_per_sec` regresses more than [`REGRESSION_TOLERANCE`]
//! against the newest committed entry of the same scale. Entries of
//! different scales never gate each other — a `--quick` smoke figure is not
//! comparable to the paper-scale baseline.

use janus_json::Value;

/// The `experiment` tag of a history document.
pub const HISTORY_EXPERIMENT: &str = "perf-history";

/// The fraction of `mean_events_per_sec` a fresh run may fall below the
/// committed baseline before `janus perf-check` fails (15%).
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// One decoded history entry: when it ran, at what scale, and the headline
/// throughput of its embedded perf result.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBaseline {
    /// ISO date (`YYYY-MM-DD`) the entry was recorded, or `"pre-history"`
    /// for a wrapped legacy artefact.
    pub date: String,
    /// Scale name the entry ran at (`paper` / `quick`).
    pub scale: String,
    /// The entry's `mean_events_per_sec`.
    pub mean_events_per_sec: f64,
}

/// Append one perf result to a history document, creating or upgrading the
/// document as needed: `None` starts a fresh history, an existing history
/// is appended to, and a legacy flat perf artefact is wrapped as the first
/// (undated, paper-scale) entry before the new one is appended.
pub fn history_with_entry(
    existing: Option<&Value>,
    result: &Value,
    scale: &str,
    date: &str,
) -> Result<Value, String> {
    let mut entries = match existing {
        None => Vec::new(),
        Some(doc) => history_entries(doc)?,
    };
    entries.push(entry(date, scale, result.clone()));
    Ok(Value::Obj(vec![
        (
            "experiment".to_string(),
            Value::Str(HISTORY_EXPERIMENT.to_string()),
        ),
        ("entries".to_string(), Value::Arr(entries)),
    ]))
}

/// The newest history entry of the given scale, decoded for comparison.
/// `Ok(None)` when the history has no entry at that scale.
pub fn latest_baseline(history: &Value, scale: &str) -> Result<Option<PerfBaseline>, String> {
    let entries = history_entries(history)?;
    for entry in entries.iter().rev() {
        let entry_scale = entry
            .require("scale")
            .map_err(|e| format!("history entry: {e}"))?
            .as_str()
            .ok_or("history entry `scale` not a string")?;
        if entry_scale != scale {
            continue;
        }
        let date = entry
            .require("date")
            .map_err(|e| format!("history entry: {e}"))?
            .as_str()
            .unwrap_or("pre-history")
            .to_string();
        let result = entry
            .require("result")
            .map_err(|e| format!("history entry ({date}): {e}"))?;
        let mean = comparable_mean(result).map_err(|e| format!("history entry ({date}): {e}"))?;
        return Ok(Some(PerfBaseline {
            date,
            scale: entry_scale.to_string(),
            mean_events_per_sec: mean,
        }));
    }
    Ok(None)
}

/// The throughput figure two perf results can be gated on: the mean
/// `events_per_sec` over slice-backed cells only. Streaming cells are a
/// different shape of work (per-arrival RNG draws run inside the timed
/// region) and are excluded on both sides of the comparison. Pre-streaming
/// artefacts carry no `streaming` flag, so every cell counts — exactly what
/// their committed `mean_events_per_sec` summarized, so old and new entries
/// gate each other on identical terms. Results without a `cells` array
/// (legacy flat summaries) fall back to `mean_events_per_sec`.
pub fn comparable_mean(result: &Value) -> Result<f64, String> {
    let Some(cells) = result.get("cells") else {
        return result
            .require("mean_events_per_sec")
            .map_err(|e| format!("perf result: {e}"))?
            .as_f64()
            .ok_or_else(|| "perf result: mean_events_per_sec not a number".to_string());
    };
    let cells = cells.as_array().ok_or("perf result `cells` not an array")?;
    let mut sum = 0.0;
    let mut comparable = 0usize;
    for cell in cells {
        if cell.get("streaming").and_then(Value::as_bool) == Some(true) {
            continue;
        }
        sum += cell
            .require("events_per_sec")
            .map_err(|e| format!("perf cell: {e}"))?
            .as_f64()
            .ok_or("perf cell `events_per_sec` not a number")?;
        comparable += 1;
    }
    if comparable == 0 {
        return Err("perf result has no slice-backed cells to compare".into());
    }
    Ok(sum / comparable as f64)
}

/// The regression gate: compare a freshly measured `mean_events_per_sec`
/// against a committed baseline. Returns the human verdict line on success
/// and a regression description (with both figures) on failure.
pub fn check_against(baseline: &PerfBaseline, fresh_mean: f64) -> Result<String, String> {
    if !(fresh_mean.is_finite() && fresh_mean > 0.0) {
        return Err(format!(
            "fresh perf run produced a degenerate mean_events_per_sec {fresh_mean}"
        ));
    }
    let floor = baseline.mean_events_per_sec * (1.0 - REGRESSION_TOLERANCE);
    if fresh_mean < floor {
        return Err(format!(
            "perf regression: fresh {:.0} events/sec is {:.1}% below the {} baseline \
             {:.0} (from {}; tolerance {:.0}%)",
            fresh_mean,
            (1.0 - fresh_mean / baseline.mean_events_per_sec) * 100.0,
            baseline.scale,
            baseline.mean_events_per_sec,
            baseline.date,
            REGRESSION_TOLERANCE * 100.0,
        ));
    }
    Ok(format!(
        "perf-check OK: fresh {:.0} events/sec vs {} baseline {:.0} (from {}; \
         {:+.1}%, tolerance -{:.0}%)",
        fresh_mean,
        baseline.scale,
        baseline.mean_events_per_sec,
        baseline.date,
        (fresh_mean / baseline.mean_events_per_sec - 1.0) * 100.0,
        REGRESSION_TOLERANCE * 100.0,
    ))
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no calendar
/// dependency; days-since-epoch converted via the standard civil-from-days
/// algorithm).
pub fn today_utc() -> String {
    // janus-lint: allow(nondeterminism) — history entries are date-stamped provenance, not simulation results
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    date_from_days((secs / 86_400) as i64)
}

/// Convert days since 1970-01-01 to a civil `YYYY-MM-DD` date.
fn date_from_days(days: i64) -> String {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn entry(date: &str, scale: &str, result: Value) -> Value {
    Value::Obj(vec![
        ("date".to_string(), Value::Str(date.to_string())),
        ("scale".to_string(), Value::Str(scale.to_string())),
        ("result".to_string(), result),
    ])
}

/// Decode a history document's entries, wrapping a legacy flat perf
/// artefact (`"experiment": "perf"`) as a single pre-history, paper-scale
/// entry.
fn history_entries(doc: &Value) -> Result<Vec<Value>, String> {
    let tag = doc
        .require("experiment")
        .map_err(|e| format!("perf artefact: {e}"))?
        .as_str()
        .ok_or("perf artefact `experiment` not a string")?;
    match tag {
        HISTORY_EXPERIMENT => Ok(doc
            .require("entries")
            .map_err(|e| format!("perf history: {e}"))?
            .as_array()
            .ok_or("perf history `entries` not an array")?
            .to_vec()),
        // The flat artefact predates the history format; its committed
        // baseline ran at paper scale.
        "perf" => Ok(vec![entry("pre-history", "paper", doc.clone())]),
        other => Err(format!(
            "perf artefact has experiment `{other}`, expected `perf` or `{HISTORY_EXPERIMENT}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(mean: f64) -> Value {
        Value::Obj(vec![
            ("experiment".to_string(), Value::Str("perf".to_string())),
            ("mean_events_per_sec".to_string(), Value::Num(mean)),
        ])
    }

    #[test]
    fn histories_grow_from_nothing_and_from_legacy_artefacts() {
        // Fresh history: one entry.
        let history = history_with_entry(None, &flat(1e6), "paper", "2026-08-07").unwrap();
        assert_eq!(
            history.require("experiment").unwrap().as_str(),
            Some(HISTORY_EXPERIMENT)
        );
        assert_eq!(
            history
                .require("entries")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1
        );
        // Appending keeps earlier entries in order.
        let history =
            history_with_entry(Some(&history), &flat(1.1e6), "quick", "2026-08-08").unwrap();
        let entries = history
            .require("entries")
            .unwrap()
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].require("date").unwrap().as_str(),
            Some("2026-08-07")
        );
        assert_eq!(entries[1].require("scale").unwrap().as_str(), Some("quick"));
        // A legacy flat artefact is wrapped as the first, pre-history entry.
        let upgraded =
            history_with_entry(Some(&flat(9e5)), &flat(1e6), "paper", "2026-08-07").unwrap();
        let entries = upgraded
            .require("entries")
            .unwrap()
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].require("date").unwrap().as_str(),
            Some("pre-history")
        );
        assert_eq!(entries[0].require("scale").unwrap().as_str(), Some("paper"));
        // Unrecognised documents are rejected, not silently replaced.
        let err = history_with_entry(
            Some(&Value::Obj(vec![(
                "experiment".to_string(),
                Value::Str("fig1a".to_string()),
            )])),
            &flat(1e6),
            "paper",
            "2026-08-07",
        )
        .unwrap_err();
        assert!(err.contains("expected `perf`"), "{err}");
    }

    #[test]
    fn the_gate_picks_the_newest_matching_scale_and_enforces_the_tolerance() {
        let h = history_with_entry(Some(&flat(9e5)), &flat(1e6), "paper", "2026-08-07").unwrap();
        let h = history_with_entry(Some(&h), &flat(4e5), "quick", "2026-08-07").unwrap();
        // Paper lookups skip the quick entry and find the newest paper one.
        let baseline = latest_baseline(&h, "paper").unwrap().unwrap();
        assert_eq!(baseline.mean_events_per_sec, 1e6);
        assert_eq!(baseline.date, "2026-08-07");
        let quick = latest_baseline(&h, "quick").unwrap().unwrap();
        assert_eq!(quick.mean_events_per_sec, 4e5);
        assert_eq!(latest_baseline(&h, "galactic").unwrap(), None);
        // A legacy flat artefact is itself a usable paper baseline.
        let legacy = latest_baseline(&flat(9e5), "paper").unwrap().unwrap();
        assert_eq!(legacy.date, "pre-history");
        // Within tolerance passes (even slightly below baseline)…
        assert!(check_against(&baseline, 1.05e6)
            .unwrap()
            .contains("perf-check OK"));
        assert!(check_against(&baseline, 0.86e6).is_ok());
        // …but a >15% drop fails with both figures in the message.
        let err = check_against(&baseline, 0.84e6).unwrap_err();
        assert!(err.contains("perf regression"), "{err}");
        assert!(err.contains("1000000"), "{err}");
        let err = check_against(&baseline, f64::NAN).unwrap_err();
        assert!(err.contains("degenerate"), "{err}");
    }

    fn cell(rate: f64, streaming: bool) -> Value {
        Value::Obj(vec![
            ("events_per_sec".to_string(), Value::Num(rate)),
            ("streaming".to_string(), Value::Bool(streaming)),
        ])
    }

    #[test]
    fn the_gate_compares_slice_shaped_cells_only() {
        // A post-streaming result: the streaming cell's (much faster or
        // slower) figure never contaminates the comparison.
        let result = Value::Obj(vec![
            ("experiment".to_string(), Value::Str("perf".to_string())),
            (
                "cells".to_string(),
                Value::Arr(vec![
                    cell(100.0, false),
                    cell(200.0, false),
                    cell(1e9, true),
                ]),
            ),
            ("mean_events_per_sec".to_string(), Value::Num(150.0)),
        ]);
        assert_eq!(comparable_mean(&result).unwrap(), 150.0);
        // Pre-streaming cells carry no flag; every cell counts.
        let legacy_cells = Value::Obj(vec![(
            "cells".to_string(),
            Value::Arr(vec![
                Value::Obj(vec![("events_per_sec".to_string(), Value::Num(300.0))]),
                Value::Obj(vec![("events_per_sec".to_string(), Value::Num(500.0))]),
            ]),
        )]);
        assert_eq!(comparable_mean(&legacy_cells).unwrap(), 400.0);
        // Flat summaries (no cells at all) fall back to the headline mean.
        assert_eq!(comparable_mean(&flat(9e5)).unwrap(), 9e5);
        // A result with nothing comparable is an error, not a silent pass.
        let only_streaming = Value::Obj(vec![(
            "cells".to_string(),
            Value::Arr(vec![cell(1e9, true)]),
        )]);
        let err = comparable_mean(&only_streaming).unwrap_err();
        assert!(err.contains("no slice-backed cells"), "{err}");
        // And the baseline lookup itself goes through the same shape filter.
        let h = history_with_entry(None, &result, "paper", "2026-08-07").unwrap();
        let baseline = latest_baseline(&h, "paper").unwrap().unwrap();
        assert_eq!(baseline.mean_events_per_sec, 150.0);
    }

    #[test]
    fn civil_dates_convert_correctly() {
        assert_eq!(date_from_days(0), "1970-01-01");
        assert_eq!(date_from_days(19_782), "2024-02-29");
        assert_eq!(date_from_days(20_672), "2026-08-07");
        let today = today_utc();
        assert_eq!(today.len(), 10, "{today}");
        assert!(today.as_str() >= "2026-01-01", "{today}");
    }
}
