//! `janus report <results-dir>`: aggregate a content-addressed results
//! store into analysis-grade tables.
//!
//! A results directory accumulates cells across sweeps, specs and sessions
//! (the store is keyed by cell content, not by which run produced it), so
//! this report is the cross-run analysis stage: every valid cell in the
//! directory becomes one row per policy, and the rows roll up into the
//! marginal views the paper's evaluation reads from — mean SLO attainment
//! by policy × scenario and policy × offered load, plus per-policy
//! SLO-violation and shed-rate rollups. [`ResultsReport::to_csv`] exports
//! the flat row table for external plotting, using the same canonical
//! number formatting as every other CSV artefact in the workspace.

use crate::experiments::sweep::PolicyCell;
use janus_json::Value;
use janus_results::{ResultsStore, StoredCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One policy's figures at one stored cell, with the cell's axes decoded
/// from its spec document.
#[derive(Debug, Clone)]
pub struct ResultsRow {
    /// Arrival scenario, if the cell pinned one.
    pub scenario: Option<String>,
    /// Offered load in requests/s, if the cell pinned one.
    pub rps: Option<f64>,
    /// Engine seed.
    pub seed: u64,
    /// Autoscaler axis, if set.
    pub autoscaler: Option<String>,
    /// Admission axis, if set.
    pub admission: Option<String>,
    /// Fault-injector axis, if set.
    pub fault: Option<String>,
    /// The policy's published figures.
    pub cell: PolicyCell,
    /// Wall-clock cost of the cell's original run, in ms.
    pub wall_ms: f64,
}

/// The aggregated view of a results directory.
#[derive(Debug, Clone)]
pub struct ResultsReport {
    /// Directory the report was built from (for the header line).
    pub dir: String,
    /// Stored cells the report covers.
    pub cells: usize,
    /// One row per (cell, policy), sorted by axes then policy.
    pub rows: Vec<ResultsRow>,
}

fn opt_str(doc: &Value, key: &str) -> Result<Option<String>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

fn decode_rows(stored: &StoredCell) -> Result<Vec<ResultsRow>, String> {
    let cell = &stored.cell;
    let seed_raw = cell
        .require("seed")?
        .as_f64()
        .ok_or_else(|| "field `seed` must be a number".to_string())?;
    // janus-lint: allow(float-cmp) — exactness is the point: fract() must be exactly zero for an integer-valued f64
    if seed_raw < 0.0 || seed_raw.fract() != 0.0 {
        return Err(format!(
            "field `seed` must be a non-negative integer, got {seed_raw}"
        ));
    }
    let rps = match cell.get("rps") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| "field `rps` must be a number".to_string())?,
        ),
    };
    let scenario = opt_str(cell, "scenario")?;
    let autoscaler = opt_str(cell, "autoscaler")?;
    let admission = opt_str(cell, "admission")?;
    let fault = opt_str(cell, "fault")?;

    let policies = stored
        .result
        .require("policies")?
        .as_array()
        .ok_or_else(|| "field `policies` must be an array".to_string())?;
    policies
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            let policy = PolicyCell::from_json(doc).map_err(|e| format!("`policies[{i}]`: {e}"))?;
            Ok(ResultsRow {
                scenario: scenario.clone(),
                rps,
                seed: seed_raw as u64,
                autoscaler: autoscaler.clone(),
                admission: admission.clone(),
                fault: fault.clone(),
                cell: policy,
                wall_ms: stored.wall_ms,
            })
        })
        .collect()
}

/// Canonical cell text for a table: `-` for an unset axis.
fn axis(v: &Option<String>) -> &str {
    v.as_deref().unwrap_or("-")
}

/// Canonical number text, byte-compatible with the JSON encoder (the same
/// convention `TraceReport::to_csv` uses).
fn fmt_num(n: f64) -> String {
    Value::Num(n).to_compact()
}

fn fmt_opt_num(n: Option<f64>) -> String {
    n.map(fmt_num).unwrap_or_default()
}

/// Mean of a non-empty slice (the grouping code never builds empty groups).
fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

impl ResultsReport {
    /// Aggregate every valid cell in `store`. Rows come back sorted by
    /// (scenario, rps, seed, autoscaler, admission, fault, policy), so the
    /// report is deterministic regardless of directory enumeration order.
    pub fn from_store(store: &ResultsStore) -> Result<Self, String> {
        let cells = store.load_all()?;
        let mut rows = Vec::new();
        for stored in &cells {
            rows.extend(decode_rows(stored).map_err(|e| format!("cell `{}`: {e}", stored.key))?);
        }
        rows.sort_by(|a, b| {
            a.scenario
                .cmp(&b.scenario)
                .then(
                    a.rps
                        .unwrap_or(f64::NEG_INFINITY)
                        .total_cmp(&b.rps.unwrap_or(f64::NEG_INFINITY)),
                )
                .then(a.seed.cmp(&b.seed))
                .then(a.autoscaler.cmp(&b.autoscaler))
                .then(a.admission.cmp(&b.admission))
                .then(a.fault.cmp(&b.fault))
                .then(a.cell.name.cmp(&b.cell.name))
        });
        Ok(Self {
            dir: store.dir().display().to_string(),
            cells: cells.len(),
            rows,
        })
    }

    /// Policy names present in the rows, sorted.
    pub fn policies(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.rows.iter().map(|r| r.cell.name.as_str()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Mean SLO attainment grouped by `group_of(row)` × policy.
    fn attainment_marginal(
        &self,
        group_of: impl Fn(&ResultsRow) -> String,
    ) -> BTreeMap<String, BTreeMap<String, Vec<f64>>> {
        let mut groups: BTreeMap<String, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
        for row in &self.rows {
            groups
                .entry(group_of(row))
                .or_default()
                .entry(row.cell.name.clone())
                .or_default()
                .push(row.cell.slo_attainment);
        }
        groups
    }

    fn render_marginal(
        &self,
        out: &mut String,
        title: &str,
        axis_header: &str,
        group_of: impl Fn(&ResultsRow) -> String,
    ) {
        let policies = self.policies();
        let _ = writeln!(out, "## {title}");
        let _ = write!(out, "{axis_header:>14}");
        for policy in &policies {
            let _ = write!(out, " {policy:>12}");
        }
        let _ = writeln!(out);
        for (group, by_policy) in self.attainment_marginal(group_of) {
            let _ = write!(out, "{group:>14}");
            for policy in &policies {
                match by_policy.get(*policy) {
                    Some(values) => {
                        let _ = write!(out, " {:>12.1}", mean(values) * 100.0);
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }

    /// The analysis tables: per-policy rollup, then mean SLO attainment by
    /// policy × scenario and by policy × offered load.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Results store `{}`: {} cells, {} rows",
            self.dir,
            self.cells,
            self.rows.len()
        );
        let _ = writeln!(out, "## Policy rollup");
        let _ = writeln!(
            out,
            "{:>12} {:>6} {:>10} {:>12} {:>11} {:>12}",
            "policy", "rows", "attain %", "slo-viol %", "shed %", "mean cpu mc"
        );
        for policy in self.policies() {
            let rows: Vec<&ResultsRow> =
                self.rows.iter().filter(|r| r.cell.name == policy).collect();
            let attain: Vec<f64> = rows.iter().map(|r| r.cell.slo_attainment).collect();
            let cpu: Vec<f64> = rows.iter().map(|r| r.cell.mean_cpu_millicores).collect();
            let offered: u64 = rows
                .iter()
                .map(|r| r.cell.served + r.cell.shed + r.cell.failed)
                .sum();
            let shed: u64 = rows.iter().map(|r| r.cell.shed).sum();
            let shed_rate = if offered > 0 {
                shed as f64 / offered as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:>12} {:>6} {:>10.1} {:>12.1} {:>11.1} {:>12.1}",
                policy,
                rows.len(),
                mean(&attain) * 100.0,
                (1.0 - mean(&attain)) * 100.0,
                shed_rate * 100.0,
                mean(&cpu)
            );
        }
        self.render_marginal(
            &mut out,
            "Mean SLO attainment %, policy x scenario",
            "scenario",
            |row| axis(&row.scenario).to_string(),
        );
        self.render_marginal(
            &mut out,
            "Mean SLO attainment %, policy x load",
            "rps",
            |row| row.rps.map(fmt_num).unwrap_or_else(|| "-".to_string()),
        );
        out
    }

    /// The flat row table as CSV, one line per (cell, policy), using the
    /// canonical JSON number formatting (so re-imports parse exactly).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,rps,seed,autoscaler,admission,fault,policy,slo_attainment,\
             mean_cpu_millicores,p99_e2e_s,served,shed,failed,retried,nodes_lost,\
             node_seconds,wall_ms\n",
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                row.scenario.as_deref().unwrap_or_default(),
                fmt_opt_num(row.rps),
                row.seed,
                row.autoscaler.as_deref().unwrap_or_default(),
                row.admission.as_deref().unwrap_or_default(),
                row.fault.as_deref().unwrap_or_default(),
                row.cell.name,
                fmt_num(row.cell.slo_attainment),
                fmt_num(row.cell.mean_cpu_millicores),
                fmt_opt_num(row.cell.p99_e2e_s),
                row.cell.served,
                row.cell.shed,
                row.cell.failed,
                row.cell.retried,
                row.cell.nodes_lost,
                fmt_opt_num(row.cell.node_seconds),
                fmt_num(row.wall_ms),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::RESULTS_EPOCH;

    fn cell_doc(scenario: &str, rps: f64, seed: f64) -> Value {
        Value::Obj(vec![
            ("app".to_string(), Value::Str("assistant".to_string())),
            ("concurrency".to_string(), Value::Num(1.0)),
            (
                "policies".to_string(),
                Value::Arr(vec![Value::Str("Janus".to_string())]),
            ),
            ("requests".to_string(), Value::Num(30.0)),
            ("rps".to_string(), Value::Num(rps)),
            ("scenario".to_string(), Value::Str(scenario.to_string())),
            ("seed".to_string(), Value::Num(seed)),
        ])
    }

    fn result_doc(attain: f64, shed: u64) -> Value {
        let cell = PolicyCell {
            name: "Janus".into(),
            slo_attainment: attain,
            mean_cpu_millicores: 400.0,
            p99_e2e_s: Some(1.5),
            served: 28 - shed,
            shed,
            failed: 2,
            retried: 0,
            nodes_lost: 0,
            node_seconds: None,
        };
        Value::Obj(vec![(
            "policies".to_string(),
            Value::Arr(vec![cell.to_json()]),
        )])
    }

    #[test]
    fn aggregates_cells_into_sorted_rows_and_marginals() {
        let dir = std::env::temp_dir().join(format!("janus-results-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultsStore::open(&dir).unwrap();
        store
            .save(
                &cell_doc("poisson", 4.0, 11.0),
                RESULTS_EPOCH,
                20.0,
                &result_doc(0.9, 4),
            )
            .unwrap();
        store
            .save(
                &cell_doc("poisson", 2.0, 7.0),
                RESULTS_EPOCH,
                10.0,
                &result_doc(1.0, 0),
            )
            .unwrap();
        store
            .save(
                &cell_doc("bursty", 2.0, 7.0),
                RESULTS_EPOCH,
                15.0,
                &result_doc(0.8, 2),
            )
            .unwrap();

        let report = ResultsReport::from_store(&store).unwrap();
        assert_eq!(report.cells, 3);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.policies(), vec!["Janus"]);
        // Sorted by scenario, then load.
        let order: Vec<(String, f64)> = report
            .rows
            .iter()
            .map(|r| (r.scenario.clone().unwrap(), r.rps.unwrap()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("bursty".to_string(), 2.0),
                ("poisson".to_string(), 2.0),
                ("poisson".to_string(), 4.0)
            ]
        );

        let shown = report.render();
        assert!(shown.contains("Policy rollup"), "{shown}");
        assert!(shown.contains("policy x scenario"), "{shown}");
        assert!(shown.contains("policy x load"), "{shown}");
        assert!(shown.contains("bursty"), "{shown}");
        // Mean attainment over the three rows is 90%.
        assert!(shown.contains("90.0"), "{shown}");

        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 rows: {csv}");
        assert!(lines[0].starts_with("scenario,rps,seed,"), "{csv}");
        assert!(
            lines[1].starts_with("bursty,2,7,,,,Janus,0.8,400,1.5,"),
            "{csv}"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_a_malformed_cell_loudly() {
        let dir =
            std::env::temp_dir().join(format!("janus-results-report-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultsStore::open(&dir).unwrap();
        // A result document with no `policies` member.
        store
            .save(
                &cell_doc("poisson", 2.0, 7.0),
                RESULTS_EPOCH,
                10.0,
                &Value::Obj(vec![]),
            )
            .unwrap();
        let err = ResultsReport::from_store(&store).unwrap_err();
        assert!(err.contains("`policies`"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
