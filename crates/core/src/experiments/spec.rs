//! The declarative, serializable experiment data model: [`SessionSpec`] (one
//! serving session as data) and [`SweepSpec`] (a full evaluation grid as
//! data).
//!
//! A spec is the textual twin of the [`ServingSession`] builder: everything
//! the builder accepts programmatically — app, concurrency, policies, load,
//! scenario, cluster, autoscaler, admission, seed, profiling knobs — can be
//! written down as JSON, checked into `specs/`, and executed with
//! `janus sweep <spec.json>` without writing a line of Rust. Encoding and
//! decoding are hand-rolled over [`janus_json::Value`] (the workspace is
//! shims-only; see `DESIGN.md` §4): [`SweepSpec::to_json`] and
//! [`SweepSpec::from_json`] round-trip byte-identically, and the decoder is
//! *strict* — unknown keys, wrong types and missing required fields all name
//! the offending key, so a typo in a spec file fails loudly instead of
//! silently running the wrong grid.
//!
//! [`SweepSpec::expand`] turns the axes into the cartesian grid of
//! [`SessionSpec`] points (scenario-major, then load, seed, autoscaler,
//! admission); the [`sweep`](crate::experiments::sweep) driver runs them in
//! parallel.

use crate::session::{Load, ServingSession, ServingSessionBuilder, TenantLoad};
use janus_json::{parse, Value};
use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
use janus_simcore::resources::Millicores;
use janus_workloads::apps::PaperApp;
use serde::{Deserialize, Serialize};

/// One serving session described as data: a single point of a sweep grid,
/// or a standalone session spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Application under test.
    pub app: PaperApp,
    /// Batch size (concurrency) requests are served at.
    pub concurrency: u32,
    /// Policy names served on the shared request set (paired comparison).
    pub policies: Vec<String>,
    /// Requests generated per policy.
    pub requests: usize,
    /// Open-loop mean arrival rate; `None` runs the closed loop.
    pub rps: Option<f64>,
    /// Arrival scenario name (open loop only; `None` keeps plain Poisson).
    pub scenario: Option<String>,
    /// Autoscaler name (open loop only; `None` leaves capacity uncontrolled).
    pub autoscaler: Option<String>,
    /// Admission-policy name (open loop only).
    pub admission: Option<String>,
    /// Fault-injector name (open loop only; `None` runs fault-free).
    pub fault: Option<String>,
    /// Observer name (`None` runs unobserved — the zero-cost default).
    pub observer: Option<String>,
    /// Cluster layout; `None` keeps the paper's single 52-core node.
    pub cluster: Option<ClusterConfig>,
    /// Tenant classes merged into the arrival stream (open loop only;
    /// `None` runs the single-stream session).
    pub tenants: Option<Vec<TenantLoad>>,
    /// Request / profiling seed.
    pub seed: u64,
    /// Profiler samples per grid point.
    pub samples_per_point: usize,
    /// Synthesizer budget step in milliseconds.
    pub budget_step_ms: f64,
}

impl SessionSpec {
    /// The equivalent [`ServingSession`] builder: apply every field of the
    /// spec, leave everything else at the builder's defaults.
    pub fn builder(&self) -> ServingSessionBuilder {
        let mut builder = ServingSession::builder()
            .app(self.app)
            .concurrency(self.concurrency)
            .policies(self.policies.clone())
            .seed(self.seed)
            .samples_per_point(self.samples_per_point)
            .budget_step_ms(self.budget_step_ms);
        builder = match self.rps {
            Some(rps) => builder.load(Load::Open {
                requests: self.requests,
                rps,
            }),
            None => builder.load(Load::Closed {
                requests: self.requests,
            }),
        };
        if let Some(scenario) = &self.scenario {
            builder = builder.scenario(scenario);
        }
        if let Some(cluster) = &self.cluster {
            builder = builder.cluster(cluster.clone());
        }
        if let Some(tenants) = &self.tenants {
            builder = builder.tenants(tenants.iter().cloned());
        }
        if let Some(autoscaler) = &self.autoscaler {
            builder = builder.autoscaler(autoscaler);
        }
        if let Some(admission) = &self.admission {
            builder = builder.admission(admission);
        }
        if let Some(fault) = &self.fault {
            builder = builder.fault(fault);
        }
        if let Some(observer) = &self.observer {
            builder = builder.observe(observer);
        }
        builder
    }

    /// Encode as a JSON object (optional fields omitted when unset).
    pub fn to_json(&self) -> Value {
        let mut members = vec![
            ("app".to_string(), Value::Str(self.app.short_name().into())),
            (
                "concurrency".to_string(),
                Value::Num(self.concurrency as f64),
            ),
            (
                "policies".to_string(),
                Value::Arr(
                    self.policies
                        .iter()
                        .map(|p| Value::Str(p.clone()))
                        .collect(),
                ),
            ),
            ("requests".to_string(), Value::Num(self.requests as f64)),
        ];
        if let Some(rps) = self.rps {
            members.push(("rps".to_string(), Value::Num(rps)));
        }
        for (key, field) in [
            ("scenario", &self.scenario),
            ("autoscaler", &self.autoscaler),
            ("admission", &self.admission),
            ("fault", &self.fault),
            ("observer", &self.observer),
        ] {
            if let Some(name) = field {
                members.push((key.to_string(), Value::Str(name.clone())));
            }
        }
        if let Some(cluster) = &self.cluster {
            members.push(("cluster".to_string(), cluster_to_json(cluster)));
        }
        if let Some(tenants) = &self.tenants {
            members.push(("tenants".to_string(), tenants_to_json(tenants)));
        }
        members.push(("seed".to_string(), Value::Num(self.seed as f64)));
        members.push((
            "samples_per_point".to_string(),
            Value::Num(self.samples_per_point as f64),
        ));
        members.push((
            "budget_step_ms".to_string(),
            Value::Num(self.budget_step_ms),
        ));
        Value::Obj(members)
    }
}

/// A full evaluation described as data: the cartesian grid of
/// scenarios × loads × seeds × autoscalers × admissions, each point serving
/// every listed policy on a shared request set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable sweep name (reported in the output document).
    pub name: String,
    /// Application under test.
    pub app: PaperApp,
    /// Batch size (concurrency) requests are served at.
    pub concurrency: u32,
    /// Policy names served at every grid point (the paired axis).
    pub policies: Vec<String>,
    /// Arrival-scenario axis.
    pub scenarios: Vec<String>,
    /// Open-loop mean-arrival-rate axis (requests per second).
    pub loads_rps: Vec<f64>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Autoscaler axis; `None` leaves capacity uncontrolled everywhere.
    pub autoscalers: Option<Vec<String>>,
    /// Admission-policy axis; `None` admits everything everywhere.
    pub admissions: Option<Vec<String>>,
    /// Fault-injector axis; `None` runs every point fault-free.
    pub faults: Option<Vec<String>>,
    /// Observer axis; `None` runs every point unobserved.
    pub observers: Option<Vec<String>>,
    /// Cluster layout; `None` keeps the paper's single 52-core node.
    pub cluster: Option<ClusterConfig>,
    /// Tenant classes merged into every grid point's arrival stream
    /// (`None` runs single-stream sessions). Applies uniformly, like
    /// `cluster` — it multiplies the load at each point, not the grid.
    pub tenants: Option<Vec<TenantLoad>>,
    /// Requests generated per policy per grid point.
    pub requests: usize,
    /// Profiler samples per grid point.
    pub samples_per_point: usize,
    /// Synthesizer budget step in milliseconds.
    pub budget_step_ms: f64,
}

impl SweepSpec {
    /// Structural validity independent of any registry: every axis that must
    /// be non-empty is, and numeric knobs are sane. Name resolution against
    /// the policy/scenario/capacity registries happens in the sweep driver.
    pub fn validate(&self) -> Result<(), String> {
        for (key, empty) in [
            ("policies", self.policies.is_empty()),
            ("scenarios", self.scenarios.is_empty()),
            ("loads_rps", self.loads_rps.is_empty()),
            ("seeds", self.seeds.is_empty()),
            (
                "autoscalers",
                self.autoscalers.as_deref().is_some_and(<[_]>::is_empty),
            ),
            (
                "admissions",
                self.admissions.as_deref().is_some_and(<[_]>::is_empty),
            ),
            (
                "faults",
                self.faults.as_deref().is_some_and(<[_]>::is_empty),
            ),
            (
                "observers",
                self.observers.as_deref().is_some_and(<[_]>::is_empty),
            ),
        ] {
            if empty {
                return Err(format!("`{key}`: axis must not be empty"));
            }
        }
        if let Some(bad) = self
            .loads_rps
            .iter()
            .find(|rps| !(rps.is_finite() && **rps > 0.0))
        {
            return Err(format!("`loads_rps`: rate {bad} must be positive"));
        }
        if self.concurrency == 0 {
            return Err("`concurrency`: must be at least 1".into());
        }
        if self.requests == 0 {
            return Err("`requests`: must be at least 1".into());
        }
        if self.samples_per_point == 0 {
            return Err("`samples_per_point`: must be at least 1".into());
        }
        if !(self.budget_step_ms.is_finite() && self.budget_step_ms > 0.0) {
            return Err(format!(
                "`budget_step_ms`: {} must be positive",
                self.budget_step_ms
            ));
        }
        if let Some(cluster) = &self.cluster {
            cluster.validate().map_err(|e| format!("`cluster`: {e}"))?;
        }
        if let Some(tenants) = &self.tenants {
            if tenants.is_empty() {
                return Err("`tenants`: must list at least one tenant".into());
            }
            for (i, tenant) in tenants.iter().enumerate() {
                if tenant.count == 0 {
                    return Err(format!("`tenants[{i}].count`: must be at least 1"));
                }
                if !(tenant.rps.is_finite() && tenant.rps > 0.0) {
                    return Err(format!(
                        "`tenants[{i}].rps`: rate {} must be positive",
                        tenant.rps
                    ));
                }
                if let Some(ms) = tenant.slo_ms {
                    if !(ms.is_finite() && ms > 0.0) {
                        return Err(format!("`tenants[{i}].slo_ms`: {ms} must be positive"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of grid points the spec expands to.
    pub fn grid_size(&self) -> usize {
        self.scenarios.len()
            * self.loads_rps.len()
            * self.seeds.len()
            * self.autoscalers.as_ref().map_or(1, Vec::len)
            * self.admissions.as_ref().map_or(1, Vec::len)
            * self.faults.as_ref().map_or(1, Vec::len)
            * self.observers.as_ref().map_or(1, Vec::len)
    }

    /// Expand the axes into the cartesian grid of session specs, in
    /// deterministic order: scenario-major, then load, seed, autoscaler,
    /// admission, fault.
    pub fn expand(&self) -> Vec<SessionSpec> {
        let optionals = |axis: &Option<Vec<String>>| -> Vec<Option<String>> {
            match axis {
                Some(names) => names.iter().cloned().map(Some).collect(),
                None => vec![None],
            }
        };
        let autoscalers = optionals(&self.autoscalers);
        let admissions = optionals(&self.admissions);
        let faults = optionals(&self.faults);
        let observers = optionals(&self.observers);
        let mut points = Vec::with_capacity(self.grid_size());
        for scenario in &self.scenarios {
            for &rps in &self.loads_rps {
                for &seed in &self.seeds {
                    for autoscaler in &autoscalers {
                        for admission in &admissions {
                            for fault in &faults {
                                for observer in &observers {
                                    points.push(SessionSpec {
                                        app: self.app,
                                        concurrency: self.concurrency,
                                        policies: self.policies.clone(),
                                        requests: self.requests,
                                        rps: Some(rps),
                                        scenario: Some(scenario.clone()),
                                        autoscaler: autoscaler.clone(),
                                        admission: admission.clone(),
                                        fault: fault.clone(),
                                        observer: observer.clone(),
                                        cluster: self.cluster.clone(),
                                        tenants: self.tenants.clone(),
                                        seed,
                                        samples_per_point: self.samples_per_point,
                                        budget_step_ms: self.budget_step_ms,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Encode as a JSON object. `parse(spec.to_json().to_pretty())` decodes
    /// back to an equal spec, and re-encoding is byte-identical.
    pub fn to_json(&self) -> Value {
        let strings =
            |names: &[String]| Value::Arr(names.iter().map(|n| Value::Str(n.clone())).collect());
        let mut members = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("app".to_string(), Value::Str(self.app.short_name().into())),
            (
                "concurrency".to_string(),
                Value::Num(self.concurrency as f64),
            ),
            ("policies".to_string(), strings(&self.policies)),
            ("scenarios".to_string(), strings(&self.scenarios)),
            (
                "loads_rps".to_string(),
                Value::Arr(self.loads_rps.iter().map(|&r| Value::Num(r)).collect()),
            ),
            (
                "seeds".to_string(),
                Value::Arr(self.seeds.iter().map(|&s| Value::Num(s as f64)).collect()),
            ),
        ];
        if let Some(autoscalers) = &self.autoscalers {
            members.push(("autoscalers".to_string(), strings(autoscalers)));
        }
        if let Some(admissions) = &self.admissions {
            members.push(("admissions".to_string(), strings(admissions)));
        }
        if let Some(faults) = &self.faults {
            members.push(("faults".to_string(), strings(faults)));
        }
        if let Some(observers) = &self.observers {
            members.push(("observers".to_string(), strings(observers)));
        }
        if let Some(cluster) = &self.cluster {
            members.push(("cluster".to_string(), cluster_to_json(cluster)));
        }
        if let Some(tenants) = &self.tenants {
            members.push(("tenants".to_string(), tenants_to_json(tenants)));
        }
        members.push(("requests".to_string(), Value::Num(self.requests as f64)));
        members.push((
            "samples_per_point".to_string(),
            Value::Num(self.samples_per_point as f64),
        ));
        members.push((
            "budget_step_ms".to_string(),
            Value::Num(self.budget_step_ms),
        ));
        Value::Obj(members)
    }

    /// Decode a spec from a parsed JSON document. Strict: unknown keys,
    /// wrong types and missing required fields all report the offending key.
    pub fn from_json(doc: &Value) -> Result<SweepSpec, String> {
        let obj = Decoder::new(
            doc,
            &[
                "name",
                "app",
                "concurrency",
                "policies",
                "scenarios",
                "loads_rps",
                "seeds",
                "autoscalers",
                "admissions",
                "faults",
                "observers",
                "cluster",
                "tenants",
                "requests",
                "samples_per_point",
                "budget_step_ms",
            ],
        )?;
        let spec = SweepSpec {
            name: obj.string("name")?,
            app: obj.app("app")?,
            concurrency: obj.u32_or("concurrency", 1)?,
            policies: obj.string_list("policies")?,
            scenarios: obj.string_list("scenarios")?,
            loads_rps: obj.f64_list("loads_rps")?,
            seeds: obj.u64_list_or("seeds", &[7])?,
            autoscalers: obj.optional_string_list("autoscalers")?,
            admissions: obj.optional_string_list("admissions")?,
            faults: obj.optional_string_list("faults")?,
            observers: obj.optional_string_list("observers")?,
            cluster: obj.cluster("cluster")?,
            tenants: obj.tenants("tenants")?,
            requests: obj.usize("requests")?,
            samples_per_point: obj.usize_or("samples_per_point", 1000)?,
            budget_step_ms: obj.f64_or("budget_step_ms", 1.0)?,
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl std::str::FromStr for SweepSpec {
    type Err = String;

    /// Decode a spec from JSON text (the `janus sweep <spec.json>` entry
    /// point).
    fn from_str(text: &str) -> Result<SweepSpec, String> {
        SweepSpec::from_json(&parse(text).map_err(|e| format!("spec is not valid JSON: {e}"))?)
    }
}

fn cluster_to_json(cluster: &ClusterConfig) -> Value {
    let mut members = vec![
        ("nodes".to_string(), Value::Num(cluster.nodes as f64)),
        (
            "node_capacity_mc".to_string(),
            Value::Num(cluster.node_capacity.get() as f64),
        ),
        (
            "placement".to_string(),
            Value::Str(
                match cluster.placement {
                    PlacementPolicy::Spread => "spread",
                    PlacementPolicy::PackSameFunction => "pack",
                }
                .to_string(),
            ),
        ),
    ];
    // Emitted only for multi-zone topologies, so single-zone specs written
    // before zones existed still round-trip byte-identically.
    if cluster.zones > 1 {
        members.push(("zones".to_string(), Value::Num(cluster.zones as f64)));
    }
    Value::Obj(members)
}

fn tenants_to_json(tenants: &[TenantLoad]) -> Value {
    Value::Arr(
        tenants
            .iter()
            .map(|tenant| {
                let mut members = vec![
                    ("count".to_string(), Value::Num(tenant.count as f64)),
                    ("scenario".to_string(), Value::Str(tenant.scenario.clone())),
                    ("rps".to_string(), Value::Num(tenant.rps)),
                ];
                // Emitted only when set, so SLO-less tenant specs round-trip
                // byte-identically.
                if let Some(ms) = tenant.slo_ms {
                    members.push(("slo_ms".to_string(), Value::Num(ms)));
                }
                Value::Obj(members)
            })
            .collect(),
    )
}

/// Strict object decoder with key-qualified error messages.
struct Decoder<'a> {
    obj: &'a [(String, Value)],
}

impl<'a> Decoder<'a> {
    fn new(doc: &'a Value, known_keys: &[&str]) -> Result<Self, String> {
        let Value::Obj(obj) = doc else {
            return Err("spec must be a JSON object".into());
        };
        for (key, _) in obj {
            if !known_keys.contains(&key.as_str()) {
                return Err(format!(
                    "unknown key `{key}`; expected one of: {}",
                    known_keys.join(", ")
                ));
            }
        }
        let mut seen: Vec<&str> = Vec::new();
        for (key, _) in obj {
            if seen.contains(&key.as_str()) {
                return Err(format!("duplicate key `{key}`"));
            }
            seen.push(key);
        }
        Ok(Decoder { obj })
    }

    fn get(&self, key: &str) -> Option<&'a Value> {
        self.obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn required(&self, key: &str) -> Result<&'a Value, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required key `{key}`"))
    }

    fn string(&self, key: &str) -> Result<String, String> {
        self.required(key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("`{key}`: expected a string"))
    }

    fn app(&self, key: &str) -> Result<PaperApp, String> {
        let name = self.string(key)?;
        PaperApp::ALL
            .into_iter()
            .find(|app| app.short_name() == name)
            .ok_or_else(|| {
                format!(
                    "`{key}`: unknown app `{name}`; expected one of: {}",
                    PaperApp::ALL.map(|a| a.short_name()).join(", ")
                )
            })
    }

    fn finite(&self, key: &str, value: &Value) -> Result<f64, String> {
        value
            .as_f64()
            .ok_or_else(|| format!("`{key}`: expected a number"))
    }

    fn integer(&self, key: &str, value: &Value) -> Result<u64, String> {
        // JSON numbers are f64s; above 2^53 an integer-looking value may
        // already have been rounded, so a spec carrying one would silently
        // run something other than what the file records. Reject it.
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        let n = self.finite(key, value)?;
        // janus-lint: allow(float-cmp) — exactness is the point: fract() must be exactly zero for an integer-valued f64
        if n < 0.0 || n.fract() != 0.0 || n > MAX_EXACT {
            return Err(format!(
                "`{key}`: expected a non-negative integer (at most 2^53), got {n}"
            ));
        }
        Ok(n as u64)
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        Ok(self.integer(key, self.required(key)?)? as usize)
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            Some(value) => Ok(self.integer(key, value)? as usize),
            None => Ok(default),
        }
    }

    fn u32_or(&self, key: &str, default: u32) -> Result<u32, String> {
        match self.get(key) {
            Some(value) => {
                let n = self.integer(key, value)?;
                u32::try_from(n).map_err(|_| format!("`{key}`: {n} does not fit in u32"))
            }
            None => Ok(default),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            Some(value) => self.finite(key, value),
            None => Ok(default),
        }
    }

    fn array(&self, key: &str, value: &'a Value) -> Result<&'a [Value], String> {
        value
            .as_array()
            .ok_or_else(|| format!("`{key}`: expected an array"))
    }

    fn string_list_from(&self, key: &str, value: &'a Value) -> Result<Vec<String>, String> {
        self.array(key, value)?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("`{key}[{i}]`: expected a string"))
            })
            .collect()
    }

    fn string_list(&self, key: &str) -> Result<Vec<String>, String> {
        self.string_list_from(key, self.required(key)?)
    }

    fn optional_string_list(&self, key: &str) -> Result<Option<Vec<String>>, String> {
        match self.get(key) {
            Some(value) => Ok(Some(self.string_list_from(key, value)?)),
            None => Ok(None),
        }
    }

    fn f64_list(&self, key: &str) -> Result<Vec<f64>, String> {
        self.array(key, self.required(key)?)?
            .iter()
            .enumerate()
            .map(|(i, v)| self.finite(&format!("{key}[{i}]"), v))
            .collect()
    }

    fn u64_list_or(&self, key: &str, default: &[u64]) -> Result<Vec<u64>, String> {
        match self.get(key) {
            Some(value) => self
                .array(key, value)?
                .iter()
                .enumerate()
                .map(|(i, v)| self.integer(&format!("{key}[{i}]"), v))
                .collect(),
            None => Ok(default.to_vec()),
        }
    }

    fn tenants(&self, key: &str) -> Result<Option<Vec<TenantLoad>>, String> {
        let Some(value) = self.get(key) else {
            return Ok(None);
        };
        let items = self.array(key, value)?;
        let mut tenants = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let label = format!("{key}[{i}]");
            let qualify = |e: String| format!("`{label}`: {e}");
            let obj = Decoder::new(item, &["count", "scenario", "rps", "slo_ms"])
                .map_err(|e| qualify(format!("tenant {e}")))?;
            let slo_ms = match obj.get("slo_ms") {
                Some(v) => Some(obj.finite(&format!("{label}.slo_ms"), v)?),
                None => None,
            };
            tenants.push(TenantLoad {
                count: obj.usize("count").map_err(qualify)?,
                scenario: obj.string("scenario").map_err(qualify)?,
                rps: obj.finite(
                    &format!("{label}.rps"),
                    obj.required("rps").map_err(qualify)?,
                )?,
                slo_ms,
            });
        }
        Ok(Some(tenants))
    }

    fn cluster(&self, key: &str) -> Result<Option<ClusterConfig>, String> {
        let Some(value) = self.get(key) else {
            return Ok(None);
        };
        let obj = Decoder::new(value, &["nodes", "node_capacity_mc", "placement", "zones"])
            .map_err(|e| format!("`{key}`: {e}"))?;
        let placement = match obj.string("placement")?.as_str() {
            "spread" => PlacementPolicy::Spread,
            "pack" => PlacementPolicy::PackSameFunction,
            other => {
                return Err(format!(
                    "`{key}.placement`: unknown placement `{other}`; expected `spread` or `pack`"
                ))
            }
        };
        let node_capacity = obj.usize("node_capacity_mc")?;
        let node_capacity = u32::try_from(node_capacity).map_err(|_| {
            format!("`{key}.node_capacity_mc`: {node_capacity} does not fit in u32")
        })?;
        Ok(Some(ClusterConfig {
            nodes: obj.usize("nodes")?,
            node_capacity: Millicores(node_capacity),
            placement,
            zones: obj.usize_or("zones", 1)?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr as _;

    pub(crate) fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            app: PaperApp::IntelligentAssistant,
            concurrency: 1,
            policies: vec!["GrandSLAM".into(), "Janus".into()],
            scenarios: vec!["poisson".into(), "flash-crowd".into()],
            loads_rps: vec![2.0],
            seeds: vec![7, 11],
            autoscalers: None,
            admissions: None,
            faults: None,
            observers: None,
            cluster: None,
            tenants: None,
            requests: 30,
            samples_per_point: 250,
            budget_step_ms: 10.0,
        }
    }

    #[test]
    fn expansion_is_the_ordered_cartesian_grid() {
        let mut spec = tiny_spec();
        spec.autoscalers = Some(vec!["static".into(), "queue-depth".into()]);
        spec.admissions = Some(vec!["token-bucket".into()]);
        assert_eq!(spec.grid_size(), 8);
        let points = spec.expand();
        assert_eq!(points.len(), spec.grid_size());
        // Scenario-major order; within a scenario, seeds then autoscalers.
        assert_eq!(points[0].scenario.as_deref(), Some("poisson"));
        assert_eq!(points[0].seed, 7);
        assert_eq!(points[0].autoscaler.as_deref(), Some("static"));
        assert_eq!(points[1].autoscaler.as_deref(), Some("queue-depth"));
        assert_eq!(points[2].seed, 11);
        assert_eq!(points[4].scenario.as_deref(), Some("flash-crowd"));
        for point in &points {
            assert_eq!(point.policies, spec.policies);
            assert_eq!(point.rps, Some(2.0));
            assert_eq!(point.admission.as_deref(), Some("token-bucket"));
        }
        // Without capacity axes, the grid leaves capacity uncontrolled.
        let plain = tiny_spec().expand();
        assert_eq!(plain.len(), 4);
        assert!(plain.iter().all(|p| p.autoscaler.is_none()));
    }

    #[test]
    fn specs_round_trip_through_json_byte_identically() {
        let mut spec = tiny_spec();
        spec.autoscalers = Some(vec!["utilization".into()]);
        spec.cluster = Some(ClusterConfig {
            nodes: 2,
            node_capacity: Millicores::from_cores(8),
            placement: PlacementPolicy::Spread,
            zones: 1,
        });
        let first = spec.to_json().to_pretty();
        let decoded = SweepSpec::from_str(&first).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(decoded.to_json().to_pretty(), first);
        // Session specs round-trip structurally too (their JSON view is
        // embedded in sweep outputs).
        let point = spec.expand().remove(0);
        let doc = point.to_json();
        assert_eq!(
            doc.get("scenario").and_then(|v| v.as_str()),
            Some("poisson")
        );
        assert_eq!(
            doc.get("cluster")
                .and_then(|c| c.get("node_capacity_mc"))
                .and_then(|v| v.as_f64()),
            Some(8000.0)
        );
    }

    #[test]
    fn fault_axis_and_zones_round_trip_and_expand_innermost() {
        let mut spec = tiny_spec();
        spec.scenarios = vec!["flash-crowd".into()];
        spec.seeds = vec![7];
        spec.autoscalers = Some(vec!["static".into(), "utilization".into()]);
        spec.faults = Some(vec!["zone-outage".into(), "node-crash".into()]);
        spec.cluster = Some(ClusterConfig {
            nodes: 4,
            node_capacity: Millicores::from_cores(8),
            placement: PlacementPolicy::Spread,
            zones: 2,
        });
        assert_eq!(spec.grid_size(), 4);
        let points = spec.expand();
        // Fault is the innermost axis.
        assert_eq!(points[0].fault.as_deref(), Some("zone-outage"));
        assert_eq!(points[1].fault.as_deref(), Some("node-crash"));
        assert_eq!(points[0].autoscaler, points[1].autoscaler);
        assert_eq!(points[2].autoscaler.as_deref(), Some("utilization"));
        // Byte-identical JSON round-trip, zones included.
        let text = spec.to_json().to_pretty();
        let decoded = SweepSpec::from_str(&text).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(decoded.to_json().to_pretty(), text);
        assert!(text.contains("\"zones\""), "{text}");
        // Single-zone clusters keep the pre-zones encoding (no `zones` key).
        let mut flat = tiny_spec();
        flat.cluster = Some(ClusterConfig {
            zones: 1,
            ..spec.cluster.clone().unwrap()
        });
        assert!(!flat.to_json().to_pretty().contains("\"zones\""));
        // Session specs carry the fault through to the JSON view.
        let doc = points[0].to_json();
        assert_eq!(
            doc.get("fault").and_then(|v| v.as_str()),
            Some("zone-outage")
        );
        // An empty faults axis is rejected like every other axis.
        let err = SweepSpec {
            faults: Some(vec![]),
            ..tiny_spec()
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("`faults`"), "{err}");
    }

    #[test]
    fn observer_axis_rides_innermost_and_round_trips() {
        let mut spec = tiny_spec();
        spec.scenarios = vec!["flash-crowd".into()];
        spec.seeds = vec![7];
        spec.faults = Some(vec!["zone-outage".into()]);
        spec.observers = Some(vec!["flight-recorder".into(), "spans".into()]);
        assert_eq!(spec.grid_size(), 2);
        let points = spec.expand();
        assert_eq!(points[0].observer.as_deref(), Some("flight-recorder"));
        assert_eq!(points[1].observer.as_deref(), Some("spans"));
        assert_eq!(points[0].fault, points[1].fault);
        // Byte-identical JSON round-trip.
        let text = spec.to_json().to_pretty();
        let decoded = SweepSpec::from_str(&text).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(decoded.to_json().to_pretty(), text);
        // Session specs carry the observer through to the JSON view.
        let doc = points[0].to_json();
        assert_eq!(
            doc.get("observer").and_then(|v| v.as_str()),
            Some("flight-recorder")
        );
        // Unobserved specs keep the pre-observer encoding.
        assert!(!tiny_spec().to_json().to_pretty().contains("observers"));
        let err = SweepSpec {
            observers: Some(vec![]),
            ..tiny_spec()
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("`observers`"), "{err}");
    }

    #[test]
    fn tenant_specs_round_trip_and_errors_name_the_tenant_key() {
        let mut spec = tiny_spec();
        spec.tenants = Some(vec![
            TenantLoad {
                count: 2,
                scenario: "bursty".into(),
                rps: 1.5,
                slo_ms: Some(1500.0),
            },
            TenantLoad {
                count: 1,
                scenario: "flash-crowd".into(),
                rps: 3.0,
                slo_ms: None,
            },
        ]);
        let text = spec.to_json().to_pretty();
        let decoded = SweepSpec::from_str(&text).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(decoded.to_json().to_pretty(), text);
        // Every expanded point carries the tenants through to its session
        // spec and JSON view.
        let points = spec.expand();
        assert!(points.iter().all(|p| p.tenants == spec.tenants));
        let doc = points[0].to_json();
        let tenants = doc.get("tenants").unwrap().as_array().unwrap();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].get("count").and_then(|v| v.as_f64()), Some(2.0));
        assert!(tenants[1].get("slo_ms").is_none());
        // Tenant-less specs keep the pre-tenancy encoding.
        assert!(!tiny_spec().to_json().to_pretty().contains("tenants"));
        // Strict decoding points at the offending tenant key.
        let base = r#""name": "x", "app": "IA", "policies": ["Janus"],
                       "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5"#;
        let cases: &[(&str, &str)] = &[
            (
                r#""tenants": [{"scenario": "bursty", "rps": 1.0}]"#,
                "`tenants[0]`: missing required key `count`",
            ),
            (
                r#""tenants": [{"count": 1, "scenario": "bursty", "rps": 1.0, "burst": 2}]"#,
                "`tenants[0]`: tenant unknown key `burst`",
            ),
            (
                r#""tenants": [{"count": 1, "scenario": "bursty", "rps": "fast"}]"#,
                "`tenants[0].rps`: expected a number",
            ),
            (
                r#""tenants": [{"count": 0, "scenario": "bursty", "rps": 1.0}]"#,
                "`tenants[0].count`: must be at least 1",
            ),
            (
                r#""tenants": [{"count": 1, "scenario": "bursty", "rps": 1.0,
                               "slo_ms": -5}]"#,
                "`tenants[0].slo_ms`: -5 must be positive",
            ),
            (r#""tenants": []"#, "`tenants`: must list at least one"),
        ];
        for (tenants, needle) in cases {
            let err = SweepSpec::from_str(&format!("{{{base}, {tenants}}}")).unwrap_err();
            assert!(err.contains(needle), "expected `{needle}` in `{err}`");
        }
    }

    #[test]
    fn decoding_applies_defaults_and_stays_minimal() {
        let spec = SweepSpec::from_str(
            r#"{
                "name": "minimal",
                "app": "VA",
                "policies": ["GrandSLAM"],
                "scenarios": ["bursty"],
                "loads_rps": [1.5],
                "requests": 50
            }"#,
        )
        .unwrap();
        assert_eq!(spec.app, PaperApp::VideoAnalyze);
        assert_eq!(spec.concurrency, 1);
        assert_eq!(spec.seeds, vec![7]);
        assert_eq!(spec.samples_per_point, 1000);
        assert!((spec.budget_step_ms - 1.0).abs() < 1e-12);
        assert!(spec.autoscalers.is_none() && spec.cluster.is_none());
    }

    #[test]
    fn decode_errors_name_the_offending_key() {
        let cases: &[(&str, &str)] = &[
            (r#"[1, 2]"#, "spec must be a JSON object"),
            (r#"{"nome": "x"}"#, "unknown key `nome`"),
            (r#"{"app": "IA"}"#, "missing required key `name`"),
            (
                r#"{"name": "x", "app": "Lambda", "policies": ["Janus"],
                    "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5}"#,
                "`app`: unknown app `Lambda`",
            ),
            (
                r#"{"name": "x", "app": "IA", "policies": ["Janus", 3],
                    "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5}"#,
                "`policies[1]`: expected a string",
            ),
            (
                r#"{"name": "x", "app": "IA", "policies": ["Janus"],
                    "scenarios": [], "loads_rps": [1.0], "requests": 5}"#,
                "`scenarios`: axis must not be empty",
            ),
            (
                r#"{"name": "x", "app": "IA", "policies": ["Janus"],
                    "scenarios": ["poisson"], "loads_rps": [-1.0], "requests": 5}"#,
                "`loads_rps`: rate -1 must be positive",
            ),
            (
                r#"{"name": "x", "app": "IA", "policies": ["Janus"],
                    "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5,
                    "seeds": [1.5]}"#,
                "`seeds[0]`: expected a non-negative integer",
            ),
            (
                // 2^64: integer-shaped but outside what an f64 represents
                // exactly; must be rejected, not saturated to u64::MAX.
                r#"{"name": "x", "app": "IA", "policies": ["Janus"],
                    "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5,
                    "seeds": [18446744073709551616]}"#,
                "`seeds[0]`: expected a non-negative integer",
            ),
            (
                r#"{"name": "x", "app": "IA", "policies": ["Janus"],
                    "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5,
                    "concurrency": 0}"#,
                "`concurrency`: must be at least 1",
            ),
            (
                r#"{"name": "x", "app": "IA", "policies": ["Janus"],
                    "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5,
                    "cluster": {"nodes": 2, "node_capacity_mc": 8000,
                                "placement": "tetris"}}"#,
                "`cluster.placement`: unknown placement `tetris`",
            ),
            (
                r#"{"name": "x", "app": "IA", "policies": ["Janus"],
                    "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5,
                    "cluster": {"nodes": 2}}"#,
                "missing required key `placement`",
            ),
            (
                r#"{"name": "x", "name": "y", "app": "IA", "policies": ["Janus"],
                    "scenarios": ["poisson"], "loads_rps": [1.0], "requests": 5}"#,
                "duplicate key `name`",
            ),
        ];
        for (text, needle) in cases {
            let err = SweepSpec::from_str(text).unwrap_err();
            assert!(err.contains(needle), "expected `{needle}` in `{err}`");
        }
    }

    #[test]
    fn session_specs_build_runnable_sessions() {
        let spec = tiny_spec();
        let point = &spec.expand()[0];
        let session = point.builder().build().unwrap();
        assert_eq!(session.policies(), &["GrandSLAM", "Janus"]);
        // Closed-loop spec: rps omitted.
        let closed = SessionSpec {
            rps: None,
            scenario: None,
            ..point.clone()
        };
        let report = closed.builder().run().unwrap();
        assert_eq!(report.load, Load::Closed { requests: 30 });
    }
}
