//! Synthesizer-centric experiments: Figures 6 and 8, Table II and the system
//! overhead report (§V-C, §V-E, §V-F, §V-H).

use crate::comparison::{self, ComparisonConfig, PolicyKind};
use crate::deployment::{DeploymentConfig, JanusDeployment};
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_simcore::time::SimDuration;
use janus_synthesizer::synthesizer::{Synthesizer, SynthesizerConfig};
use janus_workloads::apps::PaperApp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Figure 6: resource consumption and synthesis time of Janus vs Janus⁺
/// across SLOs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// SLOs evaluated (seconds).
    pub slos_s: Vec<f64>,
    /// Mean per-request CPU (millicores) of Janus per SLO.
    pub janus_cpu: Vec<f64>,
    /// Mean per-request CPU (millicores) of Janus⁺ per SLO.
    pub janus_plus_cpu: Vec<f64>,
    /// Hint-synthesis wall-clock time (seconds) of Janus per SLO.
    pub janus_time_s: Vec<f64>,
    /// Hint-synthesis wall-clock time (seconds) of Janus⁺ per SLO.
    pub janus_plus_time_s: Vec<f64>,
}

impl Fig6Result {
    /// Mean relative CPU saving of Janus⁺ over Janus (paper: ≈ 0.6 %).
    pub fn mean_plus_saving(&self) -> f64 {
        let diffs: Vec<f64> = self
            .janus_cpu
            .iter()
            .zip(&self.janus_plus_cpu)
            .map(|(j, p)| (j - p) / j)
            .collect();
        diffs.iter().sum::<f64>() / diffs.len().max(1) as f64
    }

    /// Mean synthesis-time blow-up of Janus⁺ over Janus (paper: up to ~107×).
    pub fn mean_time_blowup(&self) -> f64 {
        let ratios: Vec<f64> = self
            .janus_time_s
            .iter()
            .zip(&self.janus_plus_time_s)
            .map(|(j, p)| p / j.max(1e-9))
            .collect();
        ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
    }
}

/// Run Figure 6 for IA: serve under Janus and Janus⁺ at each SLO and record
/// the synthesis time of each hints bundle.
pub fn fig6_exploration_cost(
    slos_s: &[f64],
    base: &ComparisonConfig,
) -> Result<Fig6Result, String> {
    let mut result = Fig6Result {
        slos_s: slos_s.to_vec(),
        janus_cpu: Vec::new(),
        janus_plus_cpu: Vec::new(),
        janus_time_s: Vec::new(),
        janus_plus_time_s: Vec::new(),
    };
    for &slo in slos_s {
        let config = ComparisonConfig {
            slo: SimDuration::from_secs(slo),
            policies: vec![PolicyKind::Janus, PolicyKind::JanusPlus],
            ..base.clone()
        };
        let outcome = comparison::run(&config)?;
        result.janus_cpu.push(
            outcome
                .report(PolicyKind::Janus)
                .expect("janus in run")
                .mean_cpu_millicores(),
        );
        result.janus_plus_cpu.push(
            outcome
                .report(PolicyKind::JanusPlus)
                .expect("janus+ in run")
                .mean_cpu_millicores(),
        );
        let time_of = |variant: &str| {
            outcome
                .synthesis
                .iter()
                .find(|s| s.variant == variant)
                .map(|s| s.synthesis_time_ms / 1000.0)
                .unwrap_or(0.0)
        };
        result.janus_time_s.push(time_of("Janus"));
        result.janus_plus_time_s.push(time_of("Janus+"));
    }
    Ok(result)
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Figure 6: Janus vs Janus+ across SLOs (IA)")?;
        writeln!(
            f,
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            "SLO (s)", "Janus mc", "Janus+ mc", "Janus t(s)", "Janus+ t(s)"
        )?;
        for i in 0..self.slos_s.len() {
            writeln!(
                f,
                "{:>8.1} {:>12.1} {:>12.1} {:>12.3} {:>12.3}",
                self.slos_s[i],
                self.janus_cpu[i],
                self.janus_plus_cpu[i],
                self.janus_time_s[i],
                self.janus_plus_time_s[i]
            )?;
        }
        writeln!(
            f,
            "mean Janus+ CPU saving: {:.2}%",
            self.mean_plus_saving() * 100.0
        )?;
        writeln!(
            f,
            "mean Janus+ synthesis-time blow-up: {:.1}x",
            self.mean_time_blowup()
        )
    }
}

/// Figure 8: number of condensed hints per weight.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Weights evaluated.
    pub weights: Vec<f64>,
    /// `(series label, hint count per weight, compression ratio per weight)`.
    pub series: Vec<(String, Vec<usize>, Vec<f64>)>,
}

/// Run Figure 8: condensed-hint counts for IA (concurrency 1–3, budget ranges
/// 2–7 s / 3–7 s / 4–10 s) and VA (1.5–2 s), for weights 1–3.
pub fn fig8_hint_counts(
    weights: &[f64],
    samples_per_point: usize,
    seed: u64,
) -> Result<Fig8Result, String> {
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point,
        seed,
        ..ProfilerConfig::default()
    })?;
    // (label, app, concurrency, explicit full-workflow budget range in ms).
    let setups: [(&str, PaperApp, u32, (f64, f64)); 4] = [
        (
            "IA conc=1",
            PaperApp::IntelligentAssistant,
            1,
            (2000.0, 7000.0),
        ),
        (
            "IA conc=2",
            PaperApp::IntelligentAssistant,
            2,
            (3000.0, 7000.0),
        ),
        (
            "IA conc=3",
            PaperApp::IntelligentAssistant,
            3,
            (4000.0, 10000.0),
        ),
        ("VA conc=1", PaperApp::VideoAnalyze, 1, (1500.0, 2000.0)),
    ];
    let mut series = Vec::new();
    for (label, app, conc, range) in setups {
        let profile = profiler.profile_workflow(&app.workflow(), conc);
        let mut counts = Vec::new();
        let mut compressions = Vec::new();
        for &w in weights {
            let synthesizer = Synthesizer::new(SynthesizerConfig {
                weight: w,
                full_range_ms: Some(range),
                ..SynthesizerConfig::default()
            })?;
            let (bundle, report) = synthesizer.synthesize(&profile);
            counts.push(bundle.total_hints());
            compressions.push(report.compression_ratio);
        }
        series.push((label.to_string(), counts, compressions));
    }
    Ok(Fig8Result {
        weights: weights.to_vec(),
        series,
    })
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# Figure 8: number of condensed hints vs head weight")?;
        write!(f, "{:>12}", "weight")?;
        for w in &self.weights {
            write!(f, "{w:>8.1}")?;
        }
        writeln!(f)?;
        for (label, counts, compressions) in &self.series {
            write!(f, "{label:>12}")?;
            for c in counts {
                write!(f, "{c:>8}")?;
            }
            writeln!(f, "   (compression {:.1}%)", compressions[0] * 100.0)?;
        }
        Ok(())
    }
}

/// Table II: impact of the head weight on the head function's allocation and
/// chosen percentile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// Rows `(weight, mean head millicores, mean head percentile)`.
    pub rows: Vec<(f64, f64, f64)>,
}

/// Compute Table II: the budget-weighted average head allocation and head
/// percentile of the full-workflow hints table under each weight, over the
/// 4–10 s budget window §V-E sweeps.
pub fn table2_weight_impact(
    weights: &[f64],
    samples_per_point: usize,
    seed: u64,
) -> Result<Table2Result, String> {
    let profiler = Profiler::new(ProfilerConfig {
        samples_per_point,
        seed,
        ..ProfilerConfig::default()
    })?;
    let profile = profiler.profile_workflow(&PaperApp::IntelligentAssistant.workflow(), 1);
    let window = (4000.0, 10_000.0);
    let mut rows = Vec::new();
    for &w in weights {
        let synthesizer = Synthesizer::new(SynthesizerConfig {
            weight: w,
            full_range_ms: Some(window),
            ..SynthesizerConfig::default()
        })?;
        let (bundle, _) = synthesizer.synthesize(&profile);
        let table = bundle.table_after(0).expect("full-workflow table exists");
        let mut cores_acc = 0.0;
        let mut pct_acc = 0.0;
        let mut span_acc = 0.0;
        for row in table.rows() {
            let span = (row.end_ms.min(window.1) - row.start_ms.max(window.0)).max(0.0);
            if span <= 0.0 {
                continue;
            }
            cores_acc += f64::from(row.head_cores.get()) * span;
            pct_acc += row.head_percentile.value() * span;
            span_acc += span;
        }
        if span_acc > 0.0 {
            rows.push((w, cores_acc / span_acc, pct_acc / span_acc));
        } else {
            rows.push((w, f64::NAN, f64::NAN));
        }
    }
    Ok(Table2Result { rows })
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Table II: head-function allocation and percentile vs weight (IA)"
        )?;
        writeln!(
            f,
            "{:>8} {:>16} {:>14}",
            "weight", "CPU (millicore)", "percentile (%)"
        )?;
        for (w, cpu, pct) in &self.rows {
            writeln!(f, "{w:>8.1} {cpu:>16.1} {pct:>14.1}")?;
        }
        Ok(())
    }
}

/// §V-H system overhead: online adaptation latency and hints memory footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadResult {
    /// Rows `(workflow, mean decision µs, max decision µs, bundle bytes,
    /// condensed hints, synthesis ms)`.
    pub rows: Vec<(String, f64, f64, usize, usize, f64)>,
}

/// Measure the online overhead for IA and VA: build each deployment, drive
/// `decisions_per_workflow` adapter decisions across the budget range, and
/// report decision latency plus the hints-table footprint.
pub fn overhead_report(
    decisions_per_workflow: usize,
    samples_per_point: usize,
    seed: u64,
) -> Result<OverheadResult, String> {
    let mut rows = Vec::new();
    for app in PaperApp::ALL {
        let deployment = JanusDeployment::build(&DeploymentConfig {
            samples_per_point,
            seed,
            budget_step_ms: 2.0,
            ..DeploymentConfig::paper_default(app, 1)
        })?;
        let mut policy = deployment.policy();
        let slo_ms = app.default_slo(1).as_millis();
        use janus_platform::policy::{RequestContext, SizingPolicy};
        let ctx = RequestContext {
            request_id: 0,
            slo: app.default_slo(1),
            concurrency: 1,
            workflow_len: deployment.workflow().len(),
        };
        for i in 0..decisions_per_workflow {
            let budget = SimDuration::from_millis(
                slo_ms * (0.3 + 0.7 * (i as f64 / decisions_per_workflow as f64)),
            );
            let index = i % deployment.workflow().len();
            let _ = policy.size_next(&ctx, index, budget);
        }
        rows.push((
            app.short_name().to_string(),
            policy.adapter().mean_decision_time_us(),
            policy.adapter().max_decision_time_us(),
            deployment.bundle().approx_size_bytes(),
            deployment.bundle().total_hints(),
            deployment.report().synthesis_time_ms,
        ));
    }
    Ok(OverheadResult { rows })
}

impl fmt::Display for OverheadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# System overhead (§V-H)")?;
        writeln!(
            f,
            "{:>4} {:>14} {:>14} {:>12} {:>8} {:>14}",
            "wf", "mean dec (µs)", "max dec (µs)", "hints bytes", "hints", "synth (ms)"
        )?;
        for (wf, mean_us, max_us, bytes, hints, synth_ms) in &self.rows {
            writeln!(
                f,
                "{wf:>4} {mean_us:>14.2} {max_us:>14.2} {bytes:>12} {hints:>8} {synth_ms:>14.1}"
            )?;
        }
        Ok(())
    }
}

use crate::experiments::api::{Experiment, ExperimentCtx, ExperimentOutput, Scale};

/// `fig6` as a registered [`Experiment`].
pub struct Fig6Experiment;

impl Experiment for Fig6Experiment {
    fn name(&self) -> &str {
        "fig6"
    }

    fn describe(&self) -> &str {
        "Figure 6: resource and synthesis-time cost of Janus vs Janus+ across SLOs"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let slos: &[f64] = match ctx.scale {
            Scale::Paper => &[3.0, 4.0, 5.0, 6.0, 7.0],
            Scale::Quick => &[3.0, 5.0, 7.0],
        };
        let base = ctx.comparison(PaperApp::IntelligentAssistant, 1);
        Ok(ExperimentOutput::single(fig6_exploration_cost(
            slos, &base,
        )?))
    }
}

/// `fig8` as a registered [`Experiment`].
pub struct Fig8Experiment;

impl Experiment for Fig8Experiment {
    fn name(&self) -> &str {
        "fig8"
    }

    fn describe(&self) -> &str {
        "Figure 8: number of condensed hints for IA and VA under different weights"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(fig8_hint_counts(
            &[1.0, 1.5, 2.0, 2.5, 3.0],
            ctx.profile_samples(),
            ctx.seed_or(0xF8),
        )?))
    }
}

/// `table2` as a registered [`Experiment`].
pub struct Table2Experiment;

impl Experiment for Table2Experiment {
    fn name(&self) -> &str {
        "table2"
    }

    fn describe(&self) -> &str {
        "Table II: head-function allocation and percentile under weights 1 and 3"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        Ok(ExperimentOutput::single(table2_weight_impact(
            &[1.0, 3.0],
            ctx.profile_samples(),
            ctx.seed_or(0x72),
        )?))
    }
}

/// `overhead` as a registered [`Experiment`].
pub struct OverheadExperiment;

impl Experiment for OverheadExperiment {
    fn name(&self) -> &str {
        "overhead"
    }

    fn describe(&self) -> &str {
        "System overhead (§V-H): online adaptation latency and hints memory footprint"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, String> {
        let decisions = match ctx.scale {
            Scale::Paper => 20_000,
            Scale::Quick => 2_000,
        };
        Ok(ExperimentOutput::single(overhead_report(
            decisions,
            ctx.profile_samples(),
            ctx.seed_or(0x0B),
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_workloads::apps::PaperApp;

    #[test]
    fn fig8_hint_counts_shrink_with_weight_and_stay_compact() {
        let r = fig8_hint_counts(&[1.0, 3.0], 250, 17).unwrap();
        assert_eq!(r.series.len(), 4);
        for (label, counts, compressions) in &r.series {
            assert_eq!(counts.len(), 2);
            // §V-F: hints stay compact (IA < ~150, VA < ~100) and condensing
            // achieves > 90 % compression.
            assert!(counts[0] < 400, "{label}: {} hints", counts[0]);
            assert!(
                counts[1] <= counts[0] + 30,
                "{label}: weight 3 should not blow up the table"
            );
            assert!(
                compressions.iter().all(|&c| c > 0.8),
                "{label} compression {compressions:?}"
            );
        }
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn table2_weight_3_lowers_head_cores_and_percentile() {
        let r = table2_weight_impact(&[1.0, 3.0], 250, 19).unwrap();
        assert_eq!(r.rows.len(), 2);
        let (w1, cpu1, pct1) = r.rows[0];
        let (w3, cpu3, pct3) = r.rows[1];
        assert_eq!(w1, 1.0);
        assert_eq!(w3, 3.0);
        assert!(cpu3 <= cpu1 + 1e-9, "weight 3 head cpu {cpu3} vs {cpu1}");
        assert!(pct3 <= pct1 + 1e-9, "weight 3 percentile {pct3} vs {pct1}");
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn overhead_stays_well_under_three_milliseconds() {
        let r = overhead_report(500, 250, 23).unwrap();
        assert_eq!(r.rows.len(), 2);
        for (wf, mean_us, max_us, bytes, hints, _) in &r.rows {
            assert!(*mean_us < 3000.0, "{wf} mean decision {mean_us} µs");
            assert!(*max_us >= *mean_us);
            assert!(*bytes > 0 && *hints > 0);
            assert!(
                *bytes < 12 * 1024 * 1024,
                "{wf} bundle {bytes} bytes under 12 MB"
            );
        }
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn fig6_janus_plus_gains_little_but_costs_much_more_time() {
        let base = ComparisonConfig {
            requests: 100,
            samples_per_point: 250,
            budget_step_ms: 10.0,
            ..ComparisonConfig::paper_default(PaperApp::IntelligentAssistant, 1)
        };
        let r = fig6_exploration_cost(&[3.0, 5.0], &base).unwrap();
        assert_eq!(r.slos_s.len(), 2);
        // Janus+ never uses more CPU than Janus (larger search space)…
        assert!(
            r.mean_plus_saving() > -0.02,
            "saving {}",
            r.mean_plus_saving()
        );
        assert!(
            r.mean_plus_saving() < 0.10,
            "saving should be small: {}",
            r.mean_plus_saving()
        );
        // …and never pays a *lower* synthesis cost (the memoised DP keeps the
        // blow-up far below the paper's 107x).
        assert!(
            r.mean_time_blowup() > 0.5,
            "blow-up {}",
            r.mean_time_blowup()
        );
        assert!(!format!("{r}").is_empty());
    }
}
