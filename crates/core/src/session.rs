//! One entry point for serving: the [`ServingSession`] builder.
//!
//! Before this module, running a policy against a workload meant choosing
//! between three incompatible surfaces: `ComparisonConfig` + `comparison::run`
//! for paired comparisons, a hand-wired
//! [`ClosedLoopExecutor`], or a
//! hand-wired [`OpenLoopSimulation`]
//! for Poisson arrivals. A session unifies them:
//!
//! ```
//! use janus_core::session::{Load, ServingSession};
//!
//! let report = ServingSession::builder()
//!     .app(janus_core::workloads::apps::PaperApp::IntelligentAssistant)
//!     .concurrency(1)
//!     .policy("Janus")
//!     .policy("GrandSLAM")
//!     .load(Load::Closed { requests: 50 })
//!     .quick() // test-scale profiling; drop for paper scale
//!     .run()
//!     .expect("session runs");
//! assert_eq!(report.names(), vec!["Janus", "GrandSLAM"]);
//! assert!(report.slo_attainment("Janus").unwrap() >= 0.9);
//! ```
//!
//! Policies are resolved by name through a [`PolicyRegistry`] — by default
//! the built-in seven of the paper; register your own factory on the builder
//! and serve it by name without touching any `janus-*` crate. Every policy in
//! the session replays the *same* request set (paired comparison, as in the
//! paper's evaluation), whether the load is closed- or open-loop.
//!
//! Open-loop sessions additionally choose *when* those requests arrive:
//! [`arrivals`](ServingSessionBuilder::arrivals) accepts any
//! [`ArrivalProcess`], and
//! [`scenario`](ServingSessionBuilder::scenario) resolves one by name from a
//! [`ScenarioRegistry`] (`"poisson"`, `"diurnal"`, `"bursty"`,
//! `"flash-crowd"`, `"trace-replay"`, or anything registered downstream).
//! `Load::Open { rps }` without a scenario stays the constant-rate Poisson
//! special case, reproducing the historical request stream bit for bit.

use crate::registry::{PolicyContext, PolicyFactory, PolicyRegistry, SynthesisSettings};
use janus_chaos::{FaultContext, FaultRegistry, FaultSchedule};
use janus_observe::{Observer, ObserverContext, ObserverRegistry, ObserverReport};
use janus_platform::capacity::{AdmissionRegistry, AutoscalerRegistry, CapacityContext};
use janus_platform::executor::{ClosedLoopExecutor, ExecutorConfig};
use janus_platform::metrics::ServingMetrics;
use janus_platform::openloop::{
    CapacityControls, OpenLoopArena, OpenLoopConfig, OpenLoopSimulation,
};
use janus_platform::outcome::ServingReport;
use janus_profiler::profiler::{Profiler, ProfilerConfig};
use janus_scenarios::{
    tenant_stream_seed, ArrivalProcess, MergedRequestSource, ScenarioContext, ScenarioRegistry,
};
use janus_simcore::cluster::ClusterConfig;
use janus_simcore::metrics::{MetricsRegistry, MetricsSnapshot};
use janus_simcore::resources::CoreGrid;
use janus_simcore::time::SimDuration;
use janus_synthesizer::synthesizer::SynthesisReport;
use janus_workloads::apps::PaperApp;
use janus_workloads::request::{
    InterArrivalSampler, PoissonGaps, RequestInput, RequestInputGenerator, RequestSource as _,
};
use janus_workloads::workflow::Workflow;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How requests are offered to the platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Load {
    /// Closed loop: `requests` replayed back-to-back, one in flight at a
    /// time — the paper's evaluation methodology (§V).
    Closed {
        /// Number of requests replayed per policy.
        requests: usize,
    },
    /// Open loop: `requests` arrive as a Poisson process at `rps` requests
    /// per second; several are in flight at once and co-located instances
    /// interfere — the production-shaped extension.
    Open {
        /// Number of requests generated per policy.
        requests: usize,
        /// Mean arrival rate (requests per second).
        rps: f64,
    },
}

impl Load {
    /// Number of requests this load generates.
    pub fn requests(&self) -> usize {
        match *self {
            Load::Closed { requests } | Load::Open { requests, .. } => requests,
        }
    }

    fn mean_inter_arrival(&self) -> Result<SimDuration, String> {
        match *self {
            Load::Closed { .. } => Ok(SimDuration::ZERO),
            Load::Open { rps, .. } => {
                if !(rps.is_finite() && rps > 0.0) {
                    return Err(format!("open-loop rps must be positive, got {rps}"));
                }
                Ok(SimDuration::from_millis(1000.0 / rps))
            }
        }
    }
}

/// One tenant class sharing an open-loop session: `count` independent
/// arrival streams, each drawing the named scenario at `rps` requests per
/// second. Tenant streams are merged with the session's primary stream by
/// next-arrival time (see [`MergedRequestSource`]); every stream derives its
/// own RNG stream from the session seed via [`tenant_stream_seed`], so
/// adding a tenant never perturbs another tenant's draws and the merged run
/// is reproducible bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantLoad {
    /// Number of identical independent streams this tenant contributes.
    pub count: usize,
    /// Arrival-scenario name, resolved from the session's
    /// [`ScenarioRegistry`] (built-ins: `poisson`, `diurnal`, `bursty`,
    /// `flash-crowd`, `trace-replay`).
    pub scenario: String,
    /// Mean arrival rate per stream (requests per second).
    pub rps: f64,
    /// Optional per-tenant end-to-end SLO in milliseconds. The session
    /// serves every request under one SLO, so the *strictest* tenant wins:
    /// the run SLO becomes the minimum of the session SLO and every tenant
    /// SLO present.
    pub slo_ms: Option<f64>,
}

/// How an open-loop session decides request arrival times. `None` keeps the
/// legacy constant-rate Poisson process of `Load::Open { rps }`.
#[derive(Debug, Clone)]
enum ArrivalSpec {
    /// An explicit arrival process instance.
    Process(Arc<dyn ArrivalProcess>),
    /// A scenario name, resolved from the session's [`ScenarioRegistry`] at
    /// run time (the registry needs the load's `rps` as base rate).
    Named(String),
}

/// Builder for a [`ServingSession`]. Obtain with [`ServingSession::builder`].
#[derive(Debug, Clone)]
pub struct ServingSessionBuilder {
    app: Option<PaperApp>,
    workflow: Option<Workflow>,
    slo: Option<SimDuration>,
    concurrency: u32,
    policies: Vec<String>,
    load: Load,
    arrivals: Option<ArrivalSpec>,
    tenants: Option<Vec<TenantLoad>>,
    cluster: Option<ClusterConfig>,
    autoscaler: Option<String>,
    admission: Option<String>,
    fault: Option<String>,
    observer: Option<String>,
    seed: u64,
    samples_per_point: usize,
    synthesis: SynthesisSettings,
    count_startup_delays: bool,
    registry: PolicyRegistry,
    scenarios: ScenarioRegistry,
    autoscalers: AutoscalerRegistry,
    admissions: AdmissionRegistry,
    faults: FaultRegistry,
    observers: ObserverRegistry,
}

impl Default for ServingSessionBuilder {
    fn default() -> Self {
        ServingSessionBuilder {
            app: None,
            workflow: None,
            slo: None,
            concurrency: 1,
            policies: Vec::new(),
            load: Load::Closed { requests: 1000 },
            arrivals: None,
            tenants: None,
            cluster: None,
            autoscaler: None,
            admission: None,
            fault: None,
            observer: None,
            seed: 7,
            samples_per_point: 1000,
            synthesis: SynthesisSettings::default(),
            count_startup_delays: true,
            registry: PolicyRegistry::with_builtins(),
            scenarios: ScenarioRegistry::with_builtins(),
            autoscalers: AutoscalerRegistry::with_builtins(),
            admissions: AdmissionRegistry::with_builtins(),
            faults: FaultRegistry::with_builtins(),
            observers: ObserverRegistry::with_builtins(),
        }
    }
}

impl ServingSessionBuilder {
    /// Serve one of the paper's applications (workflow + default SLO).
    pub fn app(mut self, app: PaperApp) -> Self {
        self.app = Some(app);
        self
    }

    /// Serve a custom workflow. Requires an explicit [`slo`](Self::slo).
    pub fn workflow(mut self, workflow: Workflow) -> Self {
        self.workflow = Some(workflow);
        self
    }

    /// End-to-end latency SLO. Defaults to the app's paper SLO when an app
    /// is set; mandatory for custom workflows.
    pub fn slo(mut self, slo: SimDuration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Batch size (concurrency) requests are served at. Default 1.
    pub fn concurrency(mut self, concurrency: u32) -> Self {
        self.concurrency = concurrency;
        self
    }

    /// Add one policy by registered name ("Janus+", "ORION", …). Call
    /// repeatedly to build a paired comparison; order is preserved.
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.policies.push(name.into());
        self
    }

    /// Add several policies by name.
    pub fn policies<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.policies.extend(names.into_iter().map(Into::into));
        self
    }

    /// Request load. Default: `Load::Closed { requests: 1000 }`.
    pub fn load(mut self, load: Load) -> Self {
        self.load = load;
        self
    }

    /// Drive an open-loop session with an explicit
    /// [`ArrivalProcess`] instead of the
    /// default constant-rate Poisson process. Requires `Load::Open` (its
    /// `rps` documents the intended mean rate; the process defines the
    /// shape). Overrides any earlier [`scenario`](Self::scenario) call.
    pub fn arrivals(mut self, process: Arc<dyn ArrivalProcess>) -> Self {
        self.arrivals = Some(ArrivalSpec::Process(process));
        self
    }

    /// Drive an open-loop session with a named scenario from the session's
    /// [`ScenarioRegistry`] (built-ins: `poisson`, `diurnal`, `bursty`,
    /// `flash-crowd`, `trace-replay`). The scenario is built with
    /// `Load::Open`'s `rps` as its base rate, so every scenario offers the
    /// same long-run load in a different shape. Overrides any earlier
    /// [`arrivals`](Self::arrivals) call.
    pub fn scenario(mut self, name: impl Into<String>) -> Self {
        self.arrivals = Some(ArrivalSpec::Named(name.into()));
        self
    }

    /// Share the open loop with additional tenant classes: each
    /// [`TenantLoad`] contributes `count` independent arrival streams of its
    /// own scenario at its own rate, merged with the session's primary
    /// stream by next-arrival time. The session's `Load::Open { requests }`
    /// is the *total* budget across all streams, so a faster tenant
    /// naturally contributes proportionally more of the run. Requires
    /// `Load::Open`; every policy still replays the identical merged
    /// request set (paired comparison).
    pub fn tenants<I>(mut self, tenants: I) -> Self
    where
        I: IntoIterator<Item = TenantLoad>,
    {
        self.tenants = Some(tenants.into_iter().collect());
        self
    }

    /// Replace the scenario registry (default: the built-in five).
    pub fn scenario_registry(mut self, scenarios: ScenarioRegistry) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Serve on a custom cluster layout (node count, per-node capacity,
    /// placement policy) instead of the paper's single 52-core node —
    /// elasticity experiments start from a small multi-node fleet.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Drive an open-loop session under a named autoscaler from the
    /// session's [`AutoscalerRegistry`] (built-ins: `static`, `utilization`,
    /// `queue-depth`). Requires `Load::Open`; a fresh autoscaler is built
    /// for every policy run so paired comparisons stay paired.
    pub fn autoscaler(mut self, name: impl Into<String>) -> Self {
        self.autoscaler = Some(name.into());
        self
    }

    /// Gate open-loop arrivals with a named admission policy from the
    /// session's [`AdmissionRegistry`] (built-ins: `admit-all`,
    /// `token-bucket`, `queue-shed`). Requires `Load::Open`; shed requests
    /// are recorded as `Shed` outcomes in every [`ServingReport`].
    pub fn admission(mut self, name: impl Into<String>) -> Self {
        self.admission = Some(name.into());
        self
    }

    /// Inject a named fault schedule from the session's [`FaultRegistry`]
    /// (built-ins: `node-crash`, `spot-preempt`, `zone-outage`, `slow-node`).
    /// Requires `Load::Open`; the schedule is rebuilt from the session seed
    /// for every policy run, so paired comparisons face the identical,
    /// bit-reproducible fault sequence. Interrupted requests are retried or
    /// recorded as `Failed` outcomes in every [`ServingReport`].
    pub fn fault(mut self, name: impl Into<String>) -> Self {
        self.fault = Some(name.into());
        self
    }

    /// Replace the fault-injector registry (default: the built-in four).
    pub fn fault_registry(mut self, faults: FaultRegistry) -> Self {
        self.faults = faults;
        self
    }

    /// Register an additional fault injector on this session's registry.
    pub fn register_fault_fn<F>(mut self, name: impl Into<String>, schedule: F) -> Self
    where
        F: Fn(&FaultContext) -> Result<FaultSchedule, String> + Send + Sync + 'static,
    {
        self.faults.register_fn(name, schedule);
        self
    }

    /// Attach a named observer from the session's [`ObserverRegistry`]
    /// (built-ins: `ring`, `trace`, `spans`, `time-series`,
    /// `flight-recorder`). A fresh observer is built per policy run and
    /// receives every lifecycle record (and, on capacity-controlled open
    /// loops, every capacity-tick telemetry sample); its
    /// [`ObserverReport`] lands in the policy's
    /// [`PolicyReport::flight`]. Sessions without an observer pay nothing:
    /// the serving loops never construct a record.
    pub fn observe(mut self, name: impl Into<String>) -> Self {
        self.observer = Some(name.into());
        self
    }

    /// Replace the observer registry (default: the built-in five).
    pub fn observer_registry(mut self, observers: ObserverRegistry) -> Self {
        self.observers = observers;
        self
    }

    /// Register an additional observer factory on this session's registry.
    pub fn register_observer_fn<F>(mut self, name: impl Into<String>, build: F) -> Self
    where
        F: Fn(&ObserverContext) -> Result<Box<dyn Observer>, String> + Send + Sync + 'static,
    {
        self.observers.register_fn(name, build);
        self
    }

    /// Replace the autoscaler registry (default: the built-in three).
    pub fn autoscaler_registry(mut self, autoscalers: AutoscalerRegistry) -> Self {
        self.autoscalers = autoscalers;
        self
    }

    /// Replace the admission registry (default: the built-in three).
    pub fn admission_registry(mut self, admissions: AdmissionRegistry) -> Self {
        self.admissions = admissions;
        self
    }

    /// Register an additional autoscaler factory on this session's registry.
    pub fn register_autoscaler_fn<F>(mut self, name: impl Into<String>, build: F) -> Self
    where
        F: Fn(
                &CapacityContext,
            ) -> Result<Box<dyn janus_platform::capacity::AutoscalerPolicy>, String>
            + Send
            + Sync
            + 'static,
    {
        self.autoscalers.register_fn(name, build);
        self
    }

    /// Register an additional admission factory on this session's registry.
    pub fn register_admission_fn<F>(mut self, name: impl Into<String>, build: F) -> Self
    where
        F: Fn(
                &CapacityContext,
            ) -> Result<Box<dyn janus_platform::capacity::AdmissionPolicy>, String>
            + Send
            + Sync
            + 'static,
    {
        self.admissions.register_fn(name, build);
        self
    }

    /// Register an additional scenario factory on this session's registry.
    pub fn register_scenario_fn<F>(mut self, name: impl Into<String>, build: F) -> Self
    where
        F: Fn(&ScenarioContext) -> Result<Box<dyn ArrivalProcess>, String> + Send + Sync + 'static,
    {
        self.scenarios.register_fn(name, build);
        self
    }

    /// Master seed for request generation and profiling. Default 7.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Profiler samples per (allocation, concurrency) grid point.
    /// Default 1000 (the paper's scale).
    pub fn samples_per_point(mut self, samples: usize) -> Self {
        self.samples_per_point = samples;
        self
    }

    /// Budget sweep granularity for hint synthesis, in ms. Default 1.0.
    pub fn budget_step_ms(mut self, step: f64) -> Self {
        self.synthesis.budget_step_ms = step;
        self
    }

    /// Head-function weight `W` for hint synthesis. Default 1.0.
    pub fn weight(mut self, weight: f64) -> Self {
        self.synthesis.weight = weight;
        self
    }

    /// Whether pod startup delays count against latency. Default true.
    pub fn count_startup_delays(mut self, count: bool) -> Self {
        self.count_startup_delays = count;
        self
    }

    /// Replace the policy registry (default: the built-in seven).
    pub fn registry(mut self, registry: PolicyRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Register an additional policy factory on this session's registry.
    pub fn register(mut self, factory: Arc<dyn PolicyFactory>) -> Self {
        self.registry.register(factory);
        self
    }

    /// Register a closure-based policy factory on this session's registry.
    pub fn register_fn<F>(mut self, name: impl Into<String>, build: F) -> Self
    where
        F: Fn(&PolicyContext<'_>) -> Result<crate::registry::BuiltPolicy, String>
            + Send
            + Sync
            + 'static,
    {
        self.registry.register_fn(name, build);
        self
    }

    /// Reduced scale for tests and smoke runs: fewer profiler samples and a
    /// coarser synthesis sweep, preserving every code path.
    pub fn quick(mut self) -> Self {
        self.samples_per_point = 300;
        self.synthesis.budget_step_ms = 5.0;
        self
    }

    /// Validate and finalise the session.
    pub fn build(self) -> Result<ServingSession, String> {
        let (workflow, app) = match (self.workflow, self.app) {
            (Some(_), Some(_)) => {
                // Accepting both would silently serve the custom workflow
                // under the app's default SLO and batching rules.
                return Err("set either .app(..) or .workflow(..), not both".into());
            }
            (Some(workflow), None) => (workflow, None),
            (None, Some(app)) => (app.workflow(), Some(app)),
            (None, None) => {
                return Err("session needs .app(..) or .workflow(..)".into());
            }
        };
        if workflow.is_empty() {
            return Err("cannot serve an empty workflow".into());
        }
        if self.concurrency == 0 {
            return Err("concurrency must be at least 1".into());
        }
        if app == Some(PaperApp::VideoAnalyze) && self.concurrency > 1 {
            return Err("VA cannot batch (FE and ICO are non-batchable); use concurrency 1".into());
        }
        let slo = match (self.slo, app) {
            (Some(slo), _) => slo,
            (None, Some(app)) => app.default_slo(self.concurrency),
            (None, None) => {
                return Err("custom workflows need an explicit .slo(..)".into());
            }
        };
        if slo <= SimDuration::ZERO {
            return Err("SLO must be positive".into());
        }
        if self.policies.is_empty() {
            return Err(format!(
                "session needs at least one .policy(..); registered: {}",
                self.registry.names().join(", ")
            ));
        }
        // Reports are addressed by name, so a duplicate would run but be
        // unreachable through every SessionReport accessor.
        for (i, name) in self.policies.iter().enumerate() {
            if self.policies[..i].contains(name) {
                return Err(format!("policy `{name}` was added twice"));
            }
        }
        if self.load.requests() == 0 {
            return Err("load must offer at least one request".into());
        }
        self.load.mean_inter_arrival()?;
        if let Some(spec) = &self.arrivals {
            if matches!(self.load, Load::Closed { .. }) {
                return Err(
                    "arrival scenarios need .load(Load::Open { .. }) — a closed loop has no \
                     arrival process"
                        .into(),
                );
            }
            if let ArrivalSpec::Named(name) = spec {
                self.scenarios.ensure_known(name)?;
            }
        }
        let mut slo = slo;
        if let Some(tenants) = &self.tenants {
            if matches!(self.load, Load::Closed { .. }) {
                return Err(
                    "tenant streams (.tenants(..)) need .load(Load::Open { .. }) — a closed \
                     loop has no arrival timeline to merge streams on"
                        .into(),
                );
            }
            if tenants.is_empty() {
                return Err("`tenants`: must list at least one tenant".into());
            }
            for (i, tenant) in tenants.iter().enumerate() {
                if tenant.count == 0 {
                    return Err(format!("`tenants[{i}].count`: must be at least 1"));
                }
                if !(tenant.rps.is_finite() && tenant.rps > 0.0) {
                    return Err(format!(
                        "`tenants[{i}].rps`: rate {} must be positive",
                        tenant.rps
                    ));
                }
                self.scenarios
                    .ensure_known(&tenant.scenario)
                    .map_err(|e| format!("`tenants[{i}].scenario`: {e}"))?;
                if let Some(ms) = tenant.slo_ms {
                    if !(ms.is_finite() && ms > 0.0) {
                        return Err(format!("`tenants[{i}].slo_ms`: {ms} must be positive"));
                    }
                    // The strictest tenant SLO governs the whole run.
                    let tenant_slo = SimDuration::from_millis(ms);
                    if tenant_slo < slo {
                        slo = tenant_slo;
                    }
                }
            }
        }
        if let Some(cluster) = &self.cluster {
            cluster.validate().map_err(|e| e.to_string())?;
        }
        if self.autoscaler.is_some() || self.admission.is_some() {
            if matches!(self.load, Load::Closed { .. }) {
                return Err("capacity control (.autoscaler(..) / .admission(..)) needs \
                     .load(Load::Open { .. }) — a closed loop has no arrivals to gate or \
                     fleet pressure to scale"
                    .into());
            }
            if let Some(name) = &self.autoscaler {
                self.autoscalers.ensure_known(name)?;
            }
            if let Some(name) = &self.admission {
                self.admissions.ensure_known(name)?;
            }
        }
        if let Some(name) = &self.fault {
            if matches!(self.load, Load::Closed { .. }) {
                return Err(
                    "fault injection (.fault(..)) needs .load(Load::Open { .. }) — a \
                     closed loop has no arrival timeline to schedule faults on"
                        .into(),
                );
            }
            self.faults.ensure_known(name)?;
        }
        if let Some(name) = &self.observer {
            // Observers attach to closed loops too (record streams without
            // tick telemetry), so no Load::Open requirement here.
            self.observers.ensure_known(name)?;
        }
        if self.samples_per_point == 0 {
            return Err("samples_per_point must be at least 1".into());
        }
        Ok(ServingSession {
            workflow,
            slo,
            concurrency: self.concurrency,
            policies: self.policies,
            load: self.load,
            arrivals: self.arrivals,
            tenants: self.tenants,
            cluster: self.cluster,
            autoscaler: self.autoscaler,
            admission: self.admission,
            fault: self.fault,
            observer: self.observer,
            seed: self.seed,
            samples_per_point: self.samples_per_point,
            synthesis: self.synthesis,
            count_startup_delays: self.count_startup_delays,
            registry: self.registry,
            scenarios: self.scenarios,
            autoscalers: self.autoscalers,
            admissions: self.admissions,
            faults: self.faults,
            observers: self.observers,
        })
    }

    /// Build and immediately run the session.
    pub fn run(self) -> Result<SessionReport, String> {
        self.build()?.run()
    }
}

/// Reborrow an owned per-policy observer as the `Option<&mut dyn Observer>`
/// hook the serving loops take. A named function (rather than
/// `as_deref_mut()` inline) so the trait-object lifetime coercion from
/// `dyn Observer + 'static` to the loop-local lifetime has an explicit
/// coercion site — and so the borrow ends with the call, letting the
/// session `finish()` the observer afterwards.
fn observer_hook<'a>(
    observer: &'a mut Option<Box<dyn Observer>>,
) -> Option<&'a mut (dyn Observer + 'a)> {
    match observer.as_deref_mut() {
        Some(o) => Some(o),
        None => None,
    }
}

/// A validated serving session: one workflow, one SLO, one load shape, any
/// number of registered policies replaying the same requests.
#[derive(Debug)]
pub struct ServingSession {
    workflow: Workflow,
    slo: SimDuration,
    concurrency: u32,
    policies: Vec<String>,
    load: Load,
    arrivals: Option<ArrivalSpec>,
    tenants: Option<Vec<TenantLoad>>,
    cluster: Option<ClusterConfig>,
    autoscaler: Option<String>,
    admission: Option<String>,
    fault: Option<String>,
    observer: Option<String>,
    seed: u64,
    samples_per_point: usize,
    synthesis: SynthesisSettings,
    count_startup_delays: bool,
    registry: PolicyRegistry,
    scenarios: ScenarioRegistry,
    autoscalers: AutoscalerRegistry,
    admissions: AdmissionRegistry,
    faults: FaultRegistry,
    observers: ObserverRegistry,
}

impl ServingSession {
    /// Start building a session.
    pub fn builder() -> ServingSessionBuilder {
        ServingSessionBuilder::default()
    }

    /// The workflow this session serves.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// The SLO requests are served under.
    pub fn slo(&self) -> SimDuration {
        self.slo
    }

    /// The policy names that will run, in order.
    pub fn policies(&self) -> &[String] {
        &self.policies
    }

    /// The session's policy registry.
    pub fn registry(&self) -> &PolicyRegistry {
        &self.registry
    }

    /// The arrival process of this session, if one was configured (either an
    /// explicit process or a resolved scenario name).
    fn arrival_process(&self) -> Result<Option<Arc<dyn ArrivalProcess>>, String> {
        match &self.arrivals {
            None => Ok(None),
            Some(ArrivalSpec::Process(process)) => Ok(Some(Arc::clone(process))),
            Some(ArrivalSpec::Named(name)) => {
                let base_rps = match self.load {
                    Load::Open { rps, .. } => rps,
                    // build() rejects scenarios on closed loads.
                    Load::Closed { .. } => unreachable!("validated in build()"),
                };
                let ctx = ScenarioContext {
                    base_rps,
                    requests: self.load.requests(),
                    seed: self.seed,
                };
                Ok(Some(Arc::from(self.scenarios.build(name, &ctx)?)))
            }
        }
    }

    /// Profile the workflow, generate one request set, and replay it under
    /// every configured policy. Deterministic in the session seed: running
    /// twice yields identical reports.
    pub fn run(&self) -> Result<SessionReport, String> {
        // Metric names resolve exactly once per session; every policy run
        // records through the same pre-interned handles.
        let metrics_registry = MetricsRegistry::new();
        let metrics = ServingMetrics::intern(&metrics_registry);
        let mut arena = OpenLoopArena::new();
        self.run_in(&mut arena, &metrics_registry, &metrics)
    }

    /// [`run`](Self::run) with caller-provided scratch state: the open-loop
    /// arena and the interned metric handles. Sweep drivers running many
    /// sessions back-to-back pass the same arena/handles for every grid
    /// point, so the engine heap, in-flight table and metric interning are
    /// paid once per worker thread instead of once per point. The registry
    /// is reset on entry (handles stay attached), so the embedded snapshot
    /// is identical to a fresh run's.
    pub fn run_in(
        &self,
        arena: &mut OpenLoopArena,
        metrics_registry: &MetricsRegistry,
        metrics: &ServingMetrics,
    ) -> Result<SessionReport, String> {
        metrics_registry.reset();
        let profiler = Profiler::new(ProfilerConfig {
            samples_per_point: self.samples_per_point,
            seed: self.seed ^ 0x5EED,
            ..ProfilerConfig::default()
        })?;
        let profile = profiler.profile_workflow(&self.workflow, self.concurrency);

        // The arrival gaps share the generator's RNG stream, so the
        // scenario-less cases reproduce the historical streams draw for
        // draw (the Poisson sampler is the `Load::Open { rps }` shim) and a
        // "poisson" scenario is bit-identical to plain `Load::Open`.
        let process = self.arrival_process()?;
        let primary_sampler = |load: &Load| -> Result<Box<dyn InterArrivalSampler>, String> {
            Ok(match &process {
                Some(process) => process.sampler(),
                None => Box::new(PoissonGaps::new(load.mean_inter_arrival()?)),
            })
        };
        let requests: Vec<RequestInput> = match &self.tenants {
            None => RequestInputGenerator::with_sampler(self.seed, primary_sampler(&self.load)?)
                .generate(&self.workflow, self.load.requests()),
            Some(tenants) => {
                // Stream 0 is the session's own arrival process; each tenant
                // replica is an independent stream with a well-separated RNG
                // stream. The merge yields the total request budget in
                // global arrival order with globally re-sequenced ids, so
                // the session stays a drop-in replacement for a
                // single-stream run downstream — the policy context, the
                // paired comparison and the profiling path all see one
                // contiguous request set. (The bounded-memory streaming
                // path skips this materialization; see the `flash_scale`
                // experiment.)
                let mut generators = vec![RequestInputGenerator::with_sampler(
                    tenant_stream_seed(self.seed, 0),
                    primary_sampler(&self.load)?,
                )];
                let mut stream: u64 = 1;
                for tenant in tenants {
                    for _ in 0..tenant.count {
                        let seed = tenant_stream_seed(self.seed, stream);
                        let ctx = ScenarioContext {
                            base_rps: tenant.rps,
                            requests: self.load.requests(),
                            seed,
                        };
                        let sampler = self.scenarios.build(&tenant.scenario, &ctx)?.sampler();
                        generators.push(RequestInputGenerator::with_sampler(seed, sampler));
                        stream += 1;
                    }
                }
                let mut merged = MergedRequestSource::new(generators, self.load.requests())?;
                let mut requests = Vec::with_capacity(self.load.requests());
                while let Some(req) = merged.next_request(&self.workflow) {
                    requests.push(req);
                }
                requests
            }
        };

        let mut exec_config = ExecutorConfig {
            count_startup_delays: self.count_startup_delays,
            ..ExecutorConfig::paper_serving(self.slo, self.concurrency)
        };
        if let Some(cluster) = &self.cluster {
            exec_config.cluster = cluster.clone();
        }
        let ctx = PolicyContext {
            workflow: &self.workflow,
            profile: &profile,
            slo: self.slo,
            concurrency: self.concurrency,
            requests: &requests,
            grid: CoreGrid::paper_default(),
            interference: &exec_config.interference,
            seed: self.seed,
            synthesis: self.synthesis,
        };

        let mut policies = Vec::with_capacity(self.policies.len());
        for name in &self.policies {
            let mut built = self.registry.build(name, &ctx)?;
            // A fresh observer per policy run, seeded from the session: the
            // trace of every column of a paired comparison samples the same
            // request ids, and reruns are byte-identical. Sessions without
            // an observer skip the build entirely — the serving loops see
            // `None` and never construct a record.
            let mut observer: Option<Box<dyn Observer>> = match &self.observer {
                Some(observer_name) => {
                    let observer_ctx = ObserverContext {
                        seed: self.seed,
                        policy: name.clone(),
                        requests: self.load.requests(),
                        zones: exec_config.cluster.zones,
                        slo: self.slo,
                    };
                    Some(self.observers.build(observer_name, &observer_ctx)?)
                }
                None => None,
            };
            let serving = match self.load {
                Load::Closed { .. } => {
                    ClosedLoopExecutor::new(self.workflow.clone(), exec_config.clone()).run_traced(
                        built.policy.as_mut(),
                        &requests,
                        Some(metrics),
                        observer_hook(&mut observer),
                    )
                }
                Load::Open { rps, .. } => {
                    let open_config = OpenLoopConfig {
                        slo: self.slo,
                        concurrency: self.concurrency,
                        cluster: exec_config.cluster.clone(),
                        pool: exec_config.pool.clone(),
                        interference: exec_config.interference.clone(),
                        count_startup_delays: self.count_startup_delays,
                    };
                    let sim = OpenLoopSimulation::new(self.workflow.clone(), open_config);
                    if self.autoscaler.is_some() || self.admission.is_some() || self.fault.is_some()
                    {
                        // Fresh capacity policies per policy run: every
                        // column of the paired comparison faces identical
                        // control loops with identical initial state.
                        let capacity_ctx = CapacityContext {
                            base_rps: rps,
                            requests: self.load.requests(),
                            initial_nodes: exec_config.cluster.nodes,
                            slo: self.slo,
                        };
                        let autoscaler_name = self.autoscaler.as_deref().unwrap_or("static");
                        let admission_name = self.admission.as_deref().unwrap_or("admit-all");
                        let mut autoscaler =
                            self.autoscalers.build(autoscaler_name, &capacity_ctx)?;
                        let mut admission = self.admissions.build(admission_name, &capacity_ctx)?;
                        // The fault schedule is rebuilt from the session seed
                        // for each policy run, so every column of the paired
                        // comparison replays the identical fault sequence.
                        let fault_schedule = match &self.fault {
                            Some(name) => {
                                let fault_ctx = FaultContext {
                                    seed: self.seed,
                                    initial_nodes: exec_config.cluster.nodes,
                                    zones: exec_config.cluster.zones,
                                    base_rps: rps,
                                    requests: self.load.requests(),
                                    slo: self.slo,
                                };
                                Some(self.faults.build(name, &fault_ctx)?)
                            }
                            None => None,
                        };
                        let mut serving = sim.run_traced(
                            built.policy.as_mut(),
                            &requests,
                            &mut *arena,
                            Some(metrics),
                            Some(CapacityControls {
                                autoscaler: autoscaler.as_mut(),
                                admission: admission.as_mut(),
                                faults: fault_schedule,
                            }),
                            observer_hook(&mut observer),
                        )?;
                        if let Some(capacity) = serving.capacity.as_mut() {
                            // Report the *registered* names: a custom factory
                            // may wrap a built-in whose self-reported name
                            // differs from the name it was registered under.
                            capacity.autoscaler = autoscaler_name.to_string();
                            capacity.admission = admission_name.to_string();
                            if let Some(name) = &self.fault {
                                capacity.injector = Some(name.clone());
                            }
                        }
                        serving
                    } else {
                        sim.run_traced(
                            built.policy.as_mut(),
                            &requests,
                            &mut *arena,
                            Some(metrics),
                            None,
                            observer_hook(&mut observer),
                        )?
                    }
                }
            };
            policies.push(PolicyReport {
                name: name.clone(),
                mean_decision_time_us: built.policy.mean_decision_time_us(),
                serving,
                synthesis: built.synthesis,
                flight: observer.as_mut().map(|o| o.finish()),
            });
        }

        let report = SessionReport {
            workflow: self.workflow.name().to_string(),
            slo: self.slo,
            concurrency: self.concurrency,
            load: self.load,
            scenario: process.map(|p| p.name().to_string()),
            tenants: self.tenants.clone(),
            autoscaler: self.autoscaler.clone(),
            admission: self.admission.clone(),
            fault: self.fault.clone(),
            observer: self.observer.clone(),
            seed: self.seed,
            policies,
            metrics: metrics_registry.snapshot(),
        };
        report.validate()?;
        Ok(report)
    }
}

/// Everything one policy produced in a session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Registered policy name.
    pub name: String,
    /// Mean `size_next` decision latency in µs, if the policy tracks it.
    pub mean_decision_time_us: Option<f64>,
    /// Per-request serving outcomes.
    pub serving: ServingReport,
    /// Offline synthesis statistics (hint-based policies only).
    pub synthesis: Option<SynthesisReport>,
    /// Flight-recorder output (observer-attached sessions only): the
    /// observer's trace, span breakdown and/or telemetry time series.
    pub flight: Option<ObserverReport>,
}

impl PolicyReport {
    /// Fraction of requests that met the SLO, in `[0, 1]`.
    pub fn slo_attainment(&self) -> f64 {
        1.0 - self.serving.slo_violation_rate()
    }
}

/// The normalized outcome of a [`ServingSession`] run: one
/// [`PolicyReport`] per configured policy, in configuration order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// Workflow name.
    pub workflow: String,
    /// SLO the session served under.
    pub slo: SimDuration,
    /// Batch size (concurrency).
    pub concurrency: u32,
    /// Load shape offered.
    pub load: Load,
    /// Arrival-process name for scenario-driven open loops (`None` for
    /// closed loops and the plain Poisson open loop).
    pub scenario: Option<String>,
    /// Tenant classes merged into the arrival stream, for multi-tenant
    /// sessions (`None` for single-stream runs; absent in pre-tenancy
    /// reports, which decode as `None`).
    #[serde(default)]
    pub tenants: Option<Vec<TenantLoad>>,
    /// Autoscaler name for capacity-controlled open loops.
    pub autoscaler: Option<String>,
    /// Admission-policy name for capacity-controlled open loops.
    pub admission: Option<String>,
    /// Fault-injector name for chaos-enabled open loops.
    pub fault: Option<String>,
    /// Observer name for flight-recorded sessions.
    pub observer: Option<String>,
    /// Session seed.
    pub seed: u64,
    /// Per-policy results, in configuration order.
    pub policies: Vec<PolicyReport>,
    /// Session-wide serving metrics (counters and sample counts recorded
    /// through the hot-path handles), pooled across every policy run.
    pub metrics: MetricsSnapshot,
}

impl SessionReport {
    /// Policy names in report order.
    pub fn names(&self) -> Vec<&str> {
        self.policies.iter().map(|p| p.name.as_str()).collect()
    }

    /// The full report of one policy.
    pub fn report(&self, name: &str) -> Option<&PolicyReport> {
        self.policies.iter().find(|p| p.name == name)
    }

    /// One policy's serving report.
    pub fn serving(&self, name: &str) -> Option<&ServingReport> {
        self.report(name).map(|p| &p.serving)
    }

    /// One policy's flight-recorder report (observer-attached sessions only).
    pub fn flight(&self, name: &str) -> Option<&ObserverReport> {
        self.report(name)?.flight.as_ref()
    }

    /// The session's full JSONL trace artefact: every policy's trace lines
    /// concatenated in configuration order (each line carries its policy
    /// label). `None` unless an observer with a trace sink was attached.
    pub fn trace(&self) -> Option<String> {
        let mut out = String::new();
        for p in &self.policies {
            if let Some(trace) = p.flight.as_ref().and_then(|f| f.trace.as_deref()) {
                out.push_str(trace);
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// One policy's SLO attainment in `[0, 1]`.
    pub fn slo_attainment(&self, name: &str) -> Option<f64> {
        self.report(name).map(PolicyReport::slo_attainment)
    }

    /// One policy's mean per-request CPU in millicores.
    pub fn mean_cpu_millicores(&self, name: &str) -> Option<f64> {
        self.report(name).map(|p| p.serving.mean_cpu_millicores())
    }

    /// Mean CPU of `name` normalised by `baseline` (the "normalized by
    /// Optimal" presentation of §V).
    pub fn normalized_cpu(&self, name: &str, baseline: &str) -> Option<f64> {
        let base = self.serving(baseline)?;
        Some(self.serving(name)?.cpu_normalized_by(base))
    }

    /// Structural invariants every well-formed report satisfies; `run`
    /// checks this before returning.
    pub fn validate(&self) -> Result<(), String> {
        if self.policies.is_empty() {
            return Err("session report has no policies".into());
        }
        for p in &self.policies {
            let attainment = p.slo_attainment();
            if !(0.0..=1.0).contains(&attainment) {
                return Err(format!(
                    "policy {}: SLO attainment {attainment} outside [0, 1]",
                    p.name
                ));
            }
            if p.serving.is_empty() {
                return Err(format!("policy {}: accounted for no requests", p.name));
            }
            // A run under aggressive admission control can legitimately shed
            // everything; resource usage is only required once something ran.
            if p.serving.served_len() > 0 && p.serving.mean_cpu_millicores() <= 0.0 {
                return Err(format!("policy {}: non-positive resource usage", p.name));
            }
            for outcome in &p.serving.outcomes {
                use janus_platform::outcome::RequestDisposition;
                match outcome.disposition {
                    RequestDisposition::Served if outcome.allocations.is_empty() => {
                        return Err(format!(
                            "policy {}: request {} ran no functions",
                            p.name, outcome.request_id
                        ));
                    }
                    RequestDisposition::Shed if !outcome.allocations.is_empty() => {
                        return Err(format!(
                            "policy {}: shed request {} ran functions",
                            p.name, outcome.request_id
                        ));
                    }
                    // Failed requests were admitted and may have partially
                    // executed before the fault, so either shape is legal.
                    _ => {}
                }
            }
            if let Some(capacity) = &p.serving.capacity {
                // Conservation: every generated request is exactly one of
                // admitted or shed, every admitted request is exactly one of
                // served or failed, and the report agrees with itself.
                if capacity.admitted + capacity.shed != capacity.generated {
                    return Err(format!(
                        "policy {}: admitted {} + shed {} != generated {}",
                        p.name, capacity.admitted, capacity.shed, capacity.generated
                    ));
                }
                if capacity.admitted != p.serving.served_len() + p.serving.failed_len()
                    || capacity.shed != p.serving.shed_len()
                    || capacity.failed != p.serving.failed_len()
                {
                    return Err(format!(
                        "policy {}: capacity report ({} admitted, {} shed, {} failed) disagrees \
                         with outcomes ({} served, {} shed, {} failed)",
                        p.name,
                        capacity.admitted,
                        capacity.shed,
                        capacity.failed,
                        p.serving.served_len(),
                        p.serving.shed_len(),
                        p.serving.failed_len()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_builder() -> ServingSessionBuilder {
        ServingSession::builder()
            .app(PaperApp::IntelligentAssistant)
            .quick()
            .load(Load::Closed { requests: 40 })
    }

    #[test]
    fn builder_rejects_incomplete_or_invalid_sessions() {
        let err = ServingSession::builder()
            .policy("Janus")
            .build()
            .unwrap_err();
        assert!(err.contains(".app("), "{err}");
        let err = quick_builder().build().unwrap_err();
        assert!(err.contains("at least one .policy"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .concurrency(0)
            .build()
            .unwrap_err();
        assert!(err.contains("concurrency"), "{err}");
        let err = ServingSession::builder()
            .app(PaperApp::VideoAnalyze)
            .concurrency(2)
            .policy("Janus")
            .build()
            .unwrap_err();
        assert!(err.contains("VA cannot batch"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .load(Load::Open {
                requests: 10,
                rps: 0.0,
            })
            .build()
            .unwrap_err();
        assert!(err.contains("rps"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .load(Load::Closed { requests: 0 })
            .build()
            .unwrap_err();
        assert!(err.contains("at least one request"), "{err}");
        let err = quick_builder()
            .workflow(PaperApp::IntelligentAssistant.workflow())
            .policy("Janus")
            .build()
            .unwrap_err();
        assert!(err.contains("not both"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .policy("Janus")
            .build()
            .unwrap_err();
        assert!(err.contains("added twice"), "{err}");
    }

    #[test]
    fn closed_loop_session_reports_every_policy_in_order() {
        let report = quick_builder()
            .policies(["GrandSLAM", "Janus"])
            .run()
            .unwrap();
        assert_eq!(report.names(), vec!["GrandSLAM", "Janus"]);
        for name in ["GrandSLAM", "Janus"] {
            let p = report.report(name).unwrap();
            assert_eq!(p.serving.len(), 40);
            assert!((0.0..=1.0).contains(&p.slo_attainment()));
            assert!(p.serving.mean_cpu_millicores() > 0.0);
        }
        // The hint pipeline ran for Janus only.
        assert!(report.report("Janus").unwrap().synthesis.is_some());
        assert!(report.report("GrandSLAM").unwrap().synthesis.is_none());
        assert!(report.normalized_cpu("GrandSLAM", "Janus").unwrap() > 1.0);
        assert!(report.report("ORION").is_none());
    }

    #[test]
    fn open_loop_sessions_share_the_request_set_across_policies() {
        let report = quick_builder()
            .policies(["GrandSLAM", "Janus"])
            .load(Load::Open {
                requests: 50,
                rps: 2.0,
            })
            .run()
            .unwrap();
        let a = report.serving("GrandSLAM").unwrap();
        let b = report.serving("Janus").unwrap();
        assert_eq!(a.len(), 50);
        assert_eq!(b.len(), 50);
        let ids_a: Vec<u64> = a.outcomes.iter().map(|o| o.request_id).collect();
        let ids_b: Vec<u64> = b.outcomes.iter().map(|o| o.request_id).collect();
        assert_eq!(ids_a, ids_b, "paired comparison replays identical requests");
    }

    #[test]
    fn sessions_pool_hot_path_metrics_across_policies() {
        use janus_platform::metrics::ServingMetrics;
        let report = quick_builder()
            .policies(["GrandSLAM", "Janus"])
            .run()
            .unwrap();
        // 40 requests × 2 policies, 3 functions per IA request.
        assert_eq!(report.metrics.counter(ServingMetrics::REQUESTS), 80);
        assert_eq!(report.metrics.counter(ServingMetrics::FUNCTIONS), 240);
        assert_eq!(report.metrics.series_count(ServingMetrics::E2E_MS), 80);
        assert_eq!(
            report.metrics.series_count(ServingMetrics::FUNCTION_MS),
            240
        );
        assert_eq!(report.metrics.total_samples(), 320);
        let violations: f64 = report
            .policies
            .iter()
            .map(|p| p.serving.slo_violation_rate() * p.serving.len() as f64)
            .sum();
        assert_eq!(
            report.metrics.counter(ServingMetrics::SLO_VIOLATIONS),
            violations.round() as u64
        );
        // Open-loop sessions flow through the same handles (and the shared
        // arena).
        let open = quick_builder()
            .policy("GrandSLAM")
            .load(Load::Open {
                requests: 30,
                rps: 2.0,
            })
            .run()
            .unwrap();
        assert_eq!(open.metrics.counter(ServingMetrics::REQUESTS), 30);
        assert_eq!(open.metrics.series_count(ServingMetrics::E2E_MS), 30);
    }

    #[test]
    fn sessions_are_deterministic_in_the_seed() {
        let run = |seed: u64| quick_builder().policy("Janus").seed(seed).run().unwrap();
        let r1 = run(11);
        let r2 = run(11);
        let r3 = run(12);
        assert_eq!(r1.serving("Janus").unwrap(), r2.serving("Janus").unwrap());
        assert_ne!(r1.serving("Janus").unwrap(), r3.serving("Janus").unwrap());
    }

    #[test]
    fn poisson_scenario_is_bit_identical_to_plain_open_load() {
        // The proof that the arrival-process generalization preserved the
        // historical behaviour: the "poisson" scenario and the scenario-less
        // `Load::Open` draw the same RNG stream in the same order.
        let open = quick_builder()
            .policy("GrandSLAM")
            .load(Load::Open {
                requests: 40,
                rps: 2.0,
            })
            .run()
            .unwrap();
        let scenario = quick_builder()
            .policy("GrandSLAM")
            .load(Load::Open {
                requests: 40,
                rps: 2.0,
            })
            .scenario("poisson")
            .run()
            .unwrap();
        assert_eq!(
            open.serving("GrandSLAM").unwrap(),
            scenario.serving("GrandSLAM").unwrap()
        );
        assert_eq!(open.scenario, None);
        assert_eq!(scenario.scenario.as_deref(), Some("poisson"));
    }

    #[test]
    fn scenarios_change_the_load_shape_but_stay_paired() {
        let run = |name: &str| {
            quick_builder()
                .policies(["GrandSLAM", "Janus"])
                .load(Load::Open {
                    requests: 50,
                    rps: 2.0,
                })
                .scenario(name)
                .run()
                .unwrap()
        };
        let poisson = run("poisson");
        let flash = run("flash-crowd");
        assert_ne!(
            poisson.serving("Janus").unwrap(),
            flash.serving("Janus").unwrap(),
            "a flash crowd must not serve like a constant-rate loop"
        );
        let ids: Vec<u64> = flash
            .serving("GrandSLAM")
            .unwrap()
            .outcomes
            .iter()
            .map(|o| o.request_id)
            .collect();
        let ids_janus: Vec<u64> = flash
            .serving("Janus")
            .unwrap()
            .outcomes
            .iter()
            .map(|o| o.request_id)
            .collect();
        assert_eq!(ids, ids_janus, "scenario runs stay paired across policies");
    }

    #[test]
    fn scenario_validation_catches_misuse() {
        let err = quick_builder()
            .policy("Janus")
            .scenario("bursty")
            .build()
            .unwrap_err();
        assert!(err.contains("Load::Open"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .load(Load::Open {
                requests: 10,
                rps: 1.0,
            })
            .scenario("tsunami")
            .build()
            .unwrap_err();
        assert!(err.contains("unknown scenario `tsunami`"), "{err}");
        assert!(err.contains("flash-crowd"), "{err}");
    }

    #[test]
    fn custom_arrival_processes_and_scenarios_plug_in() {
        use janus_scenarios::TraceReplay;
        // An explicit process instance …
        let lockstep = Arc::new(TraceReplay::from_gaps(vec![400.0]).unwrap());
        let report = quick_builder()
            .policy("GrandSLAM")
            .load(Load::Open {
                requests: 20,
                rps: 2.5,
            })
            .arrivals(lockstep)
            .run()
            .unwrap();
        assert_eq!(report.scenario.as_deref(), Some("trace-replay"));
        // … and a registered custom factory, addressed by name.
        let report = quick_builder()
            .policy("GrandSLAM")
            .load(Load::Open {
                requests: 20,
                rps: 2.5,
            })
            .register_scenario_fn("lockstep", |ctx| {
                Ok(Box::new(TraceReplay::from_gaps(vec![
                    1000.0 / ctx.base_rps,
                ])?))
            })
            .scenario("lockstep")
            .run()
            .unwrap();
        assert_eq!(report.scenario.as_deref(), Some("trace-replay"));
        assert_eq!(report.serving("GrandSLAM").unwrap().len(), 20);
    }

    #[test]
    fn capacity_controls_resolve_by_name_and_conserve_requests() {
        use janus_simcore::cluster::PlacementPolicy;
        let report = quick_builder()
            .policies(["GrandSLAM", "Janus"])
            .load(Load::Open {
                requests: 60,
                rps: 6.0,
            })
            .cluster(ClusterConfig {
                nodes: 2,
                node_capacity: janus_simcore::resources::Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 1,
            })
            .scenario("flash-crowd")
            .autoscaler("utilization")
            .admission("queue-shed")
            .run()
            .unwrap();
        assert_eq!(report.autoscaler.as_deref(), Some("utilization"));
        assert_eq!(report.admission.as_deref(), Some("queue-shed"));
        for name in ["GrandSLAM", "Janus"] {
            let serving = report.serving(name).unwrap();
            let cap = serving.capacity.as_ref().expect("capacity report present");
            assert_eq!(cap.autoscaler, "utilization");
            assert_eq!(cap.admission, "queue-shed");
            assert_eq!(cap.admitted + cap.shed, 60, "conservation");
            assert_eq!(serving.len(), 60);
            assert_eq!(serving.served_len(), cap.admitted);
            assert!(cap.node_seconds > 0.0);
        }
        // Paired: both policies saw the same arrivals (same request ids).
        let ids = |n: &str| {
            report
                .serving(n)
                .unwrap()
                .outcomes
                .iter()
                .map(|o| o.request_id)
                .collect::<Vec<_>>()
        };
        assert_eq!(ids("GrandSLAM"), ids("Janus"));
    }

    #[test]
    fn capacity_validation_catches_misuse() {
        let err = quick_builder()
            .policy("Janus")
            .autoscaler("utilization")
            .build()
            .unwrap_err();
        assert!(err.contains("Load::Open"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .load(Load::Open {
                requests: 10,
                rps: 1.0,
            })
            .autoscaler("hypergrowth")
            .build()
            .unwrap_err();
        assert!(err.contains("unknown autoscaler"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .load(Load::Open {
                requests: 10,
                rps: 1.0,
            })
            .admission("bouncer")
            .build()
            .unwrap_err();
        assert!(err.contains("unknown admission policy"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .cluster(ClusterConfig {
                nodes: 0,
                ..ClusterConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(err.contains("at least one node"), "{err}");
    }

    #[test]
    fn custom_capacity_policies_register_by_name() {
        use janus_platform::capacity::QueueLengthAdmission;
        let report = quick_builder()
            .policy("GrandSLAM")
            .load(Load::Open {
                requests: 30,
                rps: 10.0,
            })
            .register_admission_fn("strict", |_ctx| Ok(Box::new(QueueLengthAdmission::new(1)?)))
            .admission("strict")
            .run()
            .unwrap();
        let cap = report
            .serving("GrandSLAM")
            .unwrap()
            .capacity
            .as_ref()
            .unwrap()
            .clone();
        assert_eq!(
            cap.admission, "strict",
            "capacity reports carry the registered name, not the policy's \
             self-reported one"
        );
        assert!(cap.shed > 0, "a depth-1 bound at 10 rps must shed");
        assert_eq!(report.admission.as_deref(), Some("strict"));
    }

    #[test]
    fn fault_injection_resolves_by_name_and_conserves_requests() {
        use janus_simcore::cluster::PlacementPolicy;
        let run = |seed: u64| {
            quick_builder()
                .policies(["GrandSLAM", "Janus"])
                .load(Load::Open {
                    requests: 60,
                    rps: 6.0,
                })
                .cluster(ClusterConfig {
                    nodes: 4,
                    node_capacity: janus_simcore::resources::Millicores::from_cores(8),
                    placement: PlacementPolicy::Spread,
                    zones: 2,
                })
                .scenario("flash-crowd")
                .autoscaler("utilization")
                .fault("zone-outage")
                .seed(seed)
                .run()
                .unwrap()
        };
        let report = run(7);
        assert_eq!(report.fault.as_deref(), Some("zone-outage"));
        for name in ["GrandSLAM", "Janus"] {
            let serving = report.serving(name).unwrap();
            let cap = serving.capacity.as_ref().expect("capacity report present");
            assert_eq!(cap.injector.as_deref(), Some("zone-outage"));
            assert_eq!(cap.faults_applied, 1);
            // The autoscaler may have grown (or shrunk) the dying zone by
            // outage time, so the exact count varies; something must die.
            assert!(cap.nodes_lost >= 1, "the outage killed no nodes");
            assert_eq!(cap.admitted + cap.shed, 60, "conservation");
            assert_eq!(cap.admitted, serving.served_len() + serving.failed_len());
            assert_eq!(cap.failed, serving.failed_len());
            assert_eq!(cap.final_allocated_mc, 0, "crashed pods release capacity");
        }
        // Paired: both policies replay the identical fault sequence.
        let ids = |r: &SessionReport, n: &str| {
            r.serving(n)
                .unwrap()
                .outcomes
                .iter()
                .map(|o| o.request_id)
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&report, "GrandSLAM"), ids(&report, "Janus"));
        // Deterministic in the seed, bit for bit.
        let again = run(7);
        assert_eq!(
            report.serving("Janus").unwrap(),
            again.serving("Janus").unwrap()
        );
        assert_ne!(
            report.serving("Janus").unwrap(),
            run(8).serving("Janus").unwrap()
        );
    }

    #[test]
    fn fault_validation_catches_misuse_and_custom_injectors_plug_in() {
        let err = quick_builder()
            .policy("Janus")
            .fault("zone-outage")
            .build()
            .unwrap_err();
        assert!(err.contains("Load::Open"), "{err}");
        let err = quick_builder()
            .policy("Janus")
            .load(Load::Open {
                requests: 10,
                rps: 1.0,
            })
            .fault("meteor-strike")
            .build()
            .unwrap_err();
        assert!(err.contains("unknown fault injector"), "{err}");
        assert!(err.contains("zone-outage"), "{err}");
        // A custom injector registers by name and reports under it.
        use janus_chaos::{FaultAction, FaultEvent, FaultSchedule};
        use janus_simcore::time::SimTime;
        let report = quick_builder()
            .policy("GrandSLAM")
            .load(Load::Open {
                requests: 30,
                rps: 4.0,
            })
            .register_fault_fn("calm", |_ctx| {
                Ok(FaultSchedule {
                    injector: "calm".into(),
                    victim_seed: 1,
                    events: vec![FaultEvent {
                        at: SimTime::ZERO + SimDuration::from_secs(1.0),
                        action: FaultAction::SlowNodes {
                            count: 1,
                            factor: 1.0,
                            duration: SimDuration::from_secs(1.0),
                        },
                    }],
                })
            })
            .fault("calm")
            .run()
            .unwrap();
        let cap = report
            .serving("GrandSLAM")
            .unwrap()
            .capacity
            .as_ref()
            .unwrap()
            .clone();
        assert_eq!(cap.injector.as_deref(), Some("calm"));
        assert_eq!(cap.faults_applied, 1);
        assert_eq!(report.fault.as_deref(), Some("calm"));
    }

    #[test]
    fn observers_resolve_by_name_and_record_full_flights() {
        use janus_simcore::cluster::PlacementPolicy;
        let run = || {
            quick_builder()
                .policies(["GrandSLAM", "Janus"])
                .load(Load::Open {
                    requests: 60,
                    rps: 6.0,
                })
                .cluster(ClusterConfig {
                    nodes: 4,
                    node_capacity: janus_simcore::resources::Millicores::from_cores(8),
                    placement: PlacementPolicy::Spread,
                    zones: 2,
                })
                .scenario("flash-crowd")
                // Static fleet: nodes killed by the outage stay dead, so the
                // telemetry must show the zone emptying (an autoscaler could
                // refill it within one tick).
                .fault("zone-outage")
                .observe("flight-recorder")
                .run()
                .unwrap()
        };
        let report = run();
        assert_eq!(report.observer.as_deref(), Some("flight-recorder"));
        let trace = report.trace().expect("flight recorder writes a trace");
        for name in ["GrandSLAM", "Janus"] {
            let flight = report.flight(name).expect("flight report present");
            assert_eq!(flight.observer, "flight-recorder");
            let spans = flight.spans.as_ref().expect("span summary present");
            // Every generated request arrived, and the span ledger agrees
            // with the serving report's dispositions.
            let serving = report.serving(name).unwrap();
            assert_eq!(spans.arrivals, 60);
            assert_eq!(spans.served, serving.served_len() as u64);
            assert_eq!(spans.shed, serving.shed_len() as u64);
            assert_eq!(spans.failed, serving.failed_len() as u64);
            let series = flight.time_series.as_ref().expect("telemetry present");
            assert!(!series.is_empty(), "capacity ticks sampled");
            // Two-zone cluster: every sample carries per-zone node counts,
            // and the zone outage must show up as a zone dropping nodes.
            assert!(series.points.iter().all(|p| p.nodes_per_zone.len() == 2));
            assert!(
                series.points.iter().any(|p| p.nodes_per_zone.contains(&0)),
                "the zone outage never emptied a zone in the telemetry"
            );
        }
        // The trace artefact carries both policies and replays cleanly.
        let decoded = janus_observe::report::TraceReport::from_jsonl(&trace).unwrap();
        assert_eq!(
            decoded
                .policies
                .iter()
                .map(|p| p.policy.as_str())
                .collect::<Vec<_>>(),
            vec!["GrandSLAM", "Janus"]
        );
        // Determinism: the same seed reproduces the trace byte for byte.
        let again = run();
        assert_eq!(trace, again.trace().unwrap());
        assert_eq!(
            report.flight("Janus").unwrap(),
            again.flight("Janus").unwrap()
        );
    }

    #[test]
    fn closed_loop_observers_record_spans_without_telemetry() {
        let report = quick_builder()
            .policy("GrandSLAM")
            .observe("spans")
            .run()
            .unwrap();
        let flight = report.flight("GrandSLAM").unwrap();
        let spans = flight.spans.as_ref().unwrap();
        assert_eq!(spans.arrivals, 40);
        assert_eq!(spans.served, 40);
        assert!(spans.mean_exec_ms > 0.0);
        // A closed loop has no capacity tick, so no time series (and no
        // trace: the spans observer keeps no lines).
        assert!(flight.time_series.is_none());
        assert!(report.trace().is_none());
    }

    #[test]
    fn sessions_without_an_observer_never_build_one() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let builds = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&builds);
        let builder =
            quick_builder()
                .policy("GrandSLAM")
                .register_observer_fn("counting", move |_ctx| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Ok(Box::new(janus_observe::RingObserver::with_capacity(8)))
                });
        let report = builder.run().unwrap();
        assert_eq!(
            builds.load(Ordering::SeqCst),
            0,
            "no .observe(..) => the factory must never run"
        );
        assert!(report.observer.is_none());
        assert!(report.flight("GrandSLAM").is_none());
        assert!(report.trace().is_none());
    }

    #[test]
    fn observer_validation_catches_unknown_names() {
        let err = quick_builder()
            .policy("Janus")
            .observe("black-box")
            .build()
            .unwrap_err();
        assert!(err.contains("unknown observer `black-box`"), "{err}");
        assert!(err.contains("flight-recorder"), "{err}");
    }

    #[test]
    fn multi_tenant_sessions_merge_streams_and_stay_paired() {
        let tenants = vec![
            TenantLoad {
                count: 2,
                scenario: "bursty".into(),
                rps: 1.5,
                slo_ms: None,
            },
            TenantLoad {
                count: 1,
                scenario: "flash-crowd".into(),
                rps: 2.0,
                slo_ms: None,
            },
        ];
        let run = |seed: u64| {
            quick_builder()
                .policies(["GrandSLAM", "Janus"])
                .load(Load::Open {
                    requests: 60,
                    rps: 2.0,
                })
                .tenants(tenants.clone())
                .seed(seed)
                .run()
                .unwrap()
        };
        let report = run(7);
        assert_eq!(report.tenants.as_deref(), Some(tenants.as_slice()));
        // The budget is the *total* across all four streams, and every
        // policy replays the identical merged set.
        let ids = |r: &SessionReport, n: &str| {
            r.serving(n)
                .unwrap()
                .outcomes
                .iter()
                .map(|o| o.request_id)
                .collect::<Vec<_>>()
        };
        assert_eq!(report.serving("Janus").unwrap().len(), 60);
        assert_eq!(ids(&report, "GrandSLAM"), ids(&report, "Janus"));
        // Deterministic in the seed, and genuinely different from the
        // single-stream run (stream 0 re-derives its RNG stream).
        let again = run(7);
        assert_eq!(
            report.serving("Janus").unwrap(),
            again.serving("Janus").unwrap()
        );
        assert_ne!(
            report.serving("Janus").unwrap(),
            run(8).serving("Janus").unwrap()
        );
        let single = quick_builder()
            .policies(["GrandSLAM", "Janus"])
            .load(Load::Open {
                requests: 60,
                rps: 2.0,
            })
            .seed(7)
            .run()
            .unwrap();
        assert_ne!(
            single.serving("Janus").unwrap(),
            report.serving("Janus").unwrap(),
            "a multi-tenant run must not replay the single-stream request set"
        );
        assert_eq!(single.tenants, None);
    }

    #[test]
    fn tenant_validation_catches_misuse_and_the_strictest_slo_wins() {
        let tenant = |scenario: &str| TenantLoad {
            count: 1,
            scenario: scenario.into(),
            rps: 1.0,
            slo_ms: None,
        };
        let open = || {
            quick_builder().policy("Janus").load(Load::Open {
                requests: 10,
                rps: 1.0,
            })
        };
        let err = quick_builder()
            .policy("Janus")
            .tenants(vec![tenant("poisson")])
            .build()
            .unwrap_err();
        assert!(err.contains("Load::Open"), "{err}");
        let err = open().tenants(vec![]).build().unwrap_err();
        assert!(err.contains("at least one tenant"), "{err}");
        let err = open()
            .tenants(vec![TenantLoad {
                count: 0,
                ..tenant("poisson")
            }])
            .build()
            .unwrap_err();
        assert!(err.contains("`tenants[0].count`"), "{err}");
        let err = open()
            .tenants(vec![
                tenant("poisson"),
                TenantLoad {
                    rps: -2.0,
                    ..tenant("poisson")
                },
            ])
            .build()
            .unwrap_err();
        assert!(err.contains("`tenants[1].rps`"), "{err}");
        let err = open().tenants(vec![tenant("tsunami")]).build().unwrap_err();
        assert!(err.contains("`tenants[0].scenario`"), "{err}");
        assert!(err.contains("unknown scenario `tsunami`"), "{err}");
        let err = open()
            .tenants(vec![TenantLoad {
                slo_ms: Some(0.0),
                ..tenant("poisson")
            }])
            .build()
            .unwrap_err();
        assert!(err.contains("`tenants[0].slo_ms`"), "{err}");
        // A tenant SLO tighter than the session's governs the whole run; a
        // looser one changes nothing.
        let session = open()
            .tenants(vec![TenantLoad {
                slo_ms: Some(100.0),
                ..tenant("poisson")
            }])
            .build()
            .unwrap();
        assert_eq!(session.slo(), SimDuration::from_millis(100.0));
        let default_slo = open().build().unwrap().slo();
        let session = open()
            .tenants(vec![TenantLoad {
                slo_ms: Some(default_slo.as_millis() * 10.0),
                ..tenant("poisson")
            }])
            .build()
            .unwrap();
        assert_eq!(session.slo(), default_slo);
    }

    #[test]
    fn custom_workflows_need_an_explicit_slo() {
        let workflow = PaperApp::IntelligentAssistant.workflow();
        let err = ServingSession::builder()
            .workflow(workflow.clone())
            .policy("GrandSLAM")
            .build()
            .unwrap_err();
        assert!(err.contains("explicit .slo"), "{err}");
        let report = ServingSession::builder()
            .workflow(workflow)
            .slo(SimDuration::from_secs(3.0))
            .policy("GrandSLAM")
            .quick()
            .load(Load::Closed { requests: 10 })
            .run()
            .unwrap();
        assert_eq!(report.policies.len(), 1);
    }
}
