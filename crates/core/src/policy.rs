//! The Janus sizing policy: the provider-side adapter exposed through the
//! platform's [`SizingPolicy`] interface.

use janus_adapter::adapter::{Adapter, DecisionSource};
use janus_platform::policy::{RequestContext, SizingPolicy};
use janus_simcore::resources::Millicores;
use janus_simcore::time::SimDuration;

/// Late-binding sizing policy backed by a hints-table [`Adapter`].
///
/// The platform derives the remaining time budget and calls
/// [`SizingPolicy::size_next`] right before each function starts; the policy
/// simply forwards the (finished-count, budget) pair to the adapter's table
/// search — the entire online decision path of §III-D.
#[derive(Debug)]
pub struct JanusPolicy {
    name: String,
    adapter: Adapter,
    misses: u64,
}

impl JanusPolicy {
    /// Wrap an adapter. `name` distinguishes the Janus variants
    /// ("Janus", "Janus-", "Janus+") in reports.
    pub fn new(name: impl Into<String>, adapter: Adapter) -> Self {
        JanusPolicy {
            name: name.into(),
            adapter,
            misses: 0,
        }
    }

    /// The underlying adapter (hit/miss statistics, decision latency).
    pub fn adapter(&self) -> &Adapter {
        &self.adapter
    }

    /// Number of hint-table misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl SizingPolicy for JanusPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_late_binding(&self) -> bool {
        true
    }

    fn size_next(
        &mut self,
        _ctx: &RequestContext,
        index: usize,
        remaining_budget: SimDuration,
    ) -> Millicores {
        let decision = self.adapter.decide(index, remaining_budget);
        if decision.source == DecisionSource::MissScaleToMax {
            self.misses += 1;
        }
        decision.head_cores
    }

    fn mean_decision_time_us(&self) -> Option<f64> {
        Some(self.adapter.mean_decision_time_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_adapter::adapter::AdapterConfig;
    use janus_profiler::percentiles::Percentile;
    use janus_synthesizer::hints::{CondensedHint, HintsBundle, HintsTable};

    fn bundle() -> HintsBundle {
        HintsBundle {
            workflow: "IA".to_string(),
            concurrency: 1,
            weight: 1.0,
            tables: vec![
                HintsTable::new(
                    0,
                    100,
                    vec![CondensedHint {
                        start_ms: 2000.0,
                        end_ms: 7000.0,
                        head_cores: Millicores::new(1400),
                        head_percentile: Percentile::P50,
                    }],
                )
                .unwrap(),
                HintsTable::new(
                    1,
                    100,
                    vec![CondensedHint {
                        start_ms: 900.0,
                        end_ms: 6000.0,
                        head_cores: Millicores::new(1100),
                        head_percentile: Percentile::P99,
                    }],
                )
                .unwrap(),
            ],
        }
    }

    fn ctx() -> RequestContext {
        RequestContext {
            request_id: 1,
            slo: SimDuration::from_secs(3.0),
            concurrency: 1,
            workflow_len: 3,
        }
    }

    #[test]
    fn policy_forwards_table_decisions() {
        let mut policy =
            JanusPolicy::new("Janus", Adapter::new(bundle(), AdapterConfig::default()));
        assert!(policy.is_late_binding());
        assert_eq!(policy.name(), "Janus");
        let k0 = policy.size_next(&ctx(), 0, SimDuration::from_secs(3.0));
        assert_eq!(k0, Millicores::new(1400));
        let k1 = policy.size_next(&ctx(), 1, SimDuration::from_millis(2200.0));
        assert_eq!(k1, Millicores::new(1100));
        assert_eq!(policy.misses(), 0);
        assert!(policy.mean_decision_time_us().unwrap() >= 0.0);
    }

    #[test]
    fn misses_scale_to_kmax_and_are_counted() {
        let mut policy =
            JanusPolicy::new("Janus", Adapter::new(bundle(), AdapterConfig::default()));
        let k = policy.size_next(&ctx(), 0, SimDuration::from_millis(100.0));
        assert_eq!(k, Millicores::new(3000));
        // Unknown suffix index is also a miss.
        let k = policy.size_next(&ctx(), 5, SimDuration::from_secs(2.0));
        assert_eq!(k, Millicores::new(3000));
        assert_eq!(policy.misses(), 2);
        assert!(policy.adapter().miss_rate() > 0.0);
    }
}
