//! # janus-observe
//!
//! The flight recorder: structured event tracing and time-series telemetry
//! for the serving simulation.
//!
//! Every run so far collapsed into end-of-run aggregates, so questions like
//! *where does an SLO-violating request spend its time* or *when did the
//! retry storm peak* were unanswerable without re-instrumenting by hand.
//! This crate adds observability as a first-class, registry-driven axis —
//! the same open-registry shape the policy/scenario/capacity/fault
//! registries use — so sessions and sweeps resolve observers by name and
//! downstream code can register its own.
//!
//! An [`Observer`] receives typed lifecycle [`Record`]s (arrival, admission
//! verdict, placement, cold start, execution start/end, retry, fault
//! delivery, scaling, shed/fail/completion) stamped with simulated time,
//! plus a [`TickSample`] of fleet telemetry at every capacity tick. The
//! execution loops in `janus-platform` emit these hooks only when an
//! observer is attached: with no observer the loops take the `None` arm of
//! an `Option` and construct nothing — no allocation, no virtual call — so
//! the observer-off path costs what the un-instrumented build cost (the
//! perf bench asserts this).
//!
//! Built-ins (see [`ObserverRegistry::with_builtins`]):
//!
//! * `ring` — bounded in-memory ring buffer of the most recent records.
//! * `trace` — JSONL sink: one compact `janus-json` document per line,
//!   per-request sampled so traces stay bounded at any request count.
//! * `spans` — per-request span builder deriving queue-wait / cold-start /
//!   execution / retry breakdowns and critical-path timings.
//! * `time-series` — capacity-tick sampler emitting a [`TimeSeriesReport`]
//!   (queue depth, active nodes per zone, utilization, pool size,
//!   shed/fail/retry counters).
//! * `flight-recorder` — all of the above in one observer; what
//!   `janus run <exp> --trace out.jsonl` attaches.
//!
//! Everything is seed-deterministic: observers hold no randomness, sampling
//! is a pure function of the request id, and records arrive in simulation
//! order — the same seed always produces a byte-identical trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;

pub use report::{qualify_policy, PolicyTrace, TraceReport};

use janus_json::Value;
use janus_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
// janus-lint: allow(nondeterminism) — request-keyed span index; report rows are sorted by id before any output
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Everything an observer may consult when it is built for one policy run —
/// the observer-side mirror of `FaultContext` / `CapacityContext`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserverContext {
    /// The run seed (observers are deterministic; this is for labelling
    /// and for samplers that want a seed-stable hash salt).
    pub seed: u64,
    /// Name of the policy whose run is being observed.
    pub policy: String,
    /// Number of requests the run will generate; drives trace sampling.
    pub requests: usize,
    /// Availability zones the cluster is spread over.
    pub zones: usize,
    /// End-to-end latency SLO requests are served under.
    pub slo: SimDuration,
}

impl ObserverContext {
    /// Validate the context before any factory consumes it.
    pub fn validate(&self) -> Result<(), String> {
        if self.policy.is_empty() {
            return Err("observer context needs a policy name".into());
        }
        if self.requests == 0 {
            return Err("observer context needs at least one request".into());
        }
        if self.zones == 0 {
            return Err("observer context needs at least one zone".into());
        }
        Ok(())
    }
}

/// One lifecycle event, stamped with the simulated instant it happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Simulated time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: RecordKind,
}

/// The typed lifecycle events the execution loops emit. All variants are
/// `Copy` scalars so constructing one never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordKind {
    /// A request arrived at the platform.
    Arrival {
        /// Request id.
        request: u64,
    },
    /// The admission policy ruled on a request.
    Admission {
        /// Request id.
        request: u64,
        /// `true` to admit, `false` to shed.
        admitted: bool,
    },
    /// A function invocation was placed on the fleet.
    Placement {
        /// Request id.
        request: u64,
        /// Function index within the workflow.
        function: usize,
        /// `true` when regular placement failed and the pod was placed
        /// over capacity.
        overcommitted: bool,
    },
    /// A placement paid a cold-start (pod startup) delay.
    ColdStart {
        /// Request id.
        request: u64,
        /// Function index within the workflow.
        function: usize,
        /// The startup delay paid before execution begins.
        delay: SimDuration,
    },
    /// A function invocation started executing.
    ExecStart {
        /// Request id.
        request: u64,
        /// Function index within the workflow.
        function: usize,
    },
    /// A function invocation finished executing.
    ExecEnd {
        /// Request id.
        request: u64,
        /// Function index within the workflow.
        function: usize,
        /// Pure execution time of the invocation (excludes startup delay).
        exec: SimDuration,
    },
    /// A fault voided a request's in-flight function; it will be retried.
    Retry {
        /// Request id.
        request: u64,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
        /// Wall time the voided attempt had already spent.
        lost: SimDuration,
    },
    /// A scheduled fault was delivered to the fleet.
    Fault {
        /// Stable action name: `crash`, `preempt`, `zone-outage` or
        /// `slow-nodes`.
        kind: &'static str,
    },
    /// The fleet changed size (autoscaling decision or fault).
    Scaling {
        /// Active nodes before.
        from_nodes: usize,
        /// Active nodes after.
        to_nodes: usize,
    },
    /// Admission control shed a request (terminal).
    Shed {
        /// Request id.
        request: u64,
    },
    /// A request failed after exhausting its retry budget (terminal).
    Failed {
        /// Request id.
        request: u64,
        /// End-to-end wall time accrued before the failure.
        e2e: SimDuration,
    },
    /// A request was served to completion (terminal).
    Completion {
        /// Request id.
        request: u64,
        /// End-to-end latency.
        e2e: SimDuration,
        /// `true` when the end-to-end latency met the SLO.
        slo_met: bool,
    },
}

/// Fault action names [`RecordKind::Fault`] may carry; decoding rejects
/// anything else so traces stay typed.
pub const FAULT_KINDS: [&str; 4] = ["crash", "preempt", "zone-outage", "slow-nodes"];

impl RecordKind {
    /// Stable type tag used as the `type` field of a trace line.
    pub fn kind_name(&self) -> &'static str {
        match self {
            RecordKind::Arrival { .. } => "arrival",
            RecordKind::Admission { .. } => "admission",
            RecordKind::Placement { .. } => "placement",
            RecordKind::ColdStart { .. } => "cold-start",
            RecordKind::ExecStart { .. } => "exec-start",
            RecordKind::ExecEnd { .. } => "exec-end",
            RecordKind::Retry { .. } => "retry",
            RecordKind::Fault { .. } => "fault",
            RecordKind::Scaling { .. } => "scaling",
            RecordKind::Shed { .. } => "shed",
            RecordKind::Failed { .. } => "failed",
            RecordKind::Completion { .. } => "completion",
        }
    }

    /// The request the event belongs to, if it is request-scoped
    /// (fault/scaling events are fleet-scoped).
    pub fn request(&self) -> Option<u64> {
        match *self {
            RecordKind::Arrival { request }
            | RecordKind::Admission { request, .. }
            | RecordKind::Placement { request, .. }
            | RecordKind::ColdStart { request, .. }
            | RecordKind::ExecStart { request, .. }
            | RecordKind::ExecEnd { request, .. }
            | RecordKind::Retry { request, .. }
            | RecordKind::Shed { request }
            | RecordKind::Failed { request, .. }
            | RecordKind::Completion { request, .. } => Some(request),
            RecordKind::Fault { .. } | RecordKind::Scaling { .. } => None,
        }
    }
}

impl Record {
    /// Encode as a `janus-json` object with a fixed key order
    /// (`at_ms`, `type`, then the variant's fields), so identical runs
    /// encode byte-identically.
    pub fn to_json(&self) -> Value {
        let mut members = vec![
            ("at_ms".to_string(), Value::Num(self.at.as_millis())),
            (
                "type".to_string(),
                Value::Str(self.kind.kind_name().to_string()),
            ),
        ];
        let num = |members: &mut Vec<(String, Value)>, key: &str, v: f64| {
            members.push((key.to_string(), Value::Num(v)));
        };
        match self.kind {
            RecordKind::Arrival { request } | RecordKind::Shed { request } => {
                num(&mut members, "request", request as f64);
            }
            RecordKind::Admission { request, admitted } => {
                num(&mut members, "request", request as f64);
                members.push(("admitted".to_string(), Value::Bool(admitted)));
            }
            RecordKind::Placement {
                request,
                function,
                overcommitted,
            } => {
                num(&mut members, "request", request as f64);
                num(&mut members, "function", function as f64);
                members.push(("overcommitted".to_string(), Value::Bool(overcommitted)));
            }
            RecordKind::ColdStart {
                request,
                function,
                delay,
            } => {
                num(&mut members, "request", request as f64);
                num(&mut members, "function", function as f64);
                num(&mut members, "delay_ms", delay.as_millis());
            }
            RecordKind::ExecStart { request, function } => {
                num(&mut members, "request", request as f64);
                num(&mut members, "function", function as f64);
            }
            RecordKind::ExecEnd {
                request,
                function,
                exec,
            } => {
                num(&mut members, "request", request as f64);
                num(&mut members, "function", function as f64);
                num(&mut members, "exec_ms", exec.as_millis());
            }
            RecordKind::Retry {
                request,
                attempt,
                lost,
            } => {
                num(&mut members, "request", request as f64);
                num(&mut members, "attempt", attempt as f64);
                num(&mut members, "lost_ms", lost.as_millis());
            }
            RecordKind::Fault { kind } => {
                members.push(("fault".to_string(), Value::Str(kind.to_string())));
            }
            RecordKind::Scaling {
                from_nodes,
                to_nodes,
            } => {
                num(&mut members, "from_nodes", from_nodes as f64);
                num(&mut members, "to_nodes", to_nodes as f64);
            }
            RecordKind::Failed { request, e2e } => {
                num(&mut members, "request", request as f64);
                num(&mut members, "e2e_ms", e2e.as_millis());
            }
            RecordKind::Completion {
                request,
                e2e,
                slo_met,
            } => {
                num(&mut members, "request", request as f64);
                num(&mut members, "e2e_ms", e2e.as_millis());
                members.push(("slo_met".to_string(), Value::Bool(slo_met)));
            }
        }
        Value::Obj(members)
    }

    /// Decode a record from its JSON object form. Extra keys (such as the
    /// `policy` label trace lines carry) are ignored.
    pub fn from_json(value: &Value) -> Result<Record, String> {
        let at = SimTime::from_millis(decode_num(value, "at_ms")?);
        let tag = value
            .require("type")?
            .as_str()
            .ok_or("`type` not a string")?;
        let kind = match tag {
            "arrival" => RecordKind::Arrival {
                request: decode_uint(value, "request")?,
            },
            "admission" => RecordKind::Admission {
                request: decode_uint(value, "request")?,
                admitted: decode_bool(value, "admitted")?,
            },
            "placement" => RecordKind::Placement {
                request: decode_uint(value, "request")?,
                function: decode_uint(value, "function")? as usize,
                overcommitted: decode_bool(value, "overcommitted")?,
            },
            "cold-start" => RecordKind::ColdStart {
                request: decode_uint(value, "request")?,
                function: decode_uint(value, "function")? as usize,
                delay: SimDuration::from_millis(decode_num(value, "delay_ms")?),
            },
            "exec-start" => RecordKind::ExecStart {
                request: decode_uint(value, "request")?,
                function: decode_uint(value, "function")? as usize,
            },
            "exec-end" => RecordKind::ExecEnd {
                request: decode_uint(value, "request")?,
                function: decode_uint(value, "function")? as usize,
                exec: SimDuration::from_millis(decode_num(value, "exec_ms")?),
            },
            "retry" => RecordKind::Retry {
                request: decode_uint(value, "request")?,
                attempt: decode_uint(value, "attempt")? as u32,
                lost: SimDuration::from_millis(decode_num(value, "lost_ms")?),
            },
            "fault" => {
                let name = value
                    .require("fault")?
                    .as_str()
                    .ok_or("`fault` not a string")?;
                let kind = FAULT_KINDS
                    .iter()
                    .find(|k| **k == name)
                    .ok_or_else(|| format!("unknown fault kind `{name}`"))?;
                RecordKind::Fault { kind }
            }
            "scaling" => RecordKind::Scaling {
                from_nodes: decode_uint(value, "from_nodes")? as usize,
                to_nodes: decode_uint(value, "to_nodes")? as usize,
            },
            "shed" => RecordKind::Shed {
                request: decode_uint(value, "request")?,
            },
            "failed" => RecordKind::Failed {
                request: decode_uint(value, "request")?,
                e2e: SimDuration::from_millis(decode_num(value, "e2e_ms")?),
            },
            "completion" => RecordKind::Completion {
                request: decode_uint(value, "request")?,
                e2e: SimDuration::from_millis(decode_num(value, "e2e_ms")?),
                slo_met: decode_bool(value, "slo_met")?,
            },
            other => return Err(format!("unknown record type `{other}`")),
        };
        Ok(Record { at, kind })
    }
}

fn decode_num(value: &Value, key: &str) -> Result<f64, String> {
    value
        .require(key)?
        .as_f64()
        .ok_or_else(|| format!("`{key}` not a number"))
}

fn decode_uint(value: &Value, key: &str) -> Result<u64, String> {
    let n = decode_num(value, key)?;
    // janus-lint: allow(float-cmp) — exactness is the point: fract() must be exactly zero for an integer-valued f64
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("`{key}` not a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

fn decode_bool(value: &Value, key: &str) -> Result<bool, String> {
    match value.require(key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("`{key}` not a boolean")),
    }
}

/// One sample of fleet telemetry, taken at a capacity tick. Counters
/// (`shed`, `failed`, `retried`) are cumulative since the run started;
/// rates are derived at render time by differencing adjacent samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSample {
    /// Simulated time of the tick.
    pub at: SimTime,
    /// Events pending in the simulation queue (arrivals not yet processed).
    pub queue_depth: usize,
    /// Requests admitted and not yet terminal.
    pub inflight: usize,
    /// Active (live, non-retired) nodes in the fleet.
    pub active_nodes: usize,
    /// Active nodes per availability zone, indexed by zone.
    pub nodes_per_zone: Vec<usize>,
    /// Fleet utilization in `[0, 1]`.
    pub utilization: f64,
    /// Warm pods available in the generic pool.
    pub pool_size: usize,
    /// Requests shed so far (cumulative).
    pub shed: u64,
    /// Requests failed so far (cumulative).
    pub failed: u64,
    /// Retries performed so far (cumulative).
    pub retried: u64,
}

/// One point of a [`TimeSeriesReport`] — the serializable form of a
/// [`TickSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesPoint {
    /// Simulated time of the sample, in milliseconds.
    pub at_ms: f64,
    /// Events pending in the simulation queue.
    pub queue_depth: u64,
    /// Requests admitted and not yet terminal.
    pub inflight: u64,
    /// Active nodes in the fleet.
    pub active_nodes: u64,
    /// Active nodes per availability zone.
    pub nodes_per_zone: Vec<u64>,
    /// Fleet utilization in `[0, 1]`.
    pub utilization: f64,
    /// Warm pods available in the generic pool.
    pub pool_size: u64,
    /// Requests shed so far (cumulative).
    pub shed: u64,
    /// Requests failed so far (cumulative).
    pub failed: u64,
    /// Retries performed so far (cumulative).
    pub retried: u64,
}

impl TimeSeriesPoint {
    /// Convert a live tick sample into its serializable form.
    pub fn from_sample(sample: &TickSample) -> TimeSeriesPoint {
        TimeSeriesPoint {
            at_ms: sample.at.as_millis(),
            queue_depth: sample.queue_depth as u64,
            inflight: sample.inflight as u64,
            active_nodes: sample.active_nodes as u64,
            nodes_per_zone: sample.nodes_per_zone.iter().map(|&n| n as u64).collect(),
            utilization: sample.utilization,
            pool_size: sample.pool_size as u64,
            shed: sample.shed,
            failed: sample.failed,
            retried: sample.retried,
        }
    }

    /// Encode as a `janus-json` object with a fixed key order.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("at_ms".to_string(), Value::Num(self.at_ms)),
            (
                "queue_depth".to_string(),
                Value::Num(self.queue_depth as f64),
            ),
            ("inflight".to_string(), Value::Num(self.inflight as f64)),
            (
                "active_nodes".to_string(),
                Value::Num(self.active_nodes as f64),
            ),
            (
                "nodes_per_zone".to_string(),
                Value::Arr(
                    self.nodes_per_zone
                        .iter()
                        .map(|&n| Value::Num(n as f64))
                        .collect(),
                ),
            ),
            ("utilization".to_string(), Value::Num(self.utilization)),
            ("pool_size".to_string(), Value::Num(self.pool_size as f64)),
            ("shed".to_string(), Value::Num(self.shed as f64)),
            ("failed".to_string(), Value::Num(self.failed as f64)),
            ("retried".to_string(), Value::Num(self.retried as f64)),
        ])
    }

    /// Decode a point from its JSON object form. Extra keys are ignored.
    pub fn from_json(value: &Value) -> Result<TimeSeriesPoint, String> {
        let zones = value
            .require("nodes_per_zone")?
            .as_array()
            .ok_or("`nodes_per_zone` not an array")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| "`nodes_per_zone` entry not a number".to_string())
                    .map(|n| n as u64)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TimeSeriesPoint {
            at_ms: decode_num(value, "at_ms")?,
            queue_depth: decode_uint(value, "queue_depth")?,
            inflight: decode_uint(value, "inflight")?,
            active_nodes: decode_uint(value, "active_nodes")?,
            nodes_per_zone: zones,
            utilization: decode_num(value, "utilization")?,
            pool_size: decode_uint(value, "pool_size")?,
            shed: decode_uint(value, "shed")?,
            failed: decode_uint(value, "failed")?,
            retried: decode_uint(value, "retried")?,
        })
    }
}

/// The time-series half of a flight recording: one point per capacity tick.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesReport {
    /// Samples in tick order.
    pub points: Vec<TimeSeriesPoint>,
}

impl TimeSeriesReport {
    /// Append a live sample.
    pub fn push(&mut self, sample: &TickSample) {
        self.points.push(TimeSeriesPoint::from_sample(sample));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Encode as a `janus-json` object.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![(
            "points".to_string(),
            Value::Arr(self.points.iter().map(|p| p.to_json()).collect()),
        )])
    }
}

/// Per-request phase breakdowns aggregated over one policy run, derived by
/// [`SpanBuilder`] from the record stream. All means are over *served*
/// requests and degrade to `0.0` (never NaN) when nothing was served.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanSummary {
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests failed after exhausting retries.
    pub failed: u64,
    /// Retries performed.
    pub retries: u64,
    /// Cold starts paid.
    pub cold_starts: u64,
    /// Placements that had to overcommit a node.
    pub overcommitted: u64,
    /// Served requests that missed the SLO.
    pub slo_violations: u64,
    /// Mean time a served request spent waiting (e2e minus all other
    /// phases).
    pub mean_queue_ms: f64,
    /// Mean cold-start time per served request.
    pub mean_cold_ms: f64,
    /// Mean pure execution time per served request.
    pub mean_exec_ms: f64,
    /// Mean wall time lost to fault-voided attempts per served request.
    pub mean_retry_ms: f64,
    /// Mean end-to-end latency per served request.
    pub mean_e2e_ms: f64,
    /// Mean critical path (cold start + execution) per served request.
    pub mean_critical_path_ms: f64,
}

impl SpanSummary {
    /// Encode as a `janus-json` object with a fixed key order.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("arrivals".to_string(), Value::Num(self.arrivals as f64)),
            ("served".to_string(), Value::Num(self.served as f64)),
            ("shed".to_string(), Value::Num(self.shed as f64)),
            ("failed".to_string(), Value::Num(self.failed as f64)),
            ("retries".to_string(), Value::Num(self.retries as f64)),
            (
                "cold_starts".to_string(),
                Value::Num(self.cold_starts as f64),
            ),
            (
                "overcommitted".to_string(),
                Value::Num(self.overcommitted as f64),
            ),
            (
                "slo_violations".to_string(),
                Value::Num(self.slo_violations as f64),
            ),
            ("mean_queue_ms".to_string(), Value::Num(self.mean_queue_ms)),
            ("mean_cold_ms".to_string(), Value::Num(self.mean_cold_ms)),
            ("mean_exec_ms".to_string(), Value::Num(self.mean_exec_ms)),
            ("mean_retry_ms".to_string(), Value::Num(self.mean_retry_ms)),
            ("mean_e2e_ms".to_string(), Value::Num(self.mean_e2e_ms)),
            (
                "mean_critical_path_ms".to_string(),
                Value::Num(self.mean_critical_path_ms),
            ),
        ])
    }
}

/// Accumulates [`Record`]s into per-request spans and aggregates them into
/// a [`SpanSummary`]. Functions of one request run sequentially, so a
/// single pending cold-start slot per request suffices.
#[derive(Debug, Clone, Default)]
pub struct SpanBuilder {
    open: HashMap<u64, OpenSpan>,
    arrivals: u64,
    served: u64,
    shed: u64,
    failed: u64,
    retries: u64,
    cold_starts: u64,
    overcommitted: u64,
    slo_violations: u64,
    sum_queue_ms: f64,
    sum_cold_ms: f64,
    sum_exec_ms: f64,
    sum_retry_ms: f64,
    sum_e2e_ms: f64,
}

#[derive(Debug, Clone, Default)]
struct OpenSpan {
    cold_ms: f64,
    exec_ms: f64,
    retry_ms: f64,
    pending_cold_ms: f64,
}

impl SpanBuilder {
    /// A builder with no open spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one record.
    pub fn observe(&mut self, record: &Record) {
        match record.kind {
            RecordKind::Arrival { request } => {
                self.arrivals += 1;
                self.open.insert(request, OpenSpan::default());
            }
            RecordKind::Admission { .. } | RecordKind::ExecStart { .. } => {}
            RecordKind::Placement { overcommitted, .. } => {
                if overcommitted {
                    self.overcommitted += 1;
                }
            }
            RecordKind::ColdStart { request, delay, .. } => {
                self.cold_starts += 1;
                if let Some(span) = self.open.get_mut(&request) {
                    span.pending_cold_ms = delay.as_millis();
                }
            }
            RecordKind::ExecEnd { request, exec, .. } => {
                if let Some(span) = self.open.get_mut(&request) {
                    span.exec_ms += exec.as_millis();
                    span.cold_ms += span.pending_cold_ms;
                    span.pending_cold_ms = 0.0;
                }
            }
            RecordKind::Retry { request, lost, .. } => {
                self.retries += 1;
                if let Some(span) = self.open.get_mut(&request) {
                    // The voided attempt's cold start never ran to use; the
                    // lost wall time already covers it.
                    span.pending_cold_ms = 0.0;
                    span.retry_ms += lost.as_millis();
                }
            }
            RecordKind::Fault { .. } | RecordKind::Scaling { .. } => {}
            RecordKind::Shed { request } => {
                self.shed += 1;
                self.open.remove(&request);
            }
            RecordKind::Failed { request, .. } => {
                self.failed += 1;
                self.open.remove(&request);
            }
            RecordKind::Completion {
                request,
                e2e,
                slo_met,
            } => {
                self.served += 1;
                if !slo_met {
                    self.slo_violations += 1;
                }
                let span = self.open.remove(&request).unwrap_or_default();
                let e2e_ms = e2e.as_millis();
                let queue_ms = (e2e_ms - span.cold_ms - span.exec_ms - span.retry_ms).max(0.0);
                self.sum_queue_ms += queue_ms;
                self.sum_cold_ms += span.cold_ms;
                self.sum_exec_ms += span.exec_ms;
                self.sum_retry_ms += span.retry_ms;
                self.sum_e2e_ms += e2e_ms;
            }
        }
    }

    /// The aggregate summary of everything observed so far.
    pub fn summary(&self) -> SpanSummary {
        let mean = |sum: f64| {
            if self.served == 0 {
                0.0
            } else {
                sum / self.served as f64
            }
        };
        SpanSummary {
            arrivals: self.arrivals,
            served: self.served,
            shed: self.shed,
            failed: self.failed,
            retries: self.retries,
            cold_starts: self.cold_starts,
            overcommitted: self.overcommitted,
            slo_violations: self.slo_violations,
            mean_queue_ms: mean(self.sum_queue_ms),
            mean_cold_ms: mean(self.sum_cold_ms),
            mean_exec_ms: mean(self.sum_exec_ms),
            mean_retry_ms: mean(self.sum_retry_ms),
            mean_e2e_ms: mean(self.sum_e2e_ms),
            mean_critical_path_ms: mean(self.sum_cold_ms + self.sum_exec_ms),
        }
    }
}

/// What one observer hands back when its run finishes. Which halves are
/// populated depends on the observer: the `trace` built-in fills `trace`,
/// `spans` fills `spans`, `time-series` fills `time_series`, and the
/// `flight-recorder` composite fills all three.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObserverReport {
    /// Name of the observer that produced the report.
    pub observer: String,
    /// Lifecycle records the observer was offered.
    pub records_seen: u64,
    /// Records (and tick samples) the observer kept after sampling.
    pub records_kept: u64,
    /// JSONL trace body (one compact JSON document per line), when the
    /// observer writes one.
    pub trace: Option<String>,
    /// Per-request span breakdowns, when the observer derives them.
    pub spans: Option<SpanSummary>,
    /// Capacity-tick telemetry, when the observer samples it.
    pub time_series: Option<TimeSeriesReport>,
}

impl ObserverReport {
    /// Encode as a `janus-json` object. The trace *body* is deliberately
    /// excluded (it goes to its own `--trace` artefact); only its line
    /// count is reported here.
    pub fn to_json(&self) -> Value {
        let trace_lines = self
            .trace
            .as_ref()
            .map(|t| t.lines().count() as f64)
            .map(Value::Num)
            .unwrap_or(Value::Null);
        Value::Obj(vec![
            ("observer".to_string(), Value::Str(self.observer.clone())),
            (
                "records_seen".to_string(),
                Value::Num(self.records_seen as f64),
            ),
            (
                "records_kept".to_string(),
                Value::Num(self.records_kept as f64),
            ),
            ("trace_lines".to_string(), trace_lines),
            (
                "spans".to_string(),
                self.spans
                    .as_ref()
                    .map(|s| s.to_json())
                    .unwrap_or(Value::Null),
            ),
            (
                "time_series".to_string(),
                self.time_series
                    .as_ref()
                    .map(|t| t.to_json())
                    .unwrap_or(Value::Null),
            ),
        ])
    }
}

/// An object-safe observer: receives every lifecycle record and capacity
/// tick of one policy run, in simulation order, and renders whatever it
/// accumulated into an [`ObserverReport`] at the end.
///
/// Observers must be deterministic: no wall clocks, no ambient randomness —
/// the same record stream must always produce the same report (the
/// determinism suite compares traces byte-for-byte across reruns).
pub trait Observer: Send {
    /// The name the observer was registered (and reports) under.
    fn name(&self) -> &str;

    /// Receive one lifecycle record.
    fn record(&mut self, record: &Record);

    /// Receive one capacity-tick telemetry sample. Closed-loop runs have
    /// no capacity tick, so the default ignores samples.
    fn tick(&mut self, _sample: &TickSample) {}

    /// Render the accumulated state into a report. Called exactly once,
    /// after the last record.
    fn finish(&mut self) -> ObserverReport;
}

/// Builds observers for policy runs. Factories are shared and immutable;
/// each policy run gets a fresh observer so paired comparisons never leak
/// state across policies.
pub trait ObserverFactory: Send + Sync + fmt::Debug {
    /// The name the factory is registered under.
    fn name(&self) -> &str;

    /// Build a fresh observer for one policy run.
    fn build(&self, ctx: &ObserverContext) -> Result<Box<dyn Observer>, String>;
}

/// An ordered, open registry of named observer factories, mirroring the
/// policy/scenario/capacity/fault registries: registration order is
/// preserved, re-registering a name replaces the earlier entry in place,
/// and unknown names fail with the registered names listed.
#[derive(Clone, Default)]
pub struct ObserverRegistry {
    factories: Vec<Arc<dyn ObserverFactory>>,
}

impl fmt::Debug for ObserverRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl ObserverRegistry {
    /// An empty registry (no built-ins).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the built-in observers, cheapest first:
    /// `ring`, `trace`, `spans`, `time-series`, `flight-recorder`.
    pub fn with_builtins() -> Self {
        let mut registry = ObserverRegistry::new();
        registry.register(Arc::new(RingFactory));
        registry.register(Arc::new(TraceFactory));
        registry.register(Arc::new(SpanFactory));
        registry.register(Arc::new(TimeSeriesFactory));
        registry.register(Arc::new(FlightRecorderFactory));
        registry
    }

    /// Register a factory. Replaces any earlier factory with the same name
    /// (keeping its position), otherwise appends.
    pub fn register(&mut self, factory: Arc<dyn ObserverFactory>) -> &mut Self {
        match self
            .factories
            .iter()
            .position(|f| f.name() == factory.name())
        {
            Some(i) => self.factories[i] = factory,
            None => self.factories.push(factory),
        }
        self
    }

    /// Closure shorthand for [`register`](Self::register).
    pub fn register_fn<F>(&mut self, name: impl Into<String>, build: F) -> &mut Self
    where
        F: Fn(&ObserverContext) -> Result<Box<dyn Observer>, String> + Send + Sync + 'static,
    {
        struct FnFactory<F> {
            name: String,
            build: F,
        }
        impl<F> fmt::Debug for FnFactory<F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct("FnFactory")
                    .field("name", &self.name)
                    .finish()
            }
        }
        impl<F> ObserverFactory for FnFactory<F>
        where
            F: Fn(&ObserverContext) -> Result<Box<dyn Observer>, String> + Send + Sync,
        {
            fn name(&self) -> &str {
                &self.name
            }
            fn build(&self, ctx: &ObserverContext) -> Result<Box<dyn Observer>, String> {
                (self.build)(ctx)
            }
        }
        self.register(Arc::new(FnFactory {
            name: name.into(),
            build,
        }))
    }

    /// Look a factory up by its registered name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ObserverFactory>> {
        self.factories.iter().find(|f| f.name() == name).cloned()
    }

    /// Check that `name` is registered, with an informative error listing
    /// the known names otherwise.
    pub fn ensure_known(&self, name: &str) -> Result<(), String> {
        if self.get(name).is_some() {
            Ok(())
        } else {
            Err(format!(
                "unknown observer `{}`; registered: {}",
                name,
                self.names().join(", ")
            ))
        }
    }

    /// Build the named observer, with informative errors for unknown names
    /// or invalid contexts.
    pub fn build(&self, name: &str, ctx: &ObserverContext) -> Result<Box<dyn Observer>, String> {
        ctx.validate()?;
        self.ensure_known(name)?;
        let factory = self.get(name).expect("checked by ensure_known");
        factory.build(ctx)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.factories.iter().map(|f| f.name()).collect()
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Built-in observers
// ---------------------------------------------------------------------------

/// Requests a trace aims to keep when sampling; the stride grows with the
/// request count so traces stay bounded at any scale.
pub const TRACE_TARGET_REQUESTS: usize = 1024;

/// The per-request sampling stride for a run of `requests` requests: a
/// request is traced iff `id % stride == 0`. Pure and seed-independent so
/// identical runs trace identical requests.
pub fn sampling_stride(requests: usize) -> u64 {
    (requests / TRACE_TARGET_REQUESTS).max(1) as u64
}

/// Bounded in-memory ring buffer keeping the most recent records — the
/// cheapest observer; useful for tests and post-mortem inspection.
#[derive(Debug, Clone)]
pub struct RingObserver {
    capacity: usize,
    buffer: VecDeque<Record>,
    seen: u64,
}

impl RingObserver {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A ring holding at most `capacity` records (the oldest are dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        RingObserver {
            capacity: capacity.max(1),
            // Pre-size the deque, but never beyond the default: an absurd
            // requested capacity should grow lazily, not up front.
            buffer: VecDeque::with_capacity(capacity.clamp(1, Self::DEFAULT_CAPACITY)),
            seen: 0,
        }
    }

    /// The buffered records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.buffer.iter()
    }
}

impl Default for RingObserver {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl Observer for RingObserver {
    fn name(&self) -> &str {
        "ring"
    }

    fn record(&mut self, record: &Record) {
        self.seen += 1;
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back(*record);
    }

    fn finish(&mut self) -> ObserverReport {
        ObserverReport {
            observer: "ring".to_string(),
            records_seen: self.seen,
            records_kept: self.buffer.len() as u64,
            ..ObserverReport::default()
        }
    }
}

#[derive(Debug)]
struct RingFactory;

impl ObserverFactory for RingFactory {
    fn name(&self) -> &str {
        "ring"
    }
    fn build(&self, _ctx: &ObserverContext) -> Result<Box<dyn Observer>, String> {
        Ok(Box::new(RingObserver::default()))
    }
}

/// JSONL trace sink: every kept record and every tick sample becomes one
/// compact `janus-json` document on its own line, labelled with the policy
/// the run belongs to. Request-scoped records are sampled by
/// [`sampling_stride`]; fleet-scoped records and ticks are always kept.
#[derive(Debug, Clone)]
pub struct TraceObserver {
    policy: String,
    stride: u64,
    lines: String,
    seen: u64,
    kept: u64,
}

impl TraceObserver {
    /// A trace sink for one policy run.
    pub fn new(ctx: &ObserverContext) -> Self {
        TraceObserver {
            policy: ctx.policy.clone(),
            stride: sampling_stride(ctx.requests),
            lines: String::new(),
            seen: 0,
            kept: 0,
        }
    }

    fn push_line(&mut self, body: Value) {
        let mut members = vec![("policy".to_string(), Value::Str(self.policy.clone()))];
        if let Value::Obj(rest) = body {
            members.extend(rest);
        }
        self.lines.push_str(&Value::Obj(members).to_compact());
        self.lines.push('\n');
        self.kept += 1;
    }

    fn keeps(&self, kind: &RecordKind) -> bool {
        match kind.request() {
            Some(id) => id % self.stride == 0,
            None => true,
        }
    }
}

impl Observer for TraceObserver {
    fn name(&self) -> &str {
        "trace"
    }

    fn record(&mut self, record: &Record) {
        self.seen += 1;
        if self.keeps(&record.kind) {
            self.push_line(record.to_json());
        }
    }

    fn tick(&mut self, sample: &TickSample) {
        self.seen += 1;
        let point = TimeSeriesPoint::from_sample(sample);
        let mut body = vec![("type".to_string(), Value::Str("tick".to_string()))];
        if let Value::Obj(rest) = point.to_json() {
            body.extend(rest);
        }
        self.push_line(Value::Obj(body));
    }

    fn finish(&mut self) -> ObserverReport {
        ObserverReport {
            observer: "trace".to_string(),
            records_seen: self.seen,
            records_kept: self.kept,
            trace: Some(std::mem::take(&mut self.lines)),
            ..ObserverReport::default()
        }
    }
}

#[derive(Debug)]
struct TraceFactory;

impl ObserverFactory for TraceFactory {
    fn name(&self) -> &str {
        "trace"
    }
    fn build(&self, ctx: &ObserverContext) -> Result<Box<dyn Observer>, String> {
        Ok(Box::new(TraceObserver::new(ctx)))
    }
}

/// Span-building observer: derives per-request phase breakdowns.
#[derive(Debug, Clone, Default)]
pub struct SpanObserver {
    builder: SpanBuilder,
    seen: u64,
}

impl Observer for SpanObserver {
    fn name(&self) -> &str {
        "spans"
    }

    fn record(&mut self, record: &Record) {
        self.seen += 1;
        self.builder.observe(record);
    }

    fn finish(&mut self) -> ObserverReport {
        ObserverReport {
            observer: "spans".to_string(),
            records_seen: self.seen,
            records_kept: self.seen,
            spans: Some(self.builder.summary()),
            ..ObserverReport::default()
        }
    }
}

#[derive(Debug)]
struct SpanFactory;

impl ObserverFactory for SpanFactory {
    fn name(&self) -> &str {
        "spans"
    }
    fn build(&self, _ctx: &ObserverContext) -> Result<Box<dyn Observer>, String> {
        Ok(Box::new(SpanObserver::default()))
    }
}

/// Time-series sampling observer: keeps every capacity-tick sample.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesObserver {
    series: TimeSeriesReport,
    seen: u64,
}

impl Observer for TimeSeriesObserver {
    fn name(&self) -> &str {
        "time-series"
    }

    fn record(&mut self, _record: &Record) {
        self.seen += 1;
    }

    fn tick(&mut self, sample: &TickSample) {
        self.seen += 1;
        self.series.push(sample);
    }

    fn finish(&mut self) -> ObserverReport {
        ObserverReport {
            observer: "time-series".to_string(),
            records_seen: self.seen,
            records_kept: self.series.len() as u64,
            time_series: Some(std::mem::take(&mut self.series)),
            ..ObserverReport::default()
        }
    }
}

#[derive(Debug)]
struct TimeSeriesFactory;

impl ObserverFactory for TimeSeriesFactory {
    fn name(&self) -> &str {
        "time-series"
    }
    fn build(&self, _ctx: &ObserverContext) -> Result<Box<dyn Observer>, String> {
        Ok(Box::new(TimeSeriesObserver::default()))
    }
}

/// The composite flight recorder: sampled JSONL trace + span breakdowns +
/// tick time series in one observer. This is what `--trace` attaches.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    trace: TraceObserver,
    builder: SpanBuilder,
    series: TimeSeriesReport,
    seen: u64,
}

impl FlightRecorder {
    /// A flight recorder for one policy run.
    pub fn new(ctx: &ObserverContext) -> Self {
        FlightRecorder {
            trace: TraceObserver::new(ctx),
            builder: SpanBuilder::new(),
            series: TimeSeriesReport::default(),
            seen: 0,
        }
    }
}

impl Observer for FlightRecorder {
    fn name(&self) -> &str {
        "flight-recorder"
    }

    fn record(&mut self, record: &Record) {
        self.seen += 1;
        self.trace.record(record);
        self.builder.observe(record);
    }

    fn tick(&mut self, sample: &TickSample) {
        self.seen += 1;
        self.trace.tick(sample);
        self.series.push(sample);
    }

    fn finish(&mut self) -> ObserverReport {
        let trace = self.trace.finish();
        ObserverReport {
            observer: "flight-recorder".to_string(),
            records_seen: self.seen,
            records_kept: trace.records_kept,
            trace: trace.trace,
            spans: Some(self.builder.summary()),
            time_series: Some(std::mem::take(&mut self.series)),
        }
    }
}

#[derive(Debug)]
struct FlightRecorderFactory;

impl ObserverFactory for FlightRecorderFactory {
    fn name(&self) -> &str {
        "flight-recorder"
    }
    fn build(&self, ctx: &ObserverContext) -> Result<Box<dyn Observer>, String> {
        Ok(Box::new(FlightRecorder::new(ctx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ObserverContext {
        ObserverContext {
            seed: 42,
            policy: "ia-late".to_string(),
            requests: 120,
            zones: 2,
            slo: SimDuration::from_secs(3.0),
        }
    }

    fn at(ms: f64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample(ms: f64) -> TickSample {
        TickSample {
            at: at(ms),
            queue_depth: 7,
            inflight: 3,
            active_nodes: 4,
            nodes_per_zone: vec![2, 2],
            utilization: 0.5,
            pool_size: 12,
            shed: 1,
            failed: 0,
            retried: 2,
        }
    }

    #[test]
    fn builtins_register_cheapest_first() {
        let registry = ObserverRegistry::with_builtins();
        assert_eq!(
            registry.names(),
            vec!["ring", "trace", "spans", "time-series", "flight-recorder"]
        );
        assert_eq!(registry.len(), 5);
        assert!(!registry.is_empty());
    }

    #[test]
    fn registry_rejects_unknown_names_and_bad_contexts() {
        let registry = ObserverRegistry::with_builtins();
        let err = registry.ensure_known("black-box").unwrap_err();
        assert!(
            err.contains("unknown observer `black-box`"),
            "unexpected message: {err}"
        );
        assert!(err.contains("flight-recorder"), "should list names: {err}");

        let bad = ObserverContext {
            requests: 0,
            ..ctx()
        };
        let err = registry.build("ring", &bad).map(|_| ()).unwrap_err();
        assert!(err.contains("at least one request"), "got: {err}");
    }

    #[test]
    fn register_fn_replaces_in_place() {
        let mut registry = ObserverRegistry::with_builtins();
        registry.register_fn("trace", |_ctx| {
            Ok(Box::new(RingObserver::with_capacity(1)) as Box<dyn Observer>)
        });
        assert_eq!(
            registry.names(),
            vec!["ring", "trace", "spans", "time-series", "flight-recorder"],
            "replacement must keep the original position"
        );
        let observer = registry.build("trace", &ctx()).unwrap();
        assert_eq!(observer.name(), "ring");
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut ring = RingObserver::with_capacity(3);
        for id in 0..5 {
            ring.record(&Record {
                at: at(id as f64),
                kind: RecordKind::Arrival { request: id },
            });
        }
        let kept: Vec<u64> = ring.records().filter_map(|r| r.kind.request()).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        let report = ring.finish();
        assert_eq!(report.records_seen, 5);
        assert_eq!(report.records_kept, 3);
        assert!(report.trace.is_none() && report.spans.is_none());
    }

    #[test]
    fn every_record_kind_round_trips_through_json() {
        let kinds = vec![
            RecordKind::Arrival { request: 3 },
            RecordKind::Admission {
                request: 3,
                admitted: false,
            },
            RecordKind::Placement {
                request: 3,
                function: 1,
                overcommitted: true,
            },
            RecordKind::ColdStart {
                request: 3,
                function: 1,
                delay: SimDuration::from_millis(125.0),
            },
            RecordKind::ExecStart {
                request: 3,
                function: 1,
            },
            RecordKind::ExecEnd {
                request: 3,
                function: 1,
                exec: SimDuration::from_millis(80.5),
            },
            RecordKind::Retry {
                request: 3,
                attempt: 1,
                lost: SimDuration::from_millis(40.0),
            },
            RecordKind::Fault {
                kind: "zone-outage",
            },
            RecordKind::Scaling {
                from_nodes: 4,
                to_nodes: 6,
            },
            RecordKind::Shed { request: 9 },
            RecordKind::Failed {
                request: 9,
                e2e: SimDuration::from_millis(500.0),
            },
            RecordKind::Completion {
                request: 3,
                e2e: SimDuration::from_millis(2750.0),
                slo_met: true,
            },
        ];
        for kind in kinds {
            let record = Record { at: at(12.5), kind };
            let encoded = record.to_json();
            let line = encoded.to_compact();
            let decoded = Record::from_json(&janus_json::parse(&line).unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", kind.kind_name()));
            assert_eq!(decoded, record, "round trip changed {}", kind.kind_name());
        }
    }

    #[test]
    fn record_decoding_rejects_unknown_types_and_fault_kinds() {
        let bad_type = janus_json::parse("{\"at_ms\":1,\"type\":\"warp\"}").unwrap();
        assert!(Record::from_json(&bad_type)
            .unwrap_err()
            .contains("unknown record type `warp`"));
        let bad_fault =
            janus_json::parse("{\"at_ms\":1,\"type\":\"fault\",\"fault\":\"gremlin\"}").unwrap();
        assert!(Record::from_json(&bad_fault)
            .unwrap_err()
            .contains("unknown fault kind `gremlin`"));
    }

    #[test]
    fn tick_sample_round_trips_through_json() {
        let point = TimeSeriesPoint::from_sample(&sample(1000.0));
        let decoded = TimeSeriesPoint::from_json(&point.to_json()).unwrap();
        assert_eq!(decoded, point);
        assert_eq!(decoded.nodes_per_zone, vec![2, 2]);
    }

    #[test]
    fn sampling_stride_bounds_trace_volume() {
        assert_eq!(sampling_stride(1), 1);
        assert_eq!(sampling_stride(TRACE_TARGET_REQUESTS), 1);
        assert_eq!(sampling_stride(10 * TRACE_TARGET_REQUESTS), 10);
    }

    #[test]
    fn trace_observer_samples_requests_but_keeps_fleet_events() {
        let mut observer = TraceObserver::new(&ObserverContext {
            requests: 2 * TRACE_TARGET_REQUESTS, // stride 2
            ..ctx()
        });
        for id in 0..4 {
            observer.record(&Record {
                at: at(id as f64),
                kind: RecordKind::Arrival { request: id },
            });
        }
        observer.record(&Record {
            at: at(9.0),
            kind: RecordKind::Fault { kind: "crash" },
        });
        observer.tick(&sample(10.0));
        let report = observer.finish();
        assert_eq!(report.records_seen, 6);
        // Arrivals 0 and 2 (stride 2) + the fault + the tick.
        assert_eq!(report.records_kept, 4);
        let trace = report.trace.unwrap();
        assert_eq!(trace.lines().count(), 4);
        for line in trace.lines() {
            let value = janus_json::parse(line).expect("every line is a JSON document");
            assert_eq!(value.get("policy").unwrap().as_str(), Some("ia-late"));
        }
        assert!(trace.contains("\"type\":\"tick\""));
    }

    #[test]
    fn span_builder_decomposes_a_request_with_retry() {
        let mut builder = SpanBuilder::new();
        let feed = |b: &mut SpanBuilder, ms: f64, kind: RecordKind| {
            b.observe(&Record { at: at(ms), kind })
        };
        feed(&mut builder, 0.0, RecordKind::Arrival { request: 1 });
        feed(
            &mut builder,
            0.0,
            RecordKind::ColdStart {
                request: 1,
                function: 0,
                delay: SimDuration::from_millis(100.0),
            },
        );
        feed(
            &mut builder,
            300.0,
            RecordKind::ExecEnd {
                request: 1,
                function: 0,
                exec: SimDuration::from_millis(200.0),
            },
        );
        // Second function is voided by a fault after 50ms, then retried.
        feed(
            &mut builder,
            350.0,
            RecordKind::ColdStart {
                request: 1,
                function: 1,
                delay: SimDuration::from_millis(100.0),
            },
        );
        feed(
            &mut builder,
            400.0,
            RecordKind::Retry {
                request: 1,
                attempt: 1,
                lost: SimDuration::from_millis(50.0),
            },
        );
        feed(
            &mut builder,
            650.0,
            RecordKind::ExecEnd {
                request: 1,
                function: 1,
                exec: SimDuration::from_millis(250.0),
            },
        );
        feed(
            &mut builder,
            650.0,
            RecordKind::Completion {
                request: 1,
                e2e: SimDuration::from_millis(650.0),
                slo_met: false,
            },
        );
        let summary = builder.summary();
        assert_eq!(summary.served, 1);
        assert_eq!(summary.retries, 1);
        assert_eq!(summary.cold_starts, 2);
        assert_eq!(summary.slo_violations, 1);
        assert!(
            (summary.mean_cold_ms - 100.0).abs() < 1e-9,
            "the retried attempt's cold start is folded into lost time, not cold time; got {}",
            summary.mean_cold_ms
        );
        assert!((summary.mean_exec_ms - 450.0).abs() < 1e-9);
        assert!((summary.mean_retry_ms - 50.0).abs() < 1e-9);
        assert!((summary.mean_queue_ms - 50.0).abs() < 1e-9);
        assert!((summary.mean_e2e_ms - 650.0).abs() < 1e-9);
        assert!((summary.mean_critical_path_ms - 550.0).abs() < 1e-9);
    }

    #[test]
    fn span_summary_is_nan_free_when_nothing_is_served() {
        let mut builder = SpanBuilder::new();
        builder.observe(&Record {
            at: at(0.0),
            kind: RecordKind::Arrival { request: 0 },
        });
        builder.observe(&Record {
            at: at(0.0),
            kind: RecordKind::Shed { request: 0 },
        });
        let summary = builder.summary();
        assert_eq!(summary.shed, 1);
        assert_eq!(summary.served, 0);
        for mean in [
            summary.mean_queue_ms,
            summary.mean_cold_ms,
            summary.mean_exec_ms,
            summary.mean_retry_ms,
            summary.mean_e2e_ms,
            summary.mean_critical_path_ms,
        ] {
            assert_eq!(mean, 0.0, "all-shed summaries must stay NaN-free");
        }
        let encoded = summary.to_json().to_pretty();
        assert!(!encoded.contains("null"), "no NaN-null cells: {encoded}");
    }

    #[test]
    fn flight_recorder_fills_all_three_halves() {
        let mut recorder = FlightRecorder::new(&ctx());
        recorder.record(&Record {
            at: at(0.0),
            kind: RecordKind::Arrival { request: 0 },
        });
        recorder.tick(&sample(1000.0));
        recorder.record(&Record {
            at: at(1500.0),
            kind: RecordKind::Completion {
                request: 0,
                e2e: SimDuration::from_millis(1500.0),
                slo_met: true,
            },
        });
        let report = recorder.finish();
        assert_eq!(report.observer, "flight-recorder");
        assert_eq!(report.records_seen, 3);
        let trace = report.trace.as_ref().unwrap();
        assert_eq!(trace.lines().count(), 3);
        let spans = report.spans.as_ref().unwrap();
        assert_eq!(spans.served, 1);
        let series = report.time_series.as_ref().unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series.points[0].nodes_per_zone, vec![2, 2]);
        // The JSON form reports the trace as a line count, not a body.
        let json = report.to_json();
        assert_eq!(json.get("trace_lines").unwrap().as_f64(), Some(3.0));
        assert!(json.get("trace").is_none());
    }

    #[test]
    fn identical_record_streams_produce_byte_identical_traces() {
        let run = || {
            let mut recorder = FlightRecorder::new(&ctx());
            for id in 0..10 {
                recorder.record(&Record {
                    at: at(id as f64 * 10.0),
                    kind: RecordKind::Arrival { request: id },
                });
                recorder.tick(&sample(id as f64 * 10.0 + 5.0));
                recorder.record(&Record {
                    at: at(id as f64 * 10.0 + 7.5),
                    kind: RecordKind::Completion {
                        request: id,
                        e2e: SimDuration::from_millis(7.5),
                        slo_met: true,
                    },
                });
            }
            recorder.finish()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.trace, b.trace, "traces must be byte-identical");
        assert_eq!(a, b);
    }
}
