//! Rendering flight-recorder artefacts.
//!
//! `janus run <exp> --trace out.jsonl` writes one compact JSON document per
//! line; this module reads such an artefact back, replays the records of
//! each policy through the same [`SpanBuilder`] the live `spans` observer
//! uses, collects the tick lines into a [`TimeSeriesReport`], and renders
//! the result as a human-readable report plus a CSV for plotting
//! (`janus report out.jsonl`).

use crate::{Record, SpanBuilder, SpanSummary, TimeSeriesPoint, TimeSeriesReport};
use janus_json::Value;
use std::fmt::Write as _;

/// Everything recovered from one policy's lines of a trace artefact.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyTrace {
    /// The policy the lines were recorded under.
    pub policy: String,
    /// Lifecycle record lines replayed (excludes tick lines).
    pub records: u64,
    /// Span breakdowns rebuilt from the record lines.
    pub spans: SpanSummary,
    /// Telemetry rebuilt from the tick lines.
    pub time_series: TimeSeriesReport,
}

/// A decoded trace artefact: one [`PolicyTrace`] per policy, in first-seen
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Per-policy traces, in the order policies first appear.
    pub policies: Vec<PolicyTrace>,
}

struct PolicyAccumulator {
    policy: String,
    records: u64,
    builder: SpanBuilder,
    time_series: TimeSeriesReport,
}

impl TraceReport {
    /// Decode a JSONL trace body. Every line must be a JSON object with a
    /// `policy` label and either a lifecycle record or a `tick` sample;
    /// errors carry the offending line number.
    pub fn from_jsonl(text: &str) -> Result<TraceReport, String> {
        let mut accumulators: Vec<PolicyAccumulator> = Vec::new();
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fail = |e: String| format!("line {}: {e}", index + 1);
            let value = janus_json::parse(line).map_err(&fail)?;
            let policy = value
                .require("policy")
                .map_err(&fail)?
                .as_str()
                .ok_or_else(|| fail("`policy` not a string".to_string()))?
                .to_string();
            let slot = match accumulators.iter().position(|a| a.policy == policy) {
                Some(i) => i,
                None => {
                    accumulators.push(PolicyAccumulator {
                        policy,
                        records: 0,
                        builder: SpanBuilder::new(),
                        time_series: TimeSeriesReport::default(),
                    });
                    accumulators.len() - 1
                }
            };
            let acc = &mut accumulators[slot];
            let tag = value
                .require("type")
                .map_err(&fail)?
                .as_str()
                .ok_or_else(|| fail("`type` not a string".to_string()))?;
            if tag == "tick" {
                let point = TimeSeriesPoint::from_json(&value).map_err(&fail)?;
                acc.time_series.points.push(point);
            } else {
                let record = Record::from_json(&value).map_err(&fail)?;
                acc.builder.observe(&record);
                acc.records += 1;
            }
        }
        if accumulators.is_empty() {
            return Err("trace artefact contains no lines".to_string());
        }
        Ok(TraceReport {
            policies: accumulators
                .into_iter()
                .map(|acc| PolicyTrace {
                    policy: acc.policy,
                    records: acc.records,
                    spans: acc.builder.summary(),
                    time_series: acc.time_series,
                })
                .collect(),
        })
    }

    /// Render the per-policy phase breakdown and fleet telemetry as a
    /// human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for trace in &self.policies {
            let s = &trace.spans;
            let _ = writeln!(out, "policy {}", trace.policy);
            let _ = writeln!(
                out,
                "  requests  arrivals {}  served {}  shed {}  failed {}  retries {}  slo-violations {}",
                s.arrivals, s.served, s.shed, s.failed, s.retries, s.slo_violations
            );
            let _ = writeln!(
                out,
                "  phases    queue {}  cold-start {}  exec {}  retry-lost {}  e2e {}  critical-path {}",
                ms(s.mean_queue_ms),
                ms(s.mean_cold_ms),
                ms(s.mean_exec_ms),
                ms(s.mean_retry_ms),
                ms(s.mean_e2e_ms),
                ms(s.mean_critical_path_ms),
            );
            let points = &trace.time_series.points;
            if points.is_empty() {
                let _ = writeln!(out, "  telemetry (no capacity ticks recorded)");
                continue;
            }
            let zones = points
                .iter()
                .map(|p| p.nodes_per_zone.len())
                .max()
                .unwrap_or(0);
            let peak_queue = points.iter().map(|p| p.queue_depth).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "  telemetry {} ticks  peak queue {}  ticks as `t_ms nodes[zone..] util pool`:",
                points.len(),
                peak_queue
            );
            for point in points {
                let mut zone_cells = String::new();
                for zone in 0..zones {
                    let n = point.nodes_per_zone.get(zone).copied().unwrap_or(0);
                    let _ = write!(zone_cells, "{n} ");
                }
                let _ = writeln!(
                    out,
                    "    {:>10} {}u={:.2} pool={}",
                    fmt_num(point.at_ms),
                    zone_cells,
                    point.utilization,
                    point.pool_size
                );
            }
        }
        out
    }

    /// Render the telemetry as CSV for plotting: one row per tick per
    /// policy, `nodes_per_zone` flattened into per-zone columns. Cells use
    /// the canonical `janus-json` number formatting, so the CSV never
    /// contains NaN or infinity (all means already degrade to 0.0).
    pub fn to_csv(&self) -> String {
        let zones = self
            .policies
            .iter()
            .flat_map(|t| t.time_series.points.iter())
            .map(|p| p.nodes_per_zone.len())
            .max()
            .unwrap_or(0);
        let mut out = String::from("policy,at_ms,queue_depth,inflight,active_nodes");
        for zone in 0..zones {
            let _ = write!(out, ",zone{zone}_nodes");
        }
        out.push_str(",utilization,pool_size,shed,failed,retried\n");
        for trace in &self.policies {
            for point in &trace.time_series.points {
                let _ = write!(
                    out,
                    "{},{},{},{},{}",
                    trace.policy,
                    fmt_num(point.at_ms),
                    point.queue_depth,
                    point.inflight,
                    point.active_nodes
                );
                for zone in 0..zones {
                    let n = point.nodes_per_zone.get(zone).copied().unwrap_or(0);
                    let _ = write!(out, ",{n}");
                }
                let _ = writeln!(
                    out,
                    ",{},{},{},{},{}",
                    fmt_num(point.utilization),
                    point.pool_size,
                    point.shed,
                    point.failed,
                    point.retried
                );
            }
        }
        out
    }
}

/// Rewrite the `policy` label of every line of a JSONL trace to
/// `<policy>@<suffix>`, preserving everything else byte for byte. Grid
/// experiments use this before concatenating per-cell traces into one
/// artefact, so cells that serve the *same* policy stay distinguishable to
/// [`TraceReport::from_jsonl`] (which groups lines by their label).
pub fn qualify_policy(jsonl: &str, suffix: &str) -> Result<String, String> {
    let mut out = String::with_capacity(jsonl.len() + suffix.len() * 8);
    for (index, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |e: String| format!("line {}: {e}", index + 1);
        let value = janus_json::parse(line).map_err(&fail)?;
        let Value::Obj(mut members) = value else {
            return Err(fail("trace line is not a JSON object".to_string()));
        };
        let slot = members
            .iter_mut()
            .find(|(key, _)| key == "policy")
            .ok_or_else(|| fail("trace line has no `policy` label".to_string()))?;
        let Value::Str(policy) = &slot.1 else {
            return Err(fail("`policy` not a string".to_string()));
        };
        slot.1 = Value::Str(format!("{policy}@{suffix}"));
        out.push_str(&Value::Obj(members).to_compact());
        out.push('\n');
    }
    Ok(out)
}

/// Format a number exactly like the `janus-json` encoder would (integers
/// without a trailing `.0`, non-finite values as `null` — which the span
/// math never produces).
fn fmt_num(n: f64) -> String {
    Value::Num(n).to_compact()
}

fn ms(n: f64) -> String {
    format!("{n:.1}ms")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlightRecorder, Observer, ObserverContext, RecordKind, TickSample};
    use janus_simcore::time::{SimDuration, SimTime};

    fn recorded_trace() -> String {
        let mut recorder = FlightRecorder::new(&ObserverContext {
            seed: 1,
            policy: "ia-late".to_string(),
            requests: 4,
            zones: 2,
            slo: SimDuration::from_secs(1.0),
        });
        for id in 0..4u64 {
            recorder.record(&crate::Record {
                at: SimTime::from_millis(id as f64 * 100.0),
                kind: RecordKind::Arrival { request: id },
            });
        }
        recorder.record(&crate::Record {
            at: SimTime::from_millis(150.0),
            kind: RecordKind::Fault {
                kind: "zone-outage",
            },
        });
        recorder.tick(&TickSample {
            at: SimTime::from_millis(200.0),
            queue_depth: 2,
            inflight: 2,
            active_nodes: 2,
            nodes_per_zone: vec![2, 0],
            utilization: 0.75,
            pool_size: 6,
            shed: 0,
            failed: 1,
            retried: 1,
        });
        recorder.record(&crate::Record {
            at: SimTime::from_millis(350.0),
            kind: RecordKind::Completion {
                request: 0,
                e2e: SimDuration::from_millis(350.0),
                slo_met: true,
            },
        });
        recorder.finish().trace.unwrap()
    }

    #[test]
    fn replaying_a_trace_recovers_spans_and_telemetry() {
        let trace = recorded_trace();
        let report = TraceReport::from_jsonl(&trace).unwrap();
        assert_eq!(report.policies.len(), 1);
        let policy = &report.policies[0];
        assert_eq!(policy.policy, "ia-late");
        assert_eq!(policy.spans.arrivals, 4);
        assert_eq!(policy.spans.served, 1);
        assert_eq!(policy.time_series.len(), 1);
        assert_eq!(policy.time_series.points[0].nodes_per_zone, vec![2, 0]);

        let rendered = report.render();
        assert!(rendered.contains("policy ia-late"));
        assert!(rendered.contains("served 1"));
        assert!(rendered.contains("peak queue 2"));
    }

    #[test]
    fn csv_has_per_zone_columns_and_no_nan_cells() {
        let report = TraceReport::from_jsonl(&recorded_trace()).unwrap();
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("policy,at_ms"));
        assert!(header.contains("zone0_nodes,zone1_nodes"));
        let row = lines.next().unwrap();
        assert!(
            row.starts_with("ia-late,200,2,2,2,2,0,0.75,6,0,1,1"),
            "got: {row}"
        );
        for cell in csv.split([',', '\n']) {
            assert!(
                !matches!(cell, "NaN" | "inf" | "-inf" | "null"),
                "non-finite cell {cell:?} in CSV"
            );
        }
    }

    #[test]
    fn qualified_traces_keep_cells_separate_when_concatenated() {
        let trace = recorded_trace();
        let a = qualify_policy(&trace, "static/admit-all").unwrap();
        let b = qualify_policy(&trace, "utilization/queue-shed").unwrap();
        // Qualification only rewrites the label: stripping the suffix back
        // out recovers the original artefact byte for byte.
        assert_eq!(a.replace("@static/admit-all", ""), trace);
        let merged = format!("{a}{b}");
        let report = TraceReport::from_jsonl(&merged).unwrap();
        let labels: Vec<&str> = report.policies.iter().map(|p| p.policy.as_str()).collect();
        assert_eq!(
            labels,
            vec!["ia-late@static/admit-all", "ia-late@utilization/queue-shed"]
        );
        for policy in &report.policies {
            assert_eq!(policy.spans.arrivals, 4, "each cell keeps its own ledger");
        }
        let err = qualify_policy("{\"type\":\"tick\"}\n", "x").unwrap_err();
        assert!(err.contains("no `policy` label"), "{err}");
        let err = qualify_policy("[1,2]\n", "x").unwrap_err();
        assert!(err.contains("not a JSON object"), "{err}");
    }

    #[test]
    fn malformed_lines_fail_with_the_line_number() {
        let err = TraceReport::from_jsonl("{\"policy\":\"p\",\"type\":\"tick\"}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 1:"), "got: {err}");
        let err = TraceReport::from_jsonl("").unwrap_err();
        assert!(err.contains("no lines"));
    }
}
