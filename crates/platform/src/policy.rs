//! The sizing-policy interface.
//!
//! A sizing policy answers one question, repeatedly: *with how many millicores
//! should the next function of this request run?* Early-binding policies
//! answer it the same way for every request (sizes are fixed at deployment);
//! late-binding policies answer it from the remaining time budget, which is
//! exactly the information barrier the paper's hint mechanism bridges.

use janus_simcore::resources::Millicores;
use janus_simcore::time::SimDuration;
use janus_workloads::workflow::Workflow;
use serde::{Deserialize, Serialize};

/// Per-request, policy-visible context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestContext {
    /// Request identifier.
    pub request_id: u64,
    /// End-to-end latency SLO of the workflow.
    pub slo: SimDuration,
    /// Batch size (concurrency) the request is served at.
    pub concurrency: u32,
    /// Number of functions in the workflow.
    pub workflow_len: usize,
}

/// A function-sizing policy.
///
/// The executor calls [`SizingPolicy::size_next`] immediately before each
/// function of the request starts (for early-binding policies this simply
/// returns the deployment-time size) and [`SizingPolicy::on_complete`] right
/// after it finishes with the observed execution time — the only runtime
/// information the platform shares with any policy.
pub trait SizingPolicy: Send {
    /// Human-readable policy name ("ORION", "Janus", …) used in reports.
    fn name(&self) -> &str;

    /// Whether the policy adapts sizes at runtime (late binding) or fixes
    /// them at deployment time (early binding).
    fn is_late_binding(&self) -> bool;

    /// The CPU allocation for function `index` of this request, given the
    /// remaining time budget before the SLO.
    fn size_next(
        &mut self,
        ctx: &RequestContext,
        index: usize,
        remaining_budget: SimDuration,
    ) -> Millicores;

    /// Notification that function `index` finished after `observed` execution
    /// time. Default: ignore (early-binding policies don't use it).
    fn on_complete(&mut self, _ctx: &RequestContext, _index: usize, _observed: SimDuration) {}

    /// Called once when a request is admitted; lets stateful policies reset
    /// per-request bookkeeping. Default: nothing.
    fn on_admit(&mut self, _ctx: &RequestContext) {}

    /// Mean time the policy spent inside `size_next`, in microseconds, if the
    /// policy tracks it (Janus does, for §V-H). Default: `None`.
    fn mean_decision_time_us(&self) -> Option<f64> {
        None
    }
}

/// The simplest early-binding policy: a fixed per-function allocation vector,
/// applied identically to every request. Both GrandSLAM-style baselines and
/// unit tests build on this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedSizingPolicy {
    name: String,
    sizes: Vec<Millicores>,
}

impl FixedSizingPolicy {
    /// Create a fixed policy from per-function sizes.
    ///
    /// The size vector must be non-empty — `size_next` answers for *every*
    /// function index (out-of-range indices fall back to the last size), so
    /// an empty vector would leave it with no answer at all.
    pub fn new(name: impl Into<String>, sizes: Vec<Millicores>) -> Result<Self, String> {
        let name = name.into();
        if sizes.is_empty() {
            return Err(format!("fixed policy `{name}` needs at least one size"));
        }
        Ok(FixedSizingPolicy { name, sizes })
    }

    /// Create a fixed policy assigning the same size to every function of
    /// `workflow` (GrandSLAM's "identical sizes" constraint). Fails on an
    /// empty workflow for the same reason as [`new`](Self::new).
    pub fn uniform(
        name: impl Into<String>,
        workflow: &Workflow,
        size: Millicores,
    ) -> Result<Self, String> {
        Self::new(name, vec![size; workflow.len()])
    }

    /// The configured sizes.
    pub fn sizes(&self) -> &[Millicores] {
        &self.sizes
    }

    /// Total configured allocation across the workflow.
    pub fn total(&self) -> Millicores {
        self.sizes.iter().copied().sum()
    }
}

impl SizingPolicy for FixedSizingPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_late_binding(&self) -> bool {
        false
    }

    fn size_next(
        &mut self,
        _ctx: &RequestContext,
        index: usize,
        _remaining_budget: SimDuration,
    ) -> Millicores {
        self.sizes
            .get(index)
            .or_else(|| self.sizes.last())
            .copied()
            .expect("constructor guarantees a non-empty size vector")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_workloads::apps::intelligent_assistant;

    fn ctx() -> RequestContext {
        RequestContext {
            request_id: 0,
            slo: SimDuration::from_secs(3.0),
            concurrency: 1,
            workflow_len: 3,
        }
    }

    #[test]
    fn fixed_policy_returns_configured_sizes() {
        let mut p = FixedSizingPolicy::new(
            "fixed",
            vec![
                Millicores::new(2000),
                Millicores::new(1500),
                Millicores::new(1000),
            ],
        )
        .unwrap();
        assert_eq!(p.name(), "fixed");
        assert!(!p.is_late_binding());
        assert_eq!(
            p.size_next(&ctx(), 0, SimDuration::from_secs(3.0)),
            Millicores::new(2000)
        );
        assert_eq!(
            p.size_next(&ctx(), 2, SimDuration::from_secs(0.1)),
            Millicores::new(1000)
        );
        // Out-of-range index falls back to the last size instead of panicking.
        assert_eq!(
            p.size_next(&ctx(), 9, SimDuration::ZERO),
            Millicores::new(1000)
        );
        assert_eq!(p.total(), Millicores::new(4500));
        assert_eq!(p.mean_decision_time_us(), None);
    }

    #[test]
    fn uniform_policy_matches_workflow_length() {
        let ia = intelligent_assistant();
        let p = FixedSizingPolicy::uniform("grandslam", &ia, Millicores::new(2200)).unwrap();
        assert_eq!(p.sizes().len(), 3);
        assert!(p.sizes().iter().all(|&s| s == Millicores::new(2200)));
    }

    #[test]
    fn empty_size_vectors_are_rejected_instead_of_panicking_later() {
        let err = FixedSizingPolicy::new("empty", Vec::new()).unwrap_err();
        assert!(err.contains("at least one size"), "{err}");
    }
}
