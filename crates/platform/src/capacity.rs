//! Elastic capacity: autoscaling and admission control.
//!
//! The paper's evaluation (and the seed's serving loops) runs on a *static*
//! cluster, so overload scenarios — the flash crowd, the bursty MMPP — can
//! only ever saturate a fixed fleet. This module adds the two control loops a
//! production deployment layers on top of request sizing:
//!
//! * an [`AutoscalerPolicy`] observes the cluster at a fixed cadence (the
//!   *capacity tick*) and decides whether to add nodes or drain them
//!   (allocation-aware, via [`Cluster::drain_node`] semantics — see
//!   [`janus_simcore::cluster`]), and
//! * an [`AdmissionPolicy`] decides **at request arrival** whether a request
//!   is served or shed; shed requests are recorded as a
//!   [`Shed`](crate::outcome::RequestDisposition::Shed) outcome and counted
//!   through the [`ServingMetrics`](crate::metrics::ServingMetrics) `shed`
//!   counter, so `admitted + shed == generated` always holds.
//!
//! Both traits are object-safe, and both come with name-addressable
//! registries ([`AutoscalerRegistry`], [`AdmissionRegistry`]) mirroring
//! `janus-core`'s `PolicyRegistry` and `janus-scenarios`'
//! `ScenarioRegistry`, so sessions and sweeps resolve capacity behaviour by
//! name (`"static"`, `"utilization"`, `"queue-depth"`; `"admit-all"`,
//! `"token-bucket"`, `"queue-shed"`) and downstream code can register its
//! own.
//!
//! [`Cluster::drain_node`]: janus_simcore::cluster::Cluster::drain_node

use janus_simcore::time::{SimDuration, SimTime};
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Autoscaling
// ---------------------------------------------------------------------------

/// What the autoscaler sees at each capacity tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingObservation {
    /// Simulated time of the tick.
    pub now: SimTime,
    /// Active (placement-eligible) nodes.
    pub active_nodes: usize,
    /// Cluster-wide CPU utilisation in `[0, 1]` over non-retired nodes.
    pub utilization: f64,
    /// Requests admitted and not yet finished.
    pub inflight: usize,
}

/// The autoscaler's decision for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingAction {
    /// Keep the fleet as it is.
    Hold,
    /// Add this many nodes.
    ScaleUp(usize),
    /// Drain this many nodes (least-allocated first; allocation-aware).
    ScaleDown(usize),
}

/// An object-safe cluster autoscaling policy, evaluated at a fixed cadence
/// by the open-loop capacity tick.
pub trait AutoscalerPolicy: Send + fmt::Debug {
    /// Display name the policy is registered (and reported) under.
    fn name(&self) -> &str;

    /// Evaluation cadence of the capacity tick.
    fn tick(&self) -> SimDuration {
        SimDuration::from_secs(1.0)
    }

    /// Observe the cluster and decide. Policies own their bounds (min/max
    /// nodes, cool-down); the serving loop applies the action verbatim,
    /// except that it never drains the last active node.
    fn observe(&mut self, obs: &ScalingObservation) -> ScalingAction;
}

/// The static (no-op) autoscaler: the paper's fixed fleet.
#[derive(Debug, Clone, Default)]
pub struct StaticAutoscaler;

impl AutoscalerPolicy for StaticAutoscaler {
    fn name(&self) -> &str {
        "static"
    }

    fn observe(&mut self, _obs: &ScalingObservation) -> ScalingAction {
        ScalingAction::Hold
    }
}

/// Utilization-threshold step scaling with a cool-down window: scale up by
/// `step` when utilisation exceeds `high`, drain `step` when it falls below
/// `low`, and hold for at least `cooldown` between consecutive actions so
/// one burst cannot thrash the fleet.
#[derive(Debug, Clone)]
pub struct UtilizationThresholdAutoscaler {
    /// Scale up above this utilisation.
    pub high: f64,
    /// Scale down below this utilisation.
    pub low: f64,
    /// Nodes added / drained per action.
    pub step: usize,
    /// Minimum simulated time between actions.
    pub cooldown: SimDuration,
    /// Never drain below this many active nodes.
    pub min_nodes: usize,
    /// Never grow beyond this many active nodes.
    pub max_nodes: usize,
    /// Evaluation cadence.
    pub tick: SimDuration,
    last_action_at: Option<SimTime>,
}

impl UtilizationThresholdAutoscaler {
    /// Build with validated thresholds (`0 <= low < high <= 1`) and bounds.
    pub fn new(
        high: f64,
        low: f64,
        step: usize,
        cooldown: SimDuration,
        min_nodes: usize,
        max_nodes: usize,
    ) -> Result<Self, String> {
        if !(high.is_finite() && low.is_finite() && (0.0..=1.0).contains(&high) && low >= 0.0)
            || low >= high
        {
            return Err(format!(
                "utilization thresholds need 0 <= low < high <= 1, got low {low} high {high}"
            ));
        }
        if step == 0 {
            return Err("utilization autoscaler needs a positive step".into());
        }
        if min_nodes == 0 || max_nodes < min_nodes {
            return Err(format!(
                "utilization autoscaler needs 1 <= min_nodes <= max_nodes, got {min_nodes}..{max_nodes}"
            ));
        }
        Ok(UtilizationThresholdAutoscaler {
            high,
            low,
            step,
            cooldown,
            min_nodes,
            max_nodes,
            tick: SimDuration::from_secs(1.0),
            last_action_at: None,
        })
    }
}

impl AutoscalerPolicy for UtilizationThresholdAutoscaler {
    fn name(&self) -> &str {
        "utilization"
    }

    fn tick(&self) -> SimDuration {
        self.tick
    }

    fn observe(&mut self, obs: &ScalingObservation) -> ScalingAction {
        if let Some(last) = self.last_action_at {
            if obs.now.saturating_since(last) < self.cooldown {
                return ScalingAction::Hold;
            }
        }
        if obs.utilization > self.high && obs.active_nodes < self.max_nodes {
            self.last_action_at = Some(obs.now);
            return ScalingAction::ScaleUp(self.step.min(self.max_nodes - obs.active_nodes));
        }
        if obs.utilization < self.low && obs.active_nodes > self.min_nodes {
            self.last_action_at = Some(obs.now);
            return ScalingAction::ScaleDown(self.step.min(obs.active_nodes - self.min_nodes));
        }
        ScalingAction::Hold
    }
}

/// Queue-depth-proportional scaling: size the fleet so each active node
/// carries at most `target_inflight_per_node` admitted-and-unfinished
/// requests, within `[min_nodes, max_nodes]`.
#[derive(Debug, Clone)]
pub struct QueueDepthAutoscaler {
    /// Desired in-flight requests per active node.
    pub target_inflight_per_node: f64,
    /// Never drain below this many active nodes.
    pub min_nodes: usize,
    /// Never grow beyond this many active nodes.
    pub max_nodes: usize,
    /// Evaluation cadence.
    pub tick: SimDuration,
}

impl QueueDepthAutoscaler {
    /// Build with a validated positive target and bounds.
    pub fn new(
        target_inflight_per_node: f64,
        min_nodes: usize,
        max_nodes: usize,
    ) -> Result<Self, String> {
        if !(target_inflight_per_node.is_finite() && target_inflight_per_node > 0.0) {
            return Err(format!(
                "queue-depth autoscaler needs a positive per-node target, got {target_inflight_per_node}"
            ));
        }
        if min_nodes == 0 || max_nodes < min_nodes {
            return Err(format!(
                "queue-depth autoscaler needs 1 <= min_nodes <= max_nodes, got {min_nodes}..{max_nodes}"
            ));
        }
        Ok(QueueDepthAutoscaler {
            target_inflight_per_node,
            min_nodes,
            max_nodes,
            tick: SimDuration::from_secs(1.0),
        })
    }
}

impl AutoscalerPolicy for QueueDepthAutoscaler {
    fn name(&self) -> &str {
        "queue-depth"
    }

    fn tick(&self) -> SimDuration {
        self.tick
    }

    fn observe(&mut self, obs: &ScalingObservation) -> ScalingAction {
        let desired = (obs.inflight as f64 / self.target_inflight_per_node).ceil() as usize;
        let desired = desired.clamp(self.min_nodes, self.max_nodes);
        match desired.cmp(&obs.active_nodes) {
            std::cmp::Ordering::Greater => ScalingAction::ScaleUp(desired - obs.active_nodes),
            std::cmp::Ordering::Less => ScalingAction::ScaleDown(obs.active_nodes - desired),
            std::cmp::Ordering::Equal => ScalingAction::Hold,
        }
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// An object-safe admission-control policy, consulted once per arrival.
pub trait AdmissionPolicy: Send + fmt::Debug {
    /// Display name the policy is registered (and reported) under.
    fn name(&self) -> &str;

    /// Decide the arrival at `now`, with `inflight` requests admitted and
    /// not yet finished. `false` sheds the request.
    fn admit(&mut self, now: SimTime, inflight: usize) -> bool;
}

/// Admit every request (the seed's behaviour).
#[derive(Debug, Clone, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &str {
        "admit-all"
    }

    fn admit(&mut self, _now: SimTime, _inflight: usize) -> bool {
        true
    }
}

/// Token-bucket rate limiting: requests spend one token; tokens refill at
/// `rate_per_sec` up to `burst`. Arrivals beyond the sustained rate plus the
/// burst allowance are shed.
#[derive(Debug, Clone)]
pub struct TokenBucketAdmission {
    /// Sustained admission rate (tokens per second).
    pub rate_per_sec: f64,
    /// Bucket capacity (burst allowance).
    pub burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucketAdmission {
    /// Build a full bucket with validated positive rate and burst.
    pub fn new(rate_per_sec: f64, burst: f64) -> Result<Self, String> {
        if !(rate_per_sec.is_finite() && rate_per_sec > 0.0) {
            return Err(format!(
                "token bucket needs a positive rate, got {rate_per_sec}"
            ));
        }
        if !(burst.is_finite() && burst >= 1.0) {
            return Err(format!("token bucket needs burst >= 1, got {burst}"));
        }
        Ok(TokenBucketAdmission {
            rate_per_sec,
            burst,
            tokens: burst,
            last_refill: SimTime::ZERO,
        })
    }
}

impl AdmissionPolicy for TokenBucketAdmission {
    fn name(&self) -> &str {
        "token-bucket"
    }

    fn admit(&mut self, now: SimTime, _inflight: usize) -> bool {
        let elapsed = now.saturating_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs() * self.rate_per_sec).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Queue-length shedding: admit while fewer than `max_inflight` requests are
/// in flight, shed otherwise — the classic load-shedding front door.
#[derive(Debug, Clone)]
pub struct QueueLengthAdmission {
    /// Admit while `inflight < max_inflight`.
    pub max_inflight: usize,
}

impl QueueLengthAdmission {
    /// Build with a validated positive bound.
    pub fn new(max_inflight: usize) -> Result<Self, String> {
        if max_inflight == 0 {
            return Err("queue-length admission needs max_inflight >= 1".into());
        }
        Ok(QueueLengthAdmission { max_inflight })
    }
}

impl AdmissionPolicy for QueueLengthAdmission {
    fn name(&self) -> &str {
        "queue-shed"
    }

    fn admit(&mut self, _now: SimTime, inflight: usize) -> bool {
        inflight < self.max_inflight
    }
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

/// Everything a capacity factory may consult when instantiating a policy for
/// one serving run — mirrors `janus-scenarios`' `ScenarioContext`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityContext {
    /// Long-run mean arrival rate of the run (requests per second).
    pub base_rps: f64,
    /// Number of requests the run will generate.
    pub requests: usize,
    /// Nodes the cluster starts with.
    pub initial_nodes: usize,
    /// The end-to-end latency SLO requests are served under.
    pub slo: SimDuration,
}

impl CapacityContext {
    fn validate(&self) -> Result<(), String> {
        if !(self.base_rps.is_finite() && self.base_rps > 0.0) {
            return Err(format!(
                "capacity context needs a positive base rate, got {}",
                self.base_rps
            ));
        }
        if self.initial_nodes == 0 {
            return Err("capacity context needs at least one initial node".into());
        }
        Ok(())
    }
}

/// An object-safe factory that instantiates one named autoscaler.
pub trait AutoscalerFactory: Send + Sync {
    /// Registered (and reported) name.
    fn name(&self) -> &str;

    /// Instantiate the autoscaler for one serving run.
    fn build(&self, ctx: &CapacityContext) -> Result<Box<dyn AutoscalerPolicy>, String>;
}

/// An object-safe factory that instantiates one named admission policy.
pub trait AdmissionFactory: Send + Sync {
    /// Registered (and reported) name.
    fn name(&self) -> &str;

    /// Instantiate the admission policy for one serving run.
    fn build(&self, ctx: &CapacityContext) -> Result<Box<dyn AdmissionPolicy>, String>;
}

macro_rules! capacity_registry {
    ($registry:ident, $factory:ident, $policy:ident, $kind:literal) => {
        /// An ordered, open registry of named factories. Registration order
        /// is preserved (it drives sweep ordering); re-registering a name
        /// replaces the earlier entry in place.
        #[derive(Clone, Default)]
        pub struct $registry {
            factories: Vec<Arc<dyn $factory>>,
        }

        impl fmt::Debug for $registry {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct(stringify!($registry))
                    .field("names", &self.names())
                    .finish()
            }
        }

        impl $registry {
            /// An empty registry (no built-ins).
            pub fn new() -> Self {
                Self::default()
            }

            /// Register a factory. Replaces any earlier factory with the
            /// same name (keeping its position), otherwise appends.
            pub fn register(&mut self, factory: Arc<dyn $factory>) -> &mut Self {
                match self
                    .factories
                    .iter()
                    .position(|f| f.name() == factory.name())
                {
                    Some(i) => self.factories[i] = factory,
                    None => self.factories.push(factory),
                }
                self
            }

            /// Closure shorthand for [`register`](Self::register).
            pub fn register_fn<F>(&mut self, name: impl Into<String>, build: F) -> &mut Self
            where
                F: Fn(&CapacityContext) -> Result<Box<dyn $policy>, String> + Send + Sync + 'static,
            {
                struct FnFactory<F> {
                    name: String,
                    build: F,
                }
                impl<F> $factory for FnFactory<F>
                where
                    F: Fn(&CapacityContext) -> Result<Box<dyn $policy>, String> + Send + Sync,
                {
                    fn name(&self) -> &str {
                        &self.name
                    }
                    fn build(&self, ctx: &CapacityContext) -> Result<Box<dyn $policy>, String> {
                        (self.build)(ctx)
                    }
                }
                self.register(Arc::new(FnFactory {
                    name: name.into(),
                    build,
                }))
            }

            /// Look a factory up by its registered name.
            pub fn get(&self, name: &str) -> Option<Arc<dyn $factory>> {
                self.factories.iter().find(|f| f.name() == name).cloned()
            }

            fn unknown_name_error(&self, name: &str) -> String {
                format!(
                    concat!("unknown ", $kind, " `{}`; registered: {}"),
                    name,
                    self.names().join(", ")
                )
            }

            /// Check that `name` is registered, with an informative error
            /// listing the known names otherwise.
            pub fn ensure_known(&self, name: &str) -> Result<(), String> {
                if self.get(name).is_some() {
                    Ok(())
                } else {
                    Err(self.unknown_name_error(name))
                }
            }

            /// Instantiate the named policy, with an informative error for
            /// unknown names or invalid contexts.
            pub fn build(
                &self,
                name: &str,
                ctx: &CapacityContext,
            ) -> Result<Box<dyn $policy>, String> {
                ctx.validate()?;
                match self.get(name) {
                    Some(factory) => factory.build(ctx),
                    None => Err(self.unknown_name_error(name)),
                }
            }

            /// Registered names, in registration order.
            pub fn names(&self) -> Vec<&str> {
                self.factories.iter().map(|f| f.name()).collect()
            }

            /// Number of registered factories.
            pub fn len(&self) -> usize {
                self.factories.len()
            }

            /// True when nothing is registered.
            pub fn is_empty(&self) -> bool {
                self.factories.is_empty()
            }
        }
    };
}

capacity_registry!(
    AutoscalerRegistry,
    AutoscalerFactory,
    AutoscalerPolicy,
    "autoscaler"
);
capacity_registry!(
    AdmissionRegistry,
    AdmissionFactory,
    AdmissionPolicy,
    "admission policy"
);

impl AutoscalerRegistry {
    /// A registry pre-loaded with the built-in autoscalers: `static` (the
    /// paper's fixed fleet), `utilization` (threshold step scaling with a 5 s
    /// cool-down, up to 8× the initial fleet), and `queue-depth`
    /// (proportional to in-flight requests).
    pub fn with_builtins() -> Self {
        let mut registry = AutoscalerRegistry::new();
        registry.register_fn("static", |_ctx| {
            Ok(Box::new(StaticAutoscaler) as Box<dyn AutoscalerPolicy>)
        });
        registry.register_fn("utilization", |ctx| {
            Ok(Box::new(UtilizationThresholdAutoscaler::new(
                0.75,
                0.25,
                1,
                SimDuration::from_secs(5.0),
                ctx.initial_nodes,
                ctx.initial_nodes.saturating_mul(8),
            )?) as Box<dyn AutoscalerPolicy>)
        });
        registry.register_fn("queue-depth", |ctx| {
            // Steady state carries ~rps × SLO in-flight requests; target a
            // proportional share per node of the initial fleet.
            let target = (ctx.base_rps * ctx.slo.as_secs() / ctx.initial_nodes as f64).max(1.0);
            Ok(Box::new(QueueDepthAutoscaler::new(
                target,
                ctx.initial_nodes,
                ctx.initial_nodes.saturating_mul(8),
            )?) as Box<dyn AutoscalerPolicy>)
        });
        registry
    }
}

impl AdmissionRegistry {
    /// A registry pre-loaded with the built-in admission policies:
    /// `admit-all`, `token-bucket` (1.5× the base rate sustained, one
    /// second of burst) and `queue-shed` (shed beyond ~2× the SLO-implied
    /// in-flight depth).
    pub fn with_builtins() -> Self {
        let mut registry = AdmissionRegistry::new();
        registry.register_fn("admit-all", |_ctx| {
            Ok(Box::new(AdmitAll) as Box<dyn AdmissionPolicy>)
        });
        registry.register_fn("token-bucket", |ctx| {
            let rate = 1.5 * ctx.base_rps;
            Ok(Box::new(TokenBucketAdmission::new(rate, rate.max(10.0))?)
                as Box<dyn AdmissionPolicy>)
        });
        registry.register_fn("queue-shed", |ctx| {
            // Stable operation keeps ~rps × SLO requests in flight; twice
            // that depth means the system is far behind — shed.
            let depth = (2.0 * ctx.base_rps * ctx.slo.as_secs()).ceil() as usize;
            Ok(Box::new(QueueLengthAdmission::new(depth.max(1))?) as Box<dyn AdmissionPolicy>)
        });
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(now_s: f64, nodes: usize, util: f64, inflight: usize) -> ScalingObservation {
        ScalingObservation {
            now: SimTime::from_secs(now_s),
            active_nodes: nodes,
            utilization: util,
            inflight,
        }
    }

    fn ctx() -> CapacityContext {
        CapacityContext {
            base_rps: 10.0,
            requests: 1000,
            initial_nodes: 2,
            slo: SimDuration::from_secs(3.0),
        }
    }

    #[test]
    fn static_autoscaler_always_holds() {
        let mut scaler = StaticAutoscaler;
        assert_eq!(scaler.observe(&obs(0.0, 1, 0.99, 500)), ScalingAction::Hold);
        assert_eq!(scaler.tick(), SimDuration::from_secs(1.0));
    }

    #[test]
    fn utilization_autoscaler_steps_with_cooldown() {
        let mut scaler =
            UtilizationThresholdAutoscaler::new(0.75, 0.25, 2, SimDuration::from_secs(5.0), 1, 4)
                .unwrap();
        // Over the high threshold: scale up by the step.
        assert_eq!(
            scaler.observe(&obs(0.0, 1, 0.9, 0)),
            ScalingAction::ScaleUp(2)
        );
        // Cool-down holds even under pressure.
        assert_eq!(scaler.observe(&obs(2.0, 3, 0.95, 0)), ScalingAction::Hold);
        // After the cool-down, the step is clamped to max_nodes.
        assert_eq!(
            scaler.observe(&obs(6.0, 3, 0.95, 0)),
            ScalingAction::ScaleUp(1)
        );
        // Low utilisation drains, clamped to min_nodes.
        assert_eq!(
            scaler.observe(&obs(20.0, 2, 0.1, 0)),
            ScalingAction::ScaleDown(1)
        );
        // In the comfort band: hold.
        assert_eq!(scaler.observe(&obs(40.0, 2, 0.5, 0)), ScalingAction::Hold);
    }

    #[test]
    fn utilization_autoscaler_rejects_bad_parameters() {
        let cd = SimDuration::ZERO;
        assert!(UtilizationThresholdAutoscaler::new(0.5, 0.75, 1, cd, 1, 4).is_err());
        assert!(UtilizationThresholdAutoscaler::new(1.5, 0.2, 1, cd, 1, 4).is_err());
        // A negative low bound would make scale-down silently unreachable.
        assert!(UtilizationThresholdAutoscaler::new(0.75, -0.1, 1, cd, 1, 4).is_err());
        assert!(UtilizationThresholdAutoscaler::new(0.75, 0.25, 0, cd, 1, 4).is_err());
        assert!(UtilizationThresholdAutoscaler::new(0.75, 0.25, 1, cd, 0, 4).is_err());
        assert!(UtilizationThresholdAutoscaler::new(0.75, 0.25, 1, cd, 4, 2).is_err());
    }

    #[test]
    fn queue_depth_autoscaler_tracks_inflight_proportionally() {
        let mut scaler = QueueDepthAutoscaler::new(4.0, 1, 6).unwrap();
        // 10 in flight at 4/node wants 3 nodes.
        assert_eq!(
            scaler.observe(&obs(0.0, 1, 0.0, 10)),
            ScalingAction::ScaleUp(2)
        );
        assert_eq!(scaler.observe(&obs(1.0, 3, 0.0, 10)), ScalingAction::Hold);
        // Empty queue drains back to the minimum.
        assert_eq!(
            scaler.observe(&obs(2.0, 3, 0.0, 0)),
            ScalingAction::ScaleDown(2)
        );
        // Desired is clamped to max_nodes.
        assert_eq!(scaler.observe(&obs(3.0, 6, 0.0, 1000)), ScalingAction::Hold);
        assert!(QueueDepthAutoscaler::new(0.0, 1, 4).is_err());
        assert!(QueueDepthAutoscaler::new(4.0, 3, 2).is_err());
    }

    #[test]
    fn token_bucket_refills_at_the_sustained_rate() {
        let mut bucket = TokenBucketAdmission::new(1.0, 2.0).unwrap();
        // Burst of two admitted immediately, third shed.
        assert!(bucket.admit(SimTime::ZERO, 0));
        assert!(bucket.admit(SimTime::ZERO, 0));
        assert!(!bucket.admit(SimTime::ZERO, 0));
        // One second refills one token.
        assert!(bucket.admit(SimTime::from_secs(1.0), 0));
        assert!(!bucket.admit(SimTime::from_secs(1.0), 0));
        // Refill is capped at the burst size.
        assert!(bucket.admit(SimTime::from_secs(100.0), 0));
        assert!(bucket.admit(SimTime::from_secs(100.0), 0));
        assert!(!bucket.admit(SimTime::from_secs(100.0), 0));
        assert!(TokenBucketAdmission::new(0.0, 2.0).is_err());
        assert!(TokenBucketAdmission::new(1.0, 0.5).is_err());
    }

    #[test]
    fn queue_length_admission_sheds_above_the_bound() {
        let mut policy = QueueLengthAdmission::new(3).unwrap();
        assert!(policy.admit(SimTime::ZERO, 0));
        assert!(policy.admit(SimTime::ZERO, 2));
        assert!(!policy.admit(SimTime::ZERO, 3));
        assert!(!policy.admit(SimTime::ZERO, 10));
        assert!(QueueLengthAdmission::new(0).is_err());
    }

    #[test]
    fn registries_resolve_builtins_by_name() {
        let autoscalers = AutoscalerRegistry::with_builtins();
        assert_eq!(
            autoscalers.names(),
            vec!["static", "utilization", "queue-depth"]
        );
        assert_eq!(autoscalers.len(), 3);
        assert!(!autoscalers.is_empty());
        for name in autoscalers.names() {
            let policy = autoscalers.build(name, &ctx()).unwrap();
            assert_eq!(policy.name(), name);
        }
        let admissions = AdmissionRegistry::with_builtins();
        assert_eq!(
            admissions.names(),
            vec!["admit-all", "token-bucket", "queue-shed"]
        );
        for name in admissions.names() {
            let policy = admissions.build(name, &ctx()).unwrap();
            assert_eq!(policy.name(), name);
        }
    }

    #[test]
    fn registries_reject_unknown_names_and_bad_contexts() {
        let autoscalers = AutoscalerRegistry::with_builtins();
        let err = autoscalers.build("hypergrowth", &ctx()).unwrap_err();
        assert!(err.contains("unknown autoscaler `hypergrowth`"), "{err}");
        assert!(err.contains("utilization"), "{err}");
        let err = autoscalers
            .build(
                "static",
                &CapacityContext {
                    base_rps: 0.0,
                    ..ctx()
                },
            )
            .unwrap_err();
        assert!(err.contains("positive base rate"), "{err}");
        let err = AdmissionRegistry::with_builtins()
            .build("bouncer", &ctx())
            .unwrap_err();
        assert!(err.contains("unknown admission policy `bouncer`"), "{err}");
    }

    #[test]
    fn custom_factories_register_and_replace() {
        let mut registry = AdmissionRegistry::with_builtins();
        registry.register_fn("strict", |_ctx| {
            Ok(Box::new(QueueLengthAdmission::new(1)?) as Box<dyn AdmissionPolicy>)
        });
        assert_eq!(registry.len(), 4);
        let mut built = registry.build("strict", &ctx()).unwrap();
        assert!(built.admit(SimTime::ZERO, 0));
        assert!(!built.admit(SimTime::ZERO, 1));
        // Replacing keeps the original position.
        registry.register_fn("admit-all", |_ctx| {
            Ok(Box::new(QueueLengthAdmission::new(1)?) as Box<dyn AdmissionPolicy>)
        });
        assert_eq!(registry.len(), 4);
        assert_eq!(registry.names()[0], "admit-all");
    }
}
