//! Open-loop, event-driven serving simulation.
//!
//! The closed-loop executor in [`crate::executor`] reproduces the paper's
//! evaluation methodology (replay 1000 requests back-to-back). This module
//! exercises the platform the way a production deployment would see it:
//! requests arrive at their `arrival_offset`s, several workflows are in
//! flight at once, pods are shared through the warm pool, and co-location of
//! concurrently running instances creates real interference.
//!
//! The simulation is agnostic to *how* the offsets were produced: it serves
//! any arrival process — constant-rate Poisson (the historical default),
//! diurnal, bursty MMPP, flash crowds, replayed traces — as long as each
//! request carries its timestamp. `janus-scenarios` defines the processes
//! and `janus-core`'s session builder (`.arrivals(..)` / `.scenario(..)`)
//! threads them into the request generator; this module is used by the
//! queueing / load / scenario-sweep experiments and by integration tests of
//! the discrete-event substrate.
//!
//! ## Streaming arrivals
//!
//! Arrivals are pulled lazily from a [`RequestSource`]: the event queue
//! holds **one pending arrival per source** (plus in-flight completions and
//! the capacity tick), not the whole request set. Popping an arrival
//! immediately draws and schedules the source's next one, so a run over a
//! lazy generator completes in memory bounded by in-flight work regardless
//! of the request count — the regime the `flash_scale` experiment proves at
//! 10⁸ requests. Arrivals are scheduled in a lower tie-break class than
//! completions and ticks, which provably reproduces the pop order of the
//! historical pre-seeded queue (where arrivals always carried the globally
//! smallest sequence numbers), so streaming and materialized runs are
//! bit-identical. The slice-backed entry points ([`run`] and friends) wrap
//! their requests in a [`SliceSource`] and serve them through the same lazy
//! core.
//!
//! [`run`]: OpenLoopSimulation::run

use crate::capacity::{AdmissionPolicy, AutoscalerPolicy, ScalingAction, ScalingObservation};
use crate::metrics::ServingMetrics;
use crate::outcome::{
    CapacityReport, RequestDisposition, RequestOutcome, ScalingEvent, ServingReport,
};
use crate::policy::{RequestContext, SizingPolicy};
use janus_chaos::{FaultAction, FaultEvent, FaultSchedule};
use janus_observe::{Observer, Record, RecordKind, TickSample};
use janus_simcore::cluster::{Cluster, ClusterConfig, NodeState};
use janus_simcore::engine::{Engine, EngineConfig};
use janus_simcore::interference::InterferenceModel;
use janus_simcore::node::NodeId;
use janus_simcore::pod::PodId;
use janus_simcore::pool::{PoolConfig, PoolManager};
use janus_simcore::resources::Millicores;
use janus_simcore::rng::SimRng;
use janus_simcore::time::{SimDuration, SimTime};
use janus_workloads::request::{RequestInput, RequestSource, SliceSource};
use janus_workloads::workflow::Workflow;
use serde::{Deserialize, Serialize};
// janus-lint: allow(nondeterminism) — in-flight/pod indices for keyed lookup; event order comes from the BinaryHeap, never map iteration
use std::collections::{HashMap, HashSet};

/// Open-loop simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// End-to-end latency SLO.
    pub slo: SimDuration,
    /// Batch size (concurrency) requests are served at.
    pub concurrency: u32,
    /// Cluster layout.
    pub cluster: ClusterConfig,
    /// Warm-pool configuration.
    pub pool: PoolConfig,
    /// Interference model.
    pub interference: InterferenceModel,
    /// Whether startup delays count against latency.
    pub count_startup_delays: bool,
}

impl OpenLoopConfig {
    /// Default open-loop setup for a given SLO.
    pub fn new(slo: SimDuration) -> Self {
        OpenLoopConfig {
            slo,
            concurrency: 1,
            cluster: ClusterConfig::default(),
            pool: PoolConfig::default(),
            interference: InterferenceModel::paper_calibrated(),
            count_startup_delays: true,
        }
    }
}

/// Tie-break class of arrival events: a same-timestamp arrival pops before
/// any completion or tick, exactly as in the pre-seeded queue where
/// arrivals carried the globally smallest sequence numbers.
const CLASS_ARRIVAL: u8 = 0;
/// Tie-break class of follow-up work scheduled from inside the run
/// (function completions, capacity ticks).
const CLASS_FOLLOWUP: u8 = 1;

#[derive(Debug, Clone)]
enum Event {
    Arrival(RequestInput),
    FunctionComplete {
        request_id: u64,
        index: usize,
        pod: PodId,
        exec: SimDuration,
        elapsed: SimDuration,
    },
    /// Periodic capacity evaluation: recycle idle pods, retarget the warm
    /// pool, and let the autoscaler act. Only scheduled when the run has
    /// [`CapacityControls`].
    CapacityTick,
}

/// The elastic-capacity control loops of one open-loop run: the autoscaler
/// evaluated at its tick cadence and the admission policy consulted at every
/// arrival. Both are exclusive borrows — each run re-uses or re-builds its
/// policies explicitly, keeping determinism in the caller's hands.
#[derive(Debug)]
pub struct CapacityControls<'a> {
    /// Cluster autoscaling policy.
    pub autoscaler: &'a mut dyn AutoscalerPolicy,
    /// Request admission policy.
    pub admission: &'a mut dyn AdmissionPolicy,
    /// Compiled fault schedule to deliver through the capacity tick
    /// (`None` for fault-free runs). Faults fire at the first tick at or
    /// after their scheduled instant, so they interleave deterministically
    /// with autoscaling and admission decisions.
    pub faults: Option<FaultSchedule>,
}

/// A fault-interrupted request is restarted at most this many times before
/// it is failed for good.
const FAULT_RETRY_BUDGET: u32 = 1;

/// Run-side state of one fault schedule: the delivery cursor, the
/// seed-derived victim RNG, tombstones for stale completion events of pods
/// lost mid-flight, and the fault counters folded into the final
/// [`CapacityReport`].
struct FaultRuntime {
    injector: String,
    events: Vec<FaultEvent>,
    cursor: usize,
    rng: SimRng,
    lost_pods: HashSet<PodId>,
    /// Preempted nodes and the instant their termination notice expires.
    preempt_deadlines: Vec<(NodeId, SimTime)>,
    /// Degraded nodes: `(node, service-time factor, degraded until)`.
    slow: Vec<(NodeId, f64, SimTime)>,
    applied: usize,
    nodes_lost: usize,
    failed: usize,
    retried: usize,
}

impl FaultRuntime {
    fn new(schedule: FaultSchedule) -> Self {
        FaultRuntime {
            injector: schedule.injector,
            rng: SimRng::seed_from_u64(schedule.victim_seed),
            events: schedule.events,
            cursor: 0,
            lost_pods: HashSet::new(),
            preempt_deadlines: Vec::new(),
            slow: Vec::new(),
            applied: 0,
            nodes_lost: 0,
            failed: 0,
            retried: 0,
        }
    }

    /// Service-time multiplier the pod's node is currently subjected to
    /// (1.0 when healthy or unplaced).
    fn slow_factor(&self, node: Option<NodeId>, now: SimTime) -> f64 {
        let Some(node) = node else { return 1.0 };
        self.slow
            .iter()
            .filter(|(n, _, until)| *n == node && now < *until)
            .map(|(_, factor, _)| *factor)
            .fold(1.0, f64::max)
    }

    /// Pick up to `count` distinct victims among the active nodes, driven by
    /// the schedule's victim seed. The candidate list is in id order, so the
    /// same seed against the same fleet picks the same victims.
    fn pick_victims(&mut self, cluster: &Cluster, count: usize) -> Vec<NodeId> {
        let mut candidates = cluster.active_nodes();
        let mut victims = Vec::new();
        while victims.len() < count && !candidates.is_empty() {
            let idx = self.rng.int_range(0, candidates.len() as u64 - 1) as usize;
            victims.push(candidates.swap_remove(idx));
        }
        victims.sort_by_key(|id| id.0);
        victims
    }
}

/// Book-keeping behind one run's [`CapacityReport`].
struct CapacityAccounting {
    events: Vec<ScalingEvent>,
    scale_ups: usize,
    scale_downs: usize,
    node_seconds: f64,
    billed_until: SimTime,
    peak_nodes: usize,
    peak_inflight: usize,
    pods_recycled: usize,
    shed: usize,
}

impl CapacityAccounting {
    fn new(initial_nodes: usize) -> Self {
        CapacityAccounting {
            events: Vec::new(),
            scale_ups: 0,
            scale_downs: 0,
            node_seconds: 0.0,
            billed_until: SimTime::ZERO,
            peak_nodes: initial_nodes,
            peak_inflight: 0,
            pods_recycled: 0,
            shed: 0,
        }
    }

    /// Bill the elapsed interval at the pre-event node count. Called before
    /// anything can change the fleet, so the node-seconds integral is exact.
    fn bill(&mut self, now: SimTime, nodes: usize) {
        self.node_seconds += now.saturating_since(self.billed_until).as_secs() * nodes as f64;
        self.billed_until = now;
        self.peak_nodes = self.peak_nodes.max(nodes);
    }
}

#[derive(Debug)]
struct InFlight {
    input: RequestInput,
    started_at: SimTime,
    e2e: SimDuration,
    allocations: Vec<Millicores>,
    latencies: Vec<SimDuration>,
    /// Fault-triggered restarts consumed so far.
    retries: u32,
    /// Pod the in-progress function runs on (fault victim lookup).
    current_pod: Option<PodId>,
    /// Index of the in-progress function (restart target after a crash).
    current_index: usize,
    /// When the in-progress function attempt started (its wall time still
    /// counts against the request if a fault voids the attempt).
    current_started: SimTime,
}

/// Reusable simulation state for paired open-loop runs.
///
/// A paired session replays the same request set under several policies;
/// each run used to build a fresh engine heap and in-flight table. The
/// arena keeps those allocations alive across runs (the engine's
/// [`reset`](Engine::reset) retains its heap capacity) and exposes the
/// run statistics — events processed, peak queue depth — that the perf
/// trajectory bench reports.
#[derive(Debug)]
pub struct OpenLoopArena {
    engine: Engine<Event>,
    inflight: HashMap<u64, InFlight>,
    peak_resident: usize,
}

impl Default for OpenLoopArena {
    fn default() -> Self {
        Self::new()
    }
}

impl OpenLoopArena {
    /// Fresh arena; allocations grow on first use and are then reused.
    pub fn new() -> Self {
        Self::with_engine_config(EngineConfig::default())
    }

    /// Arena with an explicit engine configuration. The default caps a run
    /// at 50M events; paper-scale streaming runs (`flash_scale` processes
    /// 4×10⁸) lift the cap with `max_events: None`.
    pub fn with_engine_config(config: EngineConfig) -> Self {
        OpenLoopArena {
            engine: Engine::new(config),
            inflight: HashMap::new(),
            peak_resident: 0,
        }
    }

    /// Events processed by the most recent run.
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// Peak event-queue depth of the most recent run.
    pub fn peak_queue_depth(&self) -> usize {
        self.engine.peak_pending()
    }

    /// Peak number of arrivals held materialized at once during the most
    /// recent run: the requests resident inside the source plus the one
    /// pending arrival in the event queue. Slice-backed runs report ≈ the
    /// request count (the slice is already in memory); streaming runs
    /// report ≈ the stream count — the bounded-memory invariant.
    pub fn peak_resident_arrivals(&self) -> usize {
        self.peak_resident
    }
}

/// Event-driven serving simulation.
#[derive(Debug)]
pub struct OpenLoopSimulation {
    workflow: Workflow,
    config: OpenLoopConfig,
}

impl OpenLoopSimulation {
    /// Create a simulation for one workflow.
    pub fn new(workflow: Workflow, config: OpenLoopConfig) -> Self {
        OpenLoopSimulation { workflow, config }
    }

    /// Run the simulation: `requests` arrive at their `arrival_offset`s and
    /// are served concurrently under `policy`. Fails if the request set
    /// cannot be scheduled (an arrival behind the already-advanced clock).
    pub fn run(
        &self,
        policy: &mut dyn SizingPolicy,
        requests: &[RequestInput],
    ) -> Result<ServingReport, String> {
        self.run_instrumented(policy, requests, &mut OpenLoopArena::new(), None)
    }

    /// [`run`](Self::run) with reusable state and optional metrics: the
    /// `arena` carries engine/in-flight allocations (and run statistics)
    /// across paired runs, and every served event folds into the
    /// pre-interned [`ServingMetrics`] handles with no per-event name
    /// lookup.
    pub fn run_instrumented(
        &self,
        policy: &mut dyn SizingPolicy,
        requests: &[RequestInput],
        arena: &mut OpenLoopArena,
        metrics: Option<&ServingMetrics>,
    ) -> Result<ServingReport, String> {
        self.run_with_capacity(policy, requests, arena, metrics, None)
    }

    /// The general serving loop: [`run_instrumented`](Self::run_instrumented)
    /// plus optional elastic-capacity control. With [`CapacityControls`],
    /// every arrival is gated by the admission policy (shed requests are
    /// recorded as [`RequestDisposition::Shed`] outcomes and counted through
    /// the `shed` metric), and a periodic capacity tick recycles idle pods,
    /// retargets the warm pool to the fleet size, and applies the
    /// autoscaler's decisions; the returned report then carries a
    /// [`CapacityReport`]. When the controls also carry a compiled
    /// [`FaultSchedule`], each tick first delivers the faults due by then —
    /// crashing, preempting or degrading nodes, dropping the lost pods from
    /// pool and cluster tracking, and retrying (once) or failing the
    /// requests that were running on them — so failures, autoscaling and
    /// admission interleave on one deterministic timeline.
    pub fn run_with_capacity(
        &self,
        policy: &mut dyn SizingPolicy,
        requests: &[RequestInput],
        arena: &mut OpenLoopArena,
        metrics: Option<&ServingMetrics>,
        controls: Option<CapacityControls<'_>>,
    ) -> Result<ServingReport, String> {
        self.run_traced(policy, requests, arena, metrics, controls, None)
    }

    /// The fully-instrumented serving loop:
    /// [`run_with_capacity`](Self::run_with_capacity) plus an optional
    /// flight-recorder hook. With an [`Observer`] attached, every request
    /// lifecycle step (arrival, admission verdict, placement, cold start,
    /// execution, retry, fault delivery, scaling, shed/fail/completion)
    /// is offered as a typed record stamped with simulated time, and every
    /// capacity tick contributes a fleet-telemetry sample. With `None` the
    /// hooks compile down to a branch on the `Option` discriminant — no
    /// record is constructed and nothing is allocated, so untraced runs
    /// cost what they did before the hooks existed (the perf bench guards
    /// this).
    pub fn run_traced(
        &self,
        policy: &mut dyn SizingPolicy,
        requests: &[RequestInput],
        arena: &mut OpenLoopArena,
        metrics: Option<&ServingMetrics>,
        controls: Option<CapacityControls<'_>>,
        observer: Option<&mut dyn Observer>,
    ) -> Result<ServingReport, String> {
        // The slice is served through the same lazy core as a true stream;
        // [`SliceSource`] yields it in stable arrival-time order, which is
        // exactly the order the historical pre-seeded queue popped it in.
        let mut source = SliceSource::new(requests);
        self.run_from_source(policy, &mut source, arena, metrics, controls, observer)
    }

    /// Serve requests pulled lazily from a [`RequestSource`], collecting
    /// outcomes into a [`ServingReport`] (sorted by request id, as the
    /// slice-backed entry points always reported). Memory stays bounded by
    /// in-flight work plus whatever the source itself holds resident — but
    /// the report still materializes one outcome per request; callers that
    /// must stay bounded at paper scale aggregate through
    /// [`run_streaming`](Self::run_streaming) instead.
    pub fn run_from_source(
        &self,
        policy: &mut dyn SizingPolicy,
        source: &mut dyn RequestSource,
        arena: &mut OpenLoopArena,
        metrics: Option<&ServingMetrics>,
        controls: Option<CapacityControls<'_>>,
        observer: Option<&mut dyn Observer>,
    ) -> Result<ServingReport, String> {
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(source.len_hint().unwrap_or(0));
        let capacity = self.run_streaming(
            policy,
            source,
            arena,
            metrics,
            controls,
            observer,
            &mut |outcome| outcomes.push(outcome),
        )?;
        // Streamed outcomes surface in completion order; reports keep the
        // historical id order.
        outcomes.sort_by_key(|o| o.request_id);
        Ok(ServingReport {
            policy: policy.name().to_string(),
            workflow: self.workflow.name().to_string(),
            concurrency: self.config.concurrency,
            slo: self.config.slo,
            outcomes,
            capacity,
        })
    }

    /// The streaming core behind every entry point: arrivals are drawn from
    /// `source` one at a time as simulated time advances (one pending
    /// arrival in the queue while the source has more), and every finished
    /// request is handed to `on_outcome` in completion order and then
    /// dropped — nothing is retained per request, so aggregating callers
    /// run 10⁸-request workloads in memory bounded by in-flight work. The
    /// capacity report (when controls are attached) is returned directly;
    /// its `generated` count is the number of arrivals drawn.
    #[allow(clippy::too_many_arguments)]
    pub fn run_streaming(
        &self,
        policy: &mut dyn SizingPolicy,
        source: &mut dyn RequestSource,
        arena: &mut OpenLoopArena,
        metrics: Option<&ServingMetrics>,
        mut controls: Option<CapacityControls<'_>>,
        mut observer: Option<&mut dyn Observer>,
        on_outcome: &mut dyn FnMut(RequestOutcome),
    ) -> Result<Option<CapacityReport>, String> {
        let OpenLoopArena {
            engine,
            inflight,
            peak_resident,
        } = arena;
        engine.reset();
        inflight.clear();
        *peak_resident = 0;
        let mut pool = PoolManager::new(self.config.pool.clone());
        // janus-lint: allow(unwrap-discipline) — the builder validated this exact config before the run started
        let mut cluster = Cluster::new(&self.config.cluster).expect("validated cluster config");
        // Detach the compiled fault schedule from the controls so delivery
        // can borrow the rest of the run state freely.
        let mut fault_rt = controls
            .as_mut()
            .and_then(|c| c.faults.take())
            .map(FaultRuntime::new);
        let mut accounting = controls
            .as_ref()
            .map(|_| CapacityAccounting::new(cluster.node_count()));
        // A degenerate (zero / negative) cadence from a custom autoscaler
        // would reschedule the tick at the same instant forever, spinning
        // the event loop to its max-events cap; clamp to 1 ms.
        let tick = controls.as_ref().map(|c| {
            let tick = c.autoscaler.tick();
            let floor = SimDuration::from_millis(1.0);
            if tick > floor {
                tick
            } else {
                floor
            }
        });

        // Lazy arrival discipline: exactly one pending arrival sits in the
        // queue while the source has more to give. CLASS_ARRIVAL keeps a
        // same-timestamp arrival ahead of completions and ticks scheduled
        // before it, reproducing the pre-seeded pop order bit-for-bit.
        let mut drawn: usize = 0;
        if let Some(req) = source.next_request(&self.workflow) {
            drawn += 1;
            *peak_resident = (*peak_resident).max(source.resident() + 1);
            engine
                .schedule_at_class(
                    SimTime::ZERO + req.arrival_offset,
                    CLASS_ARRIVAL,
                    Event::Arrival(req),
                )
                .map_err(arrival_order_error)?;
        }
        if let Some(tick) = tick {
            engine.schedule_in_class(tick, CLASS_FOLLOWUP, Event::CapacityTick);
        }

        // The event loop is written iteratively (rather than via Engine::run)
        // because each event needs mutable access to the policy, pool and
        // cluster in addition to the engine.
        while let Some(ev) = engine.next_event() {
            let now = engine.now();
            // Bill elapsed node-seconds at the pre-event fleet size; every
            // fleet change happens inside an event.
            if let Some(acct) = accounting.as_mut() {
                acct.bill(now, cluster.node_count());
            }
            match ev.payload {
                Event::Arrival(input) => {
                    // Refill before serving: the source's next arrival (if
                    // any) must be pending before anything can observe the
                    // queue, keeping the one-pending-arrival invariant and
                    // the tick reschedule condition exact.
                    if let Some(next) = source.next_request(&self.workflow) {
                        drawn += 1;
                        *peak_resident = (*peak_resident).max(source.resident() + 1);
                        engine
                            .schedule_at_class(
                                SimTime::ZERO + next.arrival_offset,
                                CLASS_ARRIVAL,
                                Event::Arrival(next),
                            )
                            .map_err(arrival_order_error)?;
                    }
                    emit!(observer, now, RecordKind::Arrival { request: input.id });
                    if let Some(c) = controls.as_mut() {
                        let admitted = c.admission.admit(now, inflight.len());
                        emit!(
                            observer,
                            now,
                            RecordKind::Admission {
                                request: input.id,
                                admitted,
                            }
                        );
                        if !admitted {
                            // janus-lint: allow(unwrap-discipline) — accounting is built whenever controls are (ten lines up)
                            let acct = accounting.as_mut().expect("controls imply accounting");
                            acct.shed += 1;
                            if let Some(m) = metrics {
                                m.shed.incr(1);
                            }
                            emit!(observer, now, RecordKind::Shed { request: input.id });
                            on_outcome(RequestOutcome::shed(input.id));
                            continue;
                        }
                    }
                    if cluster.node_count() == 0 {
                        // The whole fleet is gone and nothing has scaled it
                        // back up: an admitted request has nowhere to run.
                        if let Some(rt) = fault_rt.as_mut() {
                            rt.failed += 1;
                            if let Some(m) = metrics {
                                m.failed.incr(1);
                            }
                            emit!(
                                observer,
                                now,
                                RecordKind::Failed {
                                    request: input.id,
                                    e2e: SimDuration::ZERO,
                                }
                            );
                            on_outcome(RequestOutcome::failed(
                                input.id,
                                SimDuration::ZERO,
                                Vec::new(),
                                Vec::new(),
                            ));
                            continue;
                        }
                    }
                    let ctx = self.ctx(&input);
                    policy.on_admit(&ctx);
                    if let Some(m) = metrics {
                        m.requests.incr(1);
                    }
                    let state = InFlight {
                        input,
                        started_at: now,
                        e2e: SimDuration::ZERO,
                        allocations: Vec::new(),
                        latencies: Vec::new(),
                        retries: 0,
                        current_pod: None,
                        current_index: 0,
                        current_started: now,
                    };
                    let request_id = state.input.id;
                    inflight.insert(request_id, state);
                    if let Some(acct) = accounting.as_mut() {
                        acct.peak_inflight = acct.peak_inflight.max(inflight.len());
                    }
                    self.start_function(
                        policy,
                        inflight,
                        request_id,
                        0,
                        now,
                        &mut pool,
                        &mut cluster,
                        engine,
                        metrics,
                        fault_rt.as_ref(),
                        &mut observer,
                    );
                }
                Event::FunctionComplete {
                    request_id,
                    index,
                    pod,
                    exec,
                    elapsed,
                } => {
                    if let Some(rt) = fault_rt.as_mut() {
                        if rt.lost_pods.remove(&pod) {
                            // Stale completion of a pod lost to a fault; the
                            // request was already retried or failed when the
                            // node went down.
                            continue;
                        }
                    }
                    pool.release(pod, now);
                    // Idle warm pods must not count towards co-location
                    // interference; only running instances contend. This also
                    // releases the pod's cluster allocation, so a later
                    // recycle of the idle pod cannot leak `total_allocated`
                    // (and an eviction may retire a draining node).
                    let _ = cluster.remove(pod);
                    let finished_len = {
                        // janus-lint: allow(unwrap-discipline) — completions only fire for requests this loop inserted; fault loss is filtered above
                        let state = inflight.get_mut(&request_id).expect("in-flight request");
                        state.e2e += elapsed;
                        state.latencies.push(exec);
                        state.latencies.len()
                    };
                    let ctx = self.ctx(&inflight[&request_id].input);
                    policy.on_complete(&ctx, index, exec);
                    if let Some(m) = metrics {
                        m.functions.incr(1);
                        m.function_ms.record(exec.as_millis());
                    }
                    emit!(
                        observer,
                        now,
                        RecordKind::ExecEnd {
                            request: request_id,
                            function: index,
                            exec,
                        }
                    );
                    if finished_len == self.workflow.len() {
                        // janus-lint: allow(unwrap-discipline) — present: get_mut on the same key succeeded just above
                        let state = inflight.remove(&request_id).expect("in-flight request");
                        let outcome = RequestOutcome {
                            request_id,
                            disposition: RequestDisposition::Served,
                            e2e: state.e2e,
                            slo_met: state.e2e <= self.config.slo,
                            allocations: state.allocations,
                            function_latencies: state.latencies,
                            adaptation_misses: 0,
                        };
                        if let Some(m) = metrics {
                            outcome.record_into(m);
                        }
                        emit!(
                            observer,
                            now,
                            RecordKind::Completion {
                                request: request_id,
                                e2e: outcome.e2e,
                                slo_met: outcome.slo_met,
                            }
                        );
                        on_outcome(outcome);
                    } else {
                        self.start_function(
                            policy,
                            inflight,
                            request_id,
                            index + 1,
                            now,
                            &mut pool,
                            &mut cluster,
                            engine,
                            metrics,
                            fault_rt.as_ref(),
                            &mut observer,
                        );
                    }
                }
                Event::CapacityTick => {
                    // janus-lint: allow(unwrap-discipline) — ticks are only scheduled when controls (hence accounting) exist
                    let acct = accounting.as_mut().expect("controls imply accounting");
                    // Faults land before the autoscaler observes, so the same
                    // tick can already react to the loss.
                    if let Some(rt) = fault_rt.as_mut() {
                        self.deliver_faults(
                            rt,
                            policy,
                            inflight,
                            &mut *on_outcome,
                            now,
                            &mut pool,
                            &mut cluster,
                            engine,
                            metrics,
                            acct,
                            &mut observer,
                        );
                    }
                    // janus-lint: allow(unwrap-discipline) — same invariant: no controls, no CapacityTick ever scheduled
                    let c = controls.as_mut().expect("tick implies controls");
                    acct.pods_recycled += pool.recycle_idle(now);
                    let observation = ScalingObservation {
                        now,
                        active_nodes: cluster.active_node_count(),
                        utilization: cluster.utilization(),
                        inflight: inflight.len(),
                    };
                    let before = cluster.node_count();
                    match c.autoscaler.observe(&observation) {
                        ScalingAction::Hold => {}
                        ScalingAction::ScaleUp(nodes) => {
                            for _ in 0..nodes {
                                cluster
                                    .add_node(self.config.cluster.node_capacity)
                                    // janus-lint: allow(unwrap-discipline) — capacity came from the validated config; add_node only rejects zero
                                    .expect("validated node capacity");
                            }
                            if nodes > 0 {
                                acct.scale_ups += 1;
                                acct.events.push(ScalingEvent {
                                    at: now,
                                    from_nodes: before,
                                    to_nodes: cluster.node_count(),
                                });
                                if let Some(m) = metrics {
                                    m.scale_ups.incr(1);
                                }
                                emit!(
                                    observer,
                                    now,
                                    RecordKind::Scaling {
                                        from_nodes: before,
                                        to_nodes: cluster.node_count(),
                                    }
                                );
                            }
                        }
                        ScalingAction::ScaleDown(nodes) => {
                            // Allocation-aware: busy nodes drain and retire
                            // once their last pod leaves; the fleet never
                            // drops below one active node.
                            let drained = cluster.drain_least_allocated(nodes, 1);
                            if !drained.is_empty() {
                                acct.scale_downs += 1;
                                acct.events.push(ScalingEvent {
                                    at: now,
                                    from_nodes: before,
                                    to_nodes: cluster.node_count(),
                                });
                                if let Some(m) = metrics {
                                    m.scale_downs.incr(1);
                                }
                                emit!(
                                    observer,
                                    now,
                                    RecordKind::Scaling {
                                        from_nodes: before,
                                        to_nodes: cluster.node_count(),
                                    }
                                );
                            }
                        }
                    }
                    acct.peak_nodes = acct.peak_nodes.max(cluster.node_count());
                    // Warm-pool depth follows the fleet: the configured pool
                    // size is the per-initial-fleet baseline, scaled to the
                    // current active node count.
                    let base_pool = self.config.pool.pool_size;
                    let initial_nodes = self.config.cluster.nodes.max(1);
                    let target = (base_pool * cluster.active_node_count()).div_ceil(initial_nodes);
                    if target != pool.target_pool_size() {
                        pool.set_target_pool_size(target, now);
                    }
                    // One telemetry sample per tick, after faults and the
                    // autoscaler have acted — the flight recorder's
                    // time-series axis. Only built when an observer is
                    // attached (the per-zone breakdown allocates).
                    if let Some(o) = observer.as_deref_mut() {
                        o.tick(&TickSample {
                            at: now,
                            // Arrivals the lazy discipline has not drawn yet
                            // still count as queued work, so streaming and
                            // pre-seeded runs report identical depths.
                            queue_depth: engine.pending() + source.len_hint().unwrap_or(0),
                            inflight: inflight.len(),
                            active_nodes: cluster.active_node_count(),
                            nodes_per_zone: cluster.active_nodes_per_zone(),
                            utilization: cluster.utilization(),
                            pool_size: pool.generic_available(),
                            shed: acct.shed as u64,
                            failed: fault_rt.as_ref().map_or(0, |rt| rt.failed) as u64,
                            retried: fault_rt.as_ref().map_or(0, |rt| rt.retried) as u64,
                        });
                    }
                    // Keep ticking while anything can still happen.
                    if engine.pending() > 0 || !inflight.is_empty() {
                        // janus-lint: allow(unwrap-discipline) — a tick event implies the cadence was computed at startup
                        let cadence = tick.expect("tick cadence set");
                        engine.schedule_in_class(cadence, CLASS_FOLLOWUP, Event::CapacityTick);
                    }
                }
            }
        }

        let capacity = accounting.map(|acct| {
            // janus-lint: allow(unwrap-discipline) — accounting exists only when controls were passed in
            let c = controls.as_ref().expect("controls imply accounting");
            let rt = fault_rt.as_ref();
            CapacityReport {
                autoscaler: c.autoscaler.name().to_string(),
                admission: c.admission.name().to_string(),
                generated: drawn,
                admitted: drawn - acct.shed,
                shed: acct.shed,
                failed: rt.map_or(0, |rt| rt.failed),
                retried: rt.map_or(0, |rt| rt.retried),
                scale_ups: acct.scale_ups,
                scale_downs: acct.scale_downs,
                events: acct.events,
                node_seconds: acct.node_seconds,
                peak_nodes: acct.peak_nodes,
                final_nodes: cluster.node_count(),
                peak_inflight: acct.peak_inflight,
                pods_recycled: acct.pods_recycled,
                final_allocated_mc: u64::from(cluster.total_allocated().get()),
                injector: rt.map(|rt| rt.injector.clone()),
                faults_applied: rt.map_or(0, |rt| rt.applied),
                nodes_lost: rt.map_or(0, |rt| rt.nodes_lost),
            }
        });
        Ok(capacity)
    }

    fn ctx(&self, input: &RequestInput) -> RequestContext {
        RequestContext {
            request_id: input.id,
            slo: self.config.slo,
            concurrency: self.config.concurrency,
            workflow_len: self.workflow.len(),
        }
    }

    /// Deliver every fault due at `now`: expire preemption notices, apply
    /// scheduled events, and retry or fail the requests whose pods were
    /// lost. Called at the top of each capacity tick, so fault effects and
    /// the control loops interleave on the same deterministic cadence.
    #[allow(clippy::too_many_arguments)]
    fn deliver_faults(
        &self,
        rt: &mut FaultRuntime,
        policy: &mut dyn SizingPolicy,
        inflight: &mut HashMap<u64, InFlight>,
        on_outcome: &mut dyn FnMut(RequestOutcome),
        now: SimTime,
        pool: &mut PoolManager,
        cluster: &mut Cluster,
        engine: &mut Engine<Event>,
        metrics: Option<&ServingMetrics>,
        acct: &mut CapacityAccounting,
        observer: &mut Option<&mut dyn Observer>,
    ) {
        // Preemption deadlines first: a victim still alive when its notice
        // expires is force-killed; one that finished draining beat it.
        let mut crashed: Vec<NodeId> = rt
            .preempt_deadlines
            .iter()
            .filter(|(node, deadline)| {
                *deadline <= now && cluster.node_state(*node) != Some(NodeState::Retired)
            })
            .map(|(node, _)| *node)
            .collect();
        rt.preempt_deadlines.retain(|(_, deadline)| *deadline > now);
        while rt.cursor < rt.events.len() && rt.events[rt.cursor].at <= now {
            let action = rt.events[rt.cursor].action.clone();
            rt.cursor += 1;
            rt.applied += 1;
            emit!(
                observer,
                now,
                RecordKind::Fault {
                    kind: action.kind(),
                }
            );
            match action {
                FaultAction::Crash { count } => {
                    crashed.extend(rt.pick_victims(cluster, count));
                }
                FaultAction::Preempt { count, notice } => {
                    for node in rt.pick_victims(cluster, count) {
                        let _ = cluster.drain_node(node);
                        rt.preempt_deadlines.push((node, now + notice));
                    }
                }
                FaultAction::ZoneOutage { zone } => {
                    crashed.extend(cluster.zone_nodes(zone));
                }
                FaultAction::SlowNodes {
                    count,
                    factor,
                    duration,
                } => {
                    for node in rt.pick_victims(cluster, count) {
                        rt.slow.push((node, factor, now + duration));
                    }
                }
            }
        }
        rt.slow.retain(|(_, _, until)| *until > now);
        if crashed.is_empty() {
            return;
        }

        let before = cluster.node_count();
        let mut lost: Vec<PodId> = Vec::new();
        for node in crashed {
            // Err means the node already retired (e.g. listed twice, or it
            // drained out just before its preemption deadline).
            if let Ok(pods) = cluster.crash_node(node) {
                rt.nodes_lost += 1;
                lost.extend(pods.into_iter().map(|(pod, _)| pod));
            }
        }
        if cluster.node_count() != before {
            // Fault-induced fleet changes share the scaling event log (but
            // not the scale_ups/scale_downs action counters) so determinism
            // checks cover them.
            acct.events.push(ScalingEvent {
                at: now,
                from_nodes: before,
                to_nodes: cluster.node_count(),
            });
            emit!(
                observer,
                now,
                RecordKind::Scaling {
                    from_nodes: before,
                    to_nodes: cluster.node_count(),
                }
            );
        }
        if lost.is_empty() {
            return;
        }
        lost.sort_unstable();
        pool.drop_lost(&lost);
        let lost_set: HashSet<PodId> = lost.into_iter().collect();
        let mut affected: Vec<u64> = inflight
            .iter()
            .filter(|(_, s)| s.current_pod.is_some_and(|p| lost_set.contains(&p)))
            .map(|(id, _)| *id)
            .collect();
        affected.sort_unstable();
        rt.lost_pods.extend(lost_set);
        for request_id in affected {
            let (retry, index, attempt, lost) = {
                // janus-lint: allow(unwrap-discipline) — `affected` ids were collected from this very map a few lines up
                let state = inflight.get_mut(&request_id).expect("in-flight request");
                // The in-progress attempt is void: its allocation entry goes
                // (it never produced a latency sample), but the wall time it
                // burned still counts against the request.
                state.allocations.pop();
                let lost = now.saturating_since(state.current_started);
                state.e2e += lost;
                state.current_pod = None;
                if state.retries < FAULT_RETRY_BUDGET {
                    state.retries += 1;
                    (true, state.current_index, state.retries, lost)
                } else {
                    (false, 0, state.retries, lost)
                }
            };
            if retry && cluster.node_count() > 0 {
                rt.retried += 1;
                if let Some(m) = metrics {
                    m.retried.incr(1);
                }
                emit!(
                    observer,
                    now,
                    RecordKind::Retry {
                        request: request_id,
                        attempt,
                        lost,
                    }
                );
                self.start_function(
                    policy,
                    inflight,
                    request_id,
                    index,
                    now,
                    pool,
                    cluster,
                    engine,
                    metrics,
                    Some(&*rt),
                    observer,
                );
            } else {
                // janus-lint: allow(unwrap-discipline) — present: get_mut on the same key succeeded in this iteration
                let state = inflight.remove(&request_id).expect("in-flight request");
                rt.failed += 1;
                if let Some(m) = metrics {
                    m.failed.incr(1);
                }
                emit!(
                    observer,
                    now,
                    RecordKind::Failed {
                        request: request_id,
                        e2e: state.e2e,
                    }
                );
                on_outcome(RequestOutcome::failed(
                    request_id,
                    state.e2e,
                    state.allocations,
                    state.latencies,
                ));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_function(
        &self,
        policy: &mut dyn SizingPolicy,
        inflight: &mut HashMap<u64, InFlight>,
        request_id: u64,
        index: usize,
        now: SimTime,
        pool: &mut PoolManager,
        cluster: &mut Cluster,
        engine: &mut Engine<Event>,
        metrics: Option<&ServingMetrics>,
        fault_rt: Option<&FaultRuntime>,
        observer: &mut Option<&mut dyn Observer>,
    ) {
        // janus-lint: allow(unwrap-discipline) — every caller inserts or verifies the entry before starting a function
        let state = inflight.get_mut(&request_id).expect("in-flight request");
        let ctx = RequestContext {
            request_id,
            slo: self.config.slo,
            concurrency: self.config.concurrency,
            workflow_len: self.workflow.len(),
        };
        let elapsed_wall = now.saturating_since(state.started_at);
        let remaining = (self.config.slo - elapsed_wall).saturate();
        let size = policy
            .size_next(&ctx, index, remaining)
            .clamp_to(Millicores::new(1), self.config.cluster.node_capacity);

        let function = self
            .workflow
            .function(index)
            // janus-lint: allow(unwrap-discipline) — callers advance index only while < workflow.len()
            .expect("index within workflow");
        let acquisition = pool.acquire(function.name(), size, now);
        let _ = cluster.resize(acquisition.pod, size);
        let overcommitted = if cluster.node_of(acquisition.pod).is_none()
            && cluster
                .place(acquisition.pod, function.name(), size)
                .is_err()
        {
            // Saturated cluster: overcommit the least-loaded node rather
            // than dropping the request. The pod runs, but it contends —
            // overload shows up as interference, not as free capacity.
            let _ = cluster.place_overcommitted(acquisition.pod, function.name(), size);
            true
        } else {
            false
        };
        emit!(
            observer,
            now,
            RecordKind::Placement {
                request: request_id,
                function: index,
                overcommitted,
            }
        );
        let colocated = cluster.colocation_degree(acquisition.pod, function.name());
        let mut exec = function.execution_time(
            size,
            self.config.concurrency,
            state.input.factor(index),
            colocated,
            &self.config.interference,
        );
        if let Some(rt) = fault_rt {
            // A degraded (slow-node fault) host multiplies the service time.
            exec = exec * rt.slow_factor(cluster.node_of(acquisition.pod), now);
        }
        let startup = if self.config.count_startup_delays {
            acquisition.startup_delay
        } else {
            SimDuration::ZERO
        };
        if let Some(m) = metrics {
            if acquisition.startup_delay > SimDuration::ZERO {
                m.cold_starts.incr(1);
            }
        }
        if acquisition.startup_delay > SimDuration::ZERO {
            // `delay` is the startup time that counts against latency
            // (zero when the config excludes startup delays), matching the
            // span builder's phase accounting.
            emit!(
                observer,
                now,
                RecordKind::ColdStart {
                    request: request_id,
                    function: index,
                    delay: startup,
                }
            );
        }
        emit!(
            observer,
            now,
            RecordKind::ExecStart {
                request: request_id,
                function: index,
            }
        );
        state.allocations.push(size);
        state.current_pod = Some(acquisition.pod);
        state.current_index = index;
        state.current_started = now;
        engine.schedule_in_class(
            exec + startup,
            CLASS_FOLLOWUP,
            Event::FunctionComplete {
                request_id,
                index,
                pod: acquisition.pod,
                exec,
                elapsed: exec + startup,
            },
        );
    }
}

/// Cold path: render a [`SimError`](janus_simcore::error::SimError) from a
/// source that yielded an arrival behind the already-advanced clock —
/// sources must produce non-decreasing `arrival_offset`s.
fn arrival_order_error(e: janus_simcore::error::SimError) -> String {
    format!("request source yielded an out-of-order arrival: {e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedSizingPolicy;
    use janus_workloads::apps::intelligent_assistant;
    use janus_workloads::request::RequestInputGenerator;

    #[test]
    fn open_loop_serves_every_request_exactly_once() {
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(9, SimDuration::from_millis(200.0)).generate(&ia, 80);
        let mut policy = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let report = sim.run(&mut policy, &reqs).unwrap();
        assert_eq!(report.len(), 80);
        let ids: std::collections::HashSet<u64> =
            report.outcomes.iter().map(|o| o.request_id).collect();
        assert_eq!(ids.len(), 80);
        for o in &report.outcomes {
            assert_eq!(o.allocations.len(), 3);
            assert_eq!(o.function_latencies.len(), 3);
        }
    }

    #[test]
    fn heavier_load_increases_latency_via_interference() {
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let light =
            RequestInputGenerator::new(5, SimDuration::from_millis(3000.0)).generate(&ia, 60);
        let heavy = RequestInputGenerator::new(5, SimDuration::from_millis(50.0)).generate(&ia, 60);
        let mut p1 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let light_report = sim.run(&mut p1, &light).unwrap();
        let mut p2 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let heavy_report = sim.run(&mut p2, &heavy).unwrap();
        // With 50 ms inter-arrival many requests overlap, co-locating pods of
        // the same function and prolonging execution.
        assert!(
            heavy_report.e2e_summary().unwrap().mean > light_report.e2e_summary().unwrap().mean
        );
    }

    #[test]
    fn open_loop_serves_arbitrary_arrival_shapes() {
        // Non-Poisson offsets (one dense flash-crowd window inside a sparse
        // baseline) go through the same event loop: every request is served,
        // and the in-window requests suffer more interference than the
        // stragglers outside it.
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let mut reqs = RequestInputGenerator::new(17, SimDuration::ZERO).generate(&ia, 60);
        for (i, r) in reqs.iter_mut().enumerate() {
            r.arrival_offset = if (20..40).contains(&i) {
                // 20 requests crammed into one second.
                SimDuration::from_millis(60_000.0 + 50.0 * (i - 20) as f64)
            } else {
                SimDuration::from_secs(10.0 * i as f64)
            };
        }
        let mut policy = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let report = sim.run(&mut policy, &reqs).unwrap();
        assert_eq!(report.len(), 60);
        let mean = |ids: std::ops::Range<usize>| {
            let sel: Vec<f64> = report
                .outcomes
                .iter()
                .filter(|o| ids.contains(&(o.request_id as usize)))
                .map(|o| o.e2e.as_millis())
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        assert!(
            mean(20..40) > mean(0..20),
            "burst window {} should be slower than sparse baseline {}",
            mean(20..40),
            mean(0..20)
        );
    }

    #[test]
    fn arena_reuse_is_deterministic_and_exposes_run_stats() {
        use crate::metrics::ServingMetrics;
        use janus_simcore::metrics::MetricsRegistry;
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(9, SimDuration::from_millis(200.0)).generate(&ia, 80);
        let registry = MetricsRegistry::new();
        let metrics = ServingMetrics::intern(&registry);

        // One arena shared by back-to-back ("paired") runs.
        let mut arena = OpenLoopArena::new();
        let mut p1 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let first = sim
            .run_instrumented(&mut p1, &reqs, &mut arena, Some(&metrics))
            .unwrap();
        let events_first = arena.events_processed();
        let peak_first = arena.peak_queue_depth();
        // 80 arrivals + 3 completions per request.
        assert_eq!(events_first, 80 + 80 * 3);
        assert!(peak_first > 0 && peak_first <= 160);

        let mut p2 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let second = sim
            .run_instrumented(&mut p2, &reqs, &mut arena, Some(&metrics))
            .unwrap();
        assert_eq!(first, second, "arena reuse must not perturb the simulation");
        assert_eq!(arena.events_processed(), events_first);
        assert_eq!(arena.peak_queue_depth(), peak_first);
        // And the reused-arena run matches a fresh-arena uninstrumented run.
        let mut p3 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        assert_eq!(sim.run(&mut p3, &reqs).unwrap(), first);

        // Both runs recorded through the same pre-interned handles.
        assert_eq!(registry.counter(ServingMetrics::REQUESTS), 160);
        assert_eq!(registry.counter(ServingMetrics::FUNCTIONS), 2 * 80 * 3);
        assert_eq!(metrics.e2e_ms.count(), 160);
        let streaming = metrics.e2e_ms.snapshot();
        assert!(
            (streaming.mean() - first.e2e_summary().unwrap().mean).abs() < 1e-9,
            "both paired runs are identical, so the pooled mean equals each run's mean"
        );
    }

    #[test]
    fn admission_control_sheds_and_conserves_requests() {
        use crate::capacity::{QueueLengthAdmission, StaticAutoscaler};
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        // 50 ms inter-arrival: far more than 2 requests overlap, so a
        // max-inflight bound of 2 must shed.
        let reqs = RequestInputGenerator::new(5, SimDuration::from_millis(50.0)).generate(&ia, 80);
        let registry = janus_simcore::metrics::MetricsRegistry::new();
        let metrics = ServingMetrics::intern(&registry);
        let mut autoscaler = StaticAutoscaler;
        let mut admission = QueueLengthAdmission::new(2).unwrap();
        let report = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                Some(&metrics),
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: None,
                }),
            )
            .unwrap();
        let cap = report.capacity.as_ref().unwrap();
        assert_eq!(cap.autoscaler, "static");
        assert_eq!(cap.admission, "queue-shed");
        // Conservation: every generated request is accounted exactly once.
        assert_eq!(cap.admitted + cap.shed, cap.generated);
        assert_eq!(cap.generated, 80);
        assert!(cap.shed > 0, "overload must shed under a depth-2 bound");
        assert_eq!(report.len(), 80);
        assert_eq!(report.served_len(), cap.admitted);
        assert_eq!(report.shed_len(), cap.shed);
        assert!(cap.peak_inflight <= 2, "bound respected");
        // Metrics agree with the report.
        assert_eq!(registry.counter(ServingMetrics::SHED), cap.shed as u64);
        assert_eq!(
            registry.counter(ServingMetrics::REQUESTS),
            cap.admitted as u64
        );
        // The static fleet never scales.
        assert!(cap.events.is_empty());
        assert_eq!(cap.peak_nodes, 1);
        assert!(cap.node_seconds > 0.0);
    }

    #[test]
    fn autoscaling_grows_the_fleet_and_reduces_interference() {
        use crate::capacity::{AdmitAll, UtilizationThresholdAutoscaler};
        use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
        let ia = intelligent_assistant();
        // Small spread nodes so co-location (and thus interference) tracks
        // fleet size.
        let config = OpenLoopConfig {
            cluster: ClusterConfig {
                nodes: 2,
                node_capacity: Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 1,
            },
            ..OpenLoopConfig::new(SimDuration::from_secs(3.0))
        };
        let sim = OpenLoopSimulation::new(ia.clone(), config);
        let reqs = RequestInputGenerator::new(7, SimDuration::from_millis(60.0)).generate(&ia, 120);

        let run_static = sim
            .run(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
            )
            .unwrap();
        let mut autoscaler =
            UtilizationThresholdAutoscaler::new(0.6, 0.1, 2, SimDuration::from_secs(2.0), 2, 12)
                .unwrap();
        let mut admission = AdmitAll;
        let run_scaled = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: None,
                }),
            )
            .unwrap();
        let cap = run_scaled.capacity.as_ref().unwrap();
        assert!(cap.scale_ups > 0, "overload must trigger scale-ups");
        assert!(cap.peak_nodes > 2);
        assert_eq!(cap.admitted, 120, "admit-all sheds nothing");
        // More nodes → lower co-location → faster service.
        assert!(
            run_scaled.e2e_summary().unwrap().mean < run_static.e2e_summary().unwrap().mean,
            "autoscaled mean {} vs static {}",
            run_scaled.e2e_summary().unwrap().mean,
            run_static.e2e_summary().unwrap().mean
        );
        // Scaling events are monotone in time and internally consistent.
        for w in cap.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &cap.events {
            assert_ne!(e.from_nodes, e.to_nodes);
        }
    }

    #[test]
    fn recycled_idle_pods_release_their_cluster_allocation() {
        // Regression guard for the idle-recycling audit: a specialised pod
        // recycled after `idle_recycle_after` must not leak cluster
        // allocation. Pods release their node slot when execution finishes
        // (before going idle), so after a long-idle tail the cluster must be
        // back at its zero-allocation baseline — asserted through the
        // capacity report of a run whose span is far longer than the recycle
        // window.
        use crate::capacity::{AdmitAll, StaticAutoscaler};
        let ia = intelligent_assistant();
        let mut config = OpenLoopConfig::new(SimDuration::from_secs(3.0));
        config.pool.idle_recycle_after = SimDuration::from_secs(30.0);
        let sim = OpenLoopSimulation::new(ia.clone(), config);
        // A burst up front, then one straggler two minutes later: the
        // burst's specialised pods sit idle well past the recycle window.
        let mut reqs = RequestInputGenerator::new(13, SimDuration::ZERO).generate(&ia, 20);
        for (i, r) in reqs.iter_mut().enumerate() {
            r.arrival_offset = if i < 19 {
                SimDuration::from_millis(40.0 * i as f64)
            } else {
                SimDuration::from_secs(120.0)
            };
        }
        let mut autoscaler = StaticAutoscaler;
        let mut admission = AdmitAll;
        let report = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: None,
                }),
            )
            .unwrap();
        let cap = report.capacity.as_ref().unwrap();
        assert!(
            cap.pods_recycled > 0,
            "idle specialised pods must be recycled by the capacity tick"
        );
        assert_eq!(
            cap.final_allocated_mc, 0,
            "recycling must not leak cluster allocation"
        );
        assert_eq!(report.served_len(), 20, "recycling must not lose requests");
    }

    #[test]
    fn degenerate_tick_cadences_are_clamped() {
        use crate::capacity::{AdmitAll, AutoscalerPolicy, ScalingAction, ScalingObservation};
        // A custom autoscaler with a zero cadence must not spin the event
        // loop at one timestamp; the loop clamps the tick to 1 ms.
        #[derive(Debug)]
        struct SpinScaler;
        impl AutoscalerPolicy for SpinScaler {
            fn name(&self) -> &str {
                "spin"
            }
            fn tick(&self) -> SimDuration {
                SimDuration::ZERO
            }
            fn observe(&mut self, _obs: &ScalingObservation) -> ScalingAction {
                ScalingAction::Hold
            }
        }
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(1, SimDuration::from_millis(500.0)).generate(&ia, 10);
        let mut autoscaler = SpinScaler;
        let mut admission = AdmitAll;
        let report = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: None,
                }),
            )
            .unwrap();
        assert_eq!(report.served_len(), 10, "every request still served");
        assert_eq!(report.capacity.as_ref().unwrap().admitted, 10);
    }

    #[test]
    fn capacity_runs_are_deterministic() {
        use crate::capacity::{QueueLengthAdmission, UtilizationThresholdAutoscaler};
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(3, SimDuration::from_millis(80.0)).generate(&ia, 60);
        let run = || {
            let mut autoscaler =
                UtilizationThresholdAutoscaler::new(0.5, 0.1, 1, SimDuration::from_secs(2.0), 1, 8)
                    .unwrap();
            let mut admission = QueueLengthAdmission::new(12).unwrap();
            sim.run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: None,
                }),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical inputs must replay identically");
        assert_eq!(
            a.capacity.as_ref().unwrap().events,
            b.capacity.as_ref().unwrap().events,
            "scaling event sequences must be identical"
        );
    }

    fn crash_schedule(times_s: &[f64]) -> FaultSchedule {
        FaultSchedule {
            injector: "test-crash".into(),
            victim_seed: 77,
            events: times_s
                .iter()
                .map(|&s| FaultEvent {
                    at: SimTime::from_secs(s),
                    action: FaultAction::Crash { count: 1 },
                })
                .collect(),
        }
    }

    #[test]
    fn node_crashes_retry_in_flight_work_and_conserve_requests() {
        use crate::capacity::{AdmitAll, UtilizationThresholdAutoscaler};
        use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
        use janus_simcore::metrics::MetricsRegistry;
        let ia = intelligent_assistant();
        let config = OpenLoopConfig {
            cluster: ClusterConfig {
                nodes: 3,
                node_capacity: Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 1,
            },
            ..OpenLoopConfig::new(SimDuration::from_secs(3.0))
        };
        let sim = OpenLoopSimulation::new(ia.clone(), config);
        let reqs = RequestInputGenerator::new(7, SimDuration::from_millis(50.0)).generate(&ia, 80);
        let registry = MetricsRegistry::new();
        let metrics = ServingMetrics::intern(&registry);
        let mut autoscaler =
            UtilizationThresholdAutoscaler::new(0.6, 0.1, 2, SimDuration::from_secs(2.0), 2, 12)
                .unwrap();
        let mut admission = AdmitAll;
        let report = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                Some(&metrics),
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: Some(crash_schedule(&[1.5, 2.5, 3.5])),
                }),
            )
            .unwrap();
        let cap = report.capacity.as_ref().unwrap();
        assert_eq!(cap.injector.as_deref(), Some("test-crash"));
        assert_eq!(cap.faults_applied, 3);
        assert_eq!(cap.nodes_lost, 3);
        assert!(cap.retried > 0, "mid-flight crashes must trigger retries");
        // Conservation: every generated request accounted exactly once.
        assert_eq!(report.len(), 80);
        assert_eq!(cap.generated, 80);
        assert_eq!(cap.admitted + cap.shed, 80);
        assert_eq!(report.served_len() + report.failed_len(), cap.admitted);
        assert_eq!(report.failed_len(), cap.failed);
        let ids: std::collections::HashSet<u64> =
            report.outcomes.iter().map(|o| o.request_id).collect();
        assert_eq!(ids.len(), 80);
        // The crash-path audit: abruptly lost pods must release their
        // cluster allocation and leave the pool tracking maps.
        assert_eq!(
            cap.final_allocated_mc, 0,
            "crashed pods must not leak cluster allocation"
        );
        // Metrics agree with the report.
        assert_eq!(
            registry.counter(ServingMetrics::RETRIED),
            cap.retried as u64
        );
        assert_eq!(registry.counter(ServingMetrics::FAILED), cap.failed as u64);
        // Served-after-retry requests keep the allocation/latency invariant.
        for o in report.served() {
            assert_eq!(o.allocations.len(), o.function_latencies.len());
            assert_eq!(o.function_latencies.len(), 3);
        }
        for o in report.outcomes.iter().filter(|o| !o.is_served()) {
            assert_eq!(o.allocations.len(), o.function_latencies.len());
        }
    }

    #[test]
    fn fault_runs_replay_bit_identically_per_seed() {
        use crate::capacity::{QueueLengthAdmission, UtilizationThresholdAutoscaler};
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(3, SimDuration::from_millis(60.0)).generate(&ia, 70);
        let run = || {
            let mut autoscaler =
                UtilizationThresholdAutoscaler::new(0.5, 0.1, 1, SimDuration::from_secs(2.0), 1, 8)
                    .unwrap();
            let mut admission = QueueLengthAdmission::new(12).unwrap();
            sim.run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: Some(crash_schedule(&[1.0, 2.0])),
                }),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same fault schedule must replay identically");
        assert_eq!(
            a.capacity.as_ref().unwrap().events,
            b.capacity.as_ref().unwrap().events,
            "the scaling/fault event log must be identical"
        );
    }

    #[test]
    fn zone_outage_kills_exactly_the_zones_nodes() {
        use crate::capacity::{AdmitAll, StaticAutoscaler};
        use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
        let ia = intelligent_assistant();
        let config = OpenLoopConfig {
            cluster: ClusterConfig {
                nodes: 4,
                node_capacity: Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 2,
            },
            ..OpenLoopConfig::new(SimDuration::from_secs(3.0))
        };
        let sim = OpenLoopSimulation::new(ia.clone(), config);
        let reqs = RequestInputGenerator::new(11, SimDuration::from_millis(80.0)).generate(&ia, 60);
        let schedule = FaultSchedule {
            injector: "zone-outage".into(),
            victim_seed: 5,
            events: vec![FaultEvent {
                at: SimTime::from_secs(2.0),
                action: FaultAction::ZoneOutage { zone: 0 },
            }],
        };
        let mut autoscaler = StaticAutoscaler;
        let mut admission = AdmitAll;
        let report = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: Some(schedule),
                }),
            )
            .unwrap();
        let cap = report.capacity.as_ref().unwrap();
        // Zones are assigned round-robin: 4 nodes over 2 zones puts exactly
        // 2 nodes in zone 0, and the outage must kill exactly those.
        assert_eq!(cap.nodes_lost, 2);
        assert_eq!(cap.final_nodes, 2, "zone-1 nodes survive");
        let outage = cap
            .events
            .iter()
            .find(|e| e.from_nodes == 4 && e.to_nodes == 2)
            .expect("the outage appears in the event log");
        assert_eq!(outage.at, SimTime::from_secs(2.0));
        assert_eq!(report.len(), 60);
        assert_eq!(report.served_len() + report.failed_len(), cap.admitted);
        assert_eq!(cap.final_allocated_mc, 0);
    }

    #[test]
    fn preemption_notice_lets_draining_beat_the_deadline() {
        use crate::capacity::{AdmitAll, AutoscalerPolicy, ScalingAction, ScalingObservation};
        use janus_simcore::cluster::{ClusterConfig, PlacementPolicy};
        #[derive(Debug)]
        struct TickedStatic(f64);
        impl AutoscalerPolicy for TickedStatic {
            fn name(&self) -> &str {
                "static"
            }
            fn tick(&self) -> SimDuration {
                SimDuration::from_millis(self.0)
            }
            fn observe(&mut self, _obs: &ScalingObservation) -> ScalingAction {
                ScalingAction::Hold
            }
        }
        let ia = intelligent_assistant();
        // Two spread nodes: the survivor picks up new work while the
        // preempted victim drains.
        let config = OpenLoopConfig {
            cluster: ClusterConfig {
                nodes: 2,
                node_capacity: Millicores::from_cores(8),
                placement: PlacementPolicy::Spread,
                zones: 1,
            },
            ..OpenLoopConfig::new(SimDuration::from_secs(3.0))
        };
        let sim = OpenLoopSimulation::new(ia.clone(), config);
        // Sparse arrivals: the preempted node drains long before a 30 s
        // notice expires, so nothing is lost and nothing fails.
        let reqs =
            RequestInputGenerator::new(19, SimDuration::from_millis(500.0)).generate(&ia, 12);
        let preempt = |notice_ms: f64| FaultSchedule {
            injector: "spot-preempt".into(),
            victim_seed: 9,
            events: vec![FaultEvent {
                at: SimTime::from_secs(1.0),
                action: FaultAction::Preempt {
                    count: 1,
                    notice: SimDuration::from_millis(notice_ms),
                },
            }],
        };
        let mut autoscaler = TickedStatic(1000.0);
        let mut admission = AdmitAll;
        let graceful = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: Some(preempt(30_000.0)),
                }),
            )
            .unwrap();
        let cap = graceful.capacity.as_ref().unwrap();
        assert_eq!(cap.faults_applied, 1);
        assert_eq!(cap.nodes_lost, 0, "draining beat the 30 s deadline");
        assert_eq!(cap.failed, 0);
        assert_eq!(graceful.served_len(), 12, "nothing lost under notice");

        // A 1 ms notice under continuous overload cannot drain in time: the
        // victim still hosts pods when the next (100 ms) tick passes the
        // deadline and is force-killed.
        let heavy =
            RequestInputGenerator::new(19, SimDuration::from_millis(40.0)).generate(&ia, 80);
        let mut autoscaler = TickedStatic(100.0);
        let mut admission = AdmitAll;
        let forced = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &heavy,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: Some(preempt(1.0)),
                }),
            )
            .unwrap();
        let cap = forced.capacity.as_ref().unwrap();
        assert_eq!(cap.nodes_lost, 1, "the notice expired mid-drain");
        assert!(cap.retried > 0 || cap.failed > 0, "running work was lost");
    }

    #[test]
    fn total_fleet_loss_fails_every_request_nan_free() {
        use crate::capacity::{AdmitAll, AutoscalerPolicy, ScalingAction, ScalingObservation};
        use janus_simcore::metrics::MetricsRegistry;
        // A static fleet that loses every node before the first completion
        // and never recovers: the all-failed degenerate case (satellite of
        // the all-shed guards) must stay NaN-free.
        #[derive(Debug)]
        struct FastStatic;
        impl AutoscalerPolicy for FastStatic {
            fn name(&self) -> &str {
                "fast-static"
            }
            fn tick(&self) -> SimDuration {
                SimDuration::from_millis(5.0)
            }
            fn observe(&mut self, _obs: &ScalingObservation) -> ScalingAction {
                ScalingAction::Hold
            }
        }
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs =
            RequestInputGenerator::new(23, SimDuration::from_millis(100.0)).generate(&ia, 40);
        let registry = MetricsRegistry::new();
        let metrics = ServingMetrics::intern(&registry);
        let schedule = FaultSchedule {
            injector: "total-loss".into(),
            victim_seed: 3,
            events: vec![FaultEvent {
                at: SimTime::ZERO,
                action: FaultAction::Crash { count: usize::MAX },
            }],
        };
        let mut autoscaler = FastStatic;
        let mut admission = AdmitAll;
        let report = sim
            .run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                Some(&metrics),
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults: Some(schedule),
                }),
            )
            .unwrap();
        let cap = report.capacity.as_ref().unwrap();
        assert_eq!(cap.final_nodes, 0, "nothing survives, nothing recovers");
        assert_eq!(report.served_len(), 0);
        assert_eq!(report.failed_len(), 40);
        assert_eq!(cap.failed, 40);
        assert_eq!(cap.admitted, 40, "admit-all sheds nothing");
        assert_eq!(cap.shed, 0);
        // Statistics degrade to empty/None, never NaN.
        assert!(report.e2e_summary().is_none());
        assert!(report.e2e_cdf().is_empty());
        assert!(report.e2e_percentile(99.0).is_none());
        assert_eq!(report.e2e_streaming().count(), 0);
        assert!(!report.slo_violation_rate().is_nan());
        assert_eq!(report.slo_violation_rate(), 0.0);
        assert_eq!(cap.final_allocated_mc, 0);
        assert_eq!(registry.counter(ServingMetrics::FAILED), 40);
    }

    #[test]
    fn slow_nodes_stretch_service_times_deterministically() {
        use crate::capacity::{AdmitAll, StaticAutoscaler};
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs =
            RequestInputGenerator::new(29, SimDuration::from_millis(400.0)).generate(&ia, 30);
        let slow_schedule = || FaultSchedule {
            injector: "slow-node".into(),
            victim_seed: 13,
            events: vec![FaultEvent {
                at: SimTime::ZERO,
                action: FaultAction::SlowNodes {
                    count: usize::MAX,
                    factor: 4.0,
                    duration: SimDuration::from_secs(600.0),
                },
            }],
        };
        let run = |faults: Option<FaultSchedule>| {
            let mut autoscaler = StaticAutoscaler;
            let mut admission = AdmitAll;
            sim.run_with_capacity(
                &mut FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap(),
                &reqs,
                &mut OpenLoopArena::new(),
                None,
                Some(CapacityControls {
                    autoscaler: &mut autoscaler,
                    admission: &mut admission,
                    faults,
                }),
            )
            .unwrap()
        };
        let baseline = run(None);
        let degraded = run(Some(slow_schedule()));
        let again = run(Some(slow_schedule()));
        assert_eq!(degraded, again, "degradation is seed-deterministic");
        let cap = degraded.capacity.as_ref().unwrap();
        assert_eq!(cap.nodes_lost, 0, "slow nodes stay up");
        assert_eq!(degraded.served_len(), 30, "slow nodes still serve");
        assert!(
            degraded.e2e_summary().unwrap().mean > 1.5 * baseline.e2e_summary().unwrap().mean,
            "4x degraded service must be visibly slower: {} vs {}",
            degraded.e2e_summary().unwrap().mean,
            baseline.e2e_summary().unwrap().mean
        );
    }

    #[test]
    fn streaming_source_is_bit_identical_to_materialized_requests() {
        use janus_workloads::request::GeneratorSource;
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        for seed in [1, 9, 42] {
            let reqs =
                RequestInputGenerator::new(seed, SimDuration::from_millis(120.0)).generate(&ia, 80);
            let mut p1 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
            let mut arena = OpenLoopArena::new();
            let materialized = sim
                .run_instrumented(&mut p1, &reqs, &mut arena, None)
                .unwrap();
            // The slice is resident by definition: peak ≈ N.
            assert_eq!(arena.peak_resident_arrivals(), 80);
            let slice_events = arena.events_processed();

            let mut source = GeneratorSource::new(
                RequestInputGenerator::new(seed, SimDuration::from_millis(120.0)),
                80,
            );
            let mut p2 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
            let streamed = sim
                .run_from_source(&mut p2, &mut source, &mut arena, None, None, None)
                .unwrap();
            assert_eq!(materialized, streamed, "seed {seed}: streams must replay");
            assert_eq!(arena.events_processed(), slice_events);
            // Bounded memory: one pending arrival, nothing resident in the
            // generator — and the queue never holds the whole request set.
            assert_eq!(arena.peak_resident_arrivals(), 1);
            assert!(
                arena.peak_queue_depth() < 80,
                "queue depth {} must be bounded by in-flight work, not N",
                arena.peak_queue_depth()
            );
        }
    }

    #[test]
    fn streaming_outcomes_arrive_in_completion_order_and_aggregate() {
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(9, SimDuration::from_millis(200.0)).generate(&ia, 40);
        let mut arena = OpenLoopArena::new();
        let mut served = 0usize;
        let mut e2e_sum = 0.0f64;
        let mut p = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let mut source = janus_workloads::request::SliceSource::new(&reqs);
        let capacity = sim
            .run_streaming(
                &mut p,
                &mut source,
                &mut arena,
                None,
                None,
                None,
                &mut |o| {
                    served += 1;
                    e2e_sum += o.e2e.as_millis();
                },
            )
            .unwrap();
        assert!(capacity.is_none(), "no controls, no capacity report");
        assert_eq!(served, 40, "every outcome flows through the callback");
        let mut p2 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let report = sim.run(&mut p2, &reqs).unwrap();
        let report_sum: f64 = report.outcomes.iter().map(|o| o.e2e.as_millis()).sum();
        assert!((e2e_sum - report_sum).abs() < 1e-9);
    }

    #[test]
    fn custom_engine_config_lifts_the_event_cap() {
        use janus_simcore::engine::EngineConfig;
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(2, SimDuration::from_millis(300.0)).generate(&ia, 10);
        // A pathologically low cap truncates the run …
        let mut capped = OpenLoopArena::with_engine_config(EngineConfig {
            max_events: Some(5),
            horizon: None,
        });
        let mut p = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let truncated = sim
            .run_instrumented(&mut p, &reqs, &mut capped, None)
            .unwrap();
        assert!(truncated.len() < 10);
        // … and an uncapped arena serves everything.
        let mut uncapped = OpenLoopArena::with_engine_config(EngineConfig {
            max_events: None,
            horizon: None,
        });
        let mut p2 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let full = sim
            .run_instrumented(&mut p2, &reqs, &mut uncapped, None)
            .unwrap();
        assert_eq!(full.len(), 10);
    }

    #[test]
    fn closed_and_open_loop_agree_for_serial_arrivals() {
        // When arrivals are so sparse that requests never overlap, the open
        // loop degenerates to the closed loop's behaviour (modulo warm-pool
        // state differences in startup delays).
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let mut reqs = RequestInputGenerator::new(11, SimDuration::ZERO).generate(&ia, 20);
        for (i, r) in reqs.iter_mut().enumerate() {
            // Deterministically spaced far apart so executions never overlap.
            r.arrival_offset = SimDuration::from_secs(100.0 * i as f64);
        }
        let mut policy = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2500)).unwrap();
        let open = sim.run(&mut policy, &reqs).unwrap();
        let exec = crate::executor::ClosedLoopExecutor::new(
            ia.clone(),
            crate::executor::ExecutorConfig::paper_serving(SimDuration::from_secs(3.0), 1),
        );
        let mut policy = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2500)).unwrap();
        let closed = exec.run(&mut policy, &reqs);
        // Same inputs, same allocations: execution times must match exactly.
        for (o, c) in open.outcomes.iter().zip(closed.outcomes.iter()) {
            assert_eq!(o.request_id, c.request_id);
            for (i, (a, b)) in o
                .function_latencies
                .iter()
                .zip(c.function_latencies.iter())
                .enumerate()
            {
                assert!(
                    (a.as_millis() - b.as_millis()).abs() < 1e-9,
                    "req {} fn {}: open {} vs closed {}",
                    o.request_id,
                    i,
                    a.as_millis(),
                    b.as_millis()
                );
            }
        }
    }
}
