//! Open-loop, event-driven serving simulation.
//!
//! The closed-loop executor in [`crate::executor`] reproduces the paper's
//! evaluation methodology (replay 1000 requests back-to-back). This module
//! exercises the platform the way a production deployment would see it:
//! requests arrive at their `arrival_offset`s, several workflows are in
//! flight at once, pods are shared through the warm pool, and co-location of
//! concurrently running instances creates real interference.
//!
//! The simulation is agnostic to *how* the offsets were produced: it serves
//! any arrival process — constant-rate Poisson (the historical default),
//! diurnal, bursty MMPP, flash crowds, replayed traces — as long as each
//! request carries its timestamp. `janus-scenarios` defines the processes
//! and `janus-core`'s session builder (`.arrivals(..)` / `.scenario(..)`)
//! threads them into the request generator; this module is used by the
//! queueing / load / scenario-sweep experiments and by integration tests of
//! the discrete-event substrate.

use crate::metrics::ServingMetrics;
use crate::outcome::{RequestOutcome, ServingReport};
use crate::policy::{RequestContext, SizingPolicy};
use janus_simcore::cluster::{Cluster, ClusterConfig};
use janus_simcore::engine::{Engine, EngineConfig};
use janus_simcore::interference::InterferenceModel;
use janus_simcore::pod::PodId;
use janus_simcore::pool::{PoolConfig, PoolManager};
use janus_simcore::resources::Millicores;
use janus_simcore::time::{SimDuration, SimTime};
use janus_workloads::request::RequestInput;
use janus_workloads::workflow::Workflow;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Open-loop simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// End-to-end latency SLO.
    pub slo: SimDuration,
    /// Batch size (concurrency) requests are served at.
    pub concurrency: u32,
    /// Cluster layout.
    pub cluster: ClusterConfig,
    /// Warm-pool configuration.
    pub pool: PoolConfig,
    /// Interference model.
    pub interference: InterferenceModel,
    /// Whether startup delays count against latency.
    pub count_startup_delays: bool,
}

impl OpenLoopConfig {
    /// Default open-loop setup for a given SLO.
    pub fn new(slo: SimDuration) -> Self {
        OpenLoopConfig {
            slo,
            concurrency: 1,
            cluster: ClusterConfig::default(),
            pool: PoolConfig::default(),
            interference: InterferenceModel::paper_calibrated(),
            count_startup_delays: true,
        }
    }
}

#[derive(Debug, Clone)]
enum Event {
    Arrival(RequestInput),
    FunctionComplete {
        request_id: u64,
        index: usize,
        pod: PodId,
        exec: SimDuration,
        elapsed: SimDuration,
    },
}

#[derive(Debug)]
struct InFlight {
    input: RequestInput,
    started_at: SimTime,
    e2e: SimDuration,
    allocations: Vec<Millicores>,
    latencies: Vec<SimDuration>,
}

/// Reusable simulation state for paired open-loop runs.
///
/// A paired session replays the same request set under several policies;
/// each run used to build a fresh engine heap and in-flight table. The
/// arena keeps those allocations alive across runs (the engine's
/// [`reset`](Engine::reset) retains its heap capacity) and exposes the
/// run statistics — events processed, peak queue depth — that the perf
/// trajectory bench reports.
#[derive(Debug)]
pub struct OpenLoopArena {
    engine: Engine<Event>,
    inflight: HashMap<u64, InFlight>,
}

impl Default for OpenLoopArena {
    fn default() -> Self {
        Self::new()
    }
}

impl OpenLoopArena {
    /// Fresh arena; allocations grow on first use and are then reused.
    pub fn new() -> Self {
        OpenLoopArena {
            engine: Engine::new(EngineConfig::default()),
            inflight: HashMap::new(),
        }
    }

    /// Events processed by the most recent run.
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// Peak event-queue depth of the most recent run.
    pub fn peak_queue_depth(&self) -> usize {
        self.engine.peak_pending()
    }
}

/// Event-driven serving simulation.
#[derive(Debug)]
pub struct OpenLoopSimulation {
    workflow: Workflow,
    config: OpenLoopConfig,
}

impl OpenLoopSimulation {
    /// Create a simulation for one workflow.
    pub fn new(workflow: Workflow, config: OpenLoopConfig) -> Self {
        OpenLoopSimulation { workflow, config }
    }

    /// Run the simulation: `requests` arrive at their `arrival_offset`s and
    /// are served concurrently under `policy`.
    pub fn run(&self, policy: &mut dyn SizingPolicy, requests: &[RequestInput]) -> ServingReport {
        self.run_instrumented(policy, requests, &mut OpenLoopArena::new(), None)
    }

    /// [`run`](Self::run) with reusable state and optional metrics: the
    /// `arena` carries engine/in-flight allocations (and run statistics)
    /// across paired runs, and every served event folds into the
    /// pre-interned [`ServingMetrics`] handles with no per-event name
    /// lookup.
    pub fn run_instrumented(
        &self,
        policy: &mut dyn SizingPolicy,
        requests: &[RequestInput],
        arena: &mut OpenLoopArena,
        metrics: Option<&ServingMetrics>,
    ) -> ServingReport {
        arena.engine.reset();
        // Every arrival sits in the queue before the first pop; pre-size so
        // the heap never grows mid-run (completions at most add the
        // in-flight count on top).
        arena.engine.reserve(requests.len());
        arena.inflight.clear();
        let engine = &mut arena.engine;
        let inflight = &mut arena.inflight;
        let mut pool = PoolManager::new(self.config.pool.clone());
        let mut cluster = Cluster::new(&self.config.cluster).expect("validated cluster config");
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(requests.len());

        for req in requests {
            engine
                .schedule_at(
                    SimTime::ZERO + req.arrival_offset,
                    Event::Arrival(req.clone()),
                )
                .expect("arrivals are in the future");
        }

        // The event loop is written iteratively (rather than via Engine::run)
        // because each event needs mutable access to the policy, pool and
        // cluster in addition to the engine.
        while let Some(ev) = engine.next_event() {
            let now = engine.now();
            match ev.payload {
                Event::Arrival(input) => {
                    let ctx = self.ctx(&input);
                    policy.on_admit(&ctx);
                    if let Some(m) = metrics {
                        m.requests.incr(1);
                    }
                    let state = InFlight {
                        input,
                        started_at: now,
                        e2e: SimDuration::ZERO,
                        allocations: Vec::new(),
                        latencies: Vec::new(),
                    };
                    let request_id = state.input.id;
                    inflight.insert(request_id, state);
                    self.start_function(
                        policy,
                        inflight,
                        request_id,
                        0,
                        now,
                        &mut pool,
                        &mut cluster,
                        engine,
                        metrics,
                    );
                }
                Event::FunctionComplete {
                    request_id,
                    index,
                    pod,
                    exec,
                    elapsed,
                } => {
                    pool.release(pod, now);
                    // Idle warm pods must not count towards co-location
                    // interference; only running instances contend.
                    let _ = cluster.remove(pod);
                    let finished_len = {
                        let state = inflight.get_mut(&request_id).expect("in-flight request");
                        state.e2e += elapsed;
                        state.latencies.push(exec);
                        state.latencies.len()
                    };
                    let ctx = self.ctx(&inflight[&request_id].input);
                    policy.on_complete(&ctx, index, exec);
                    if let Some(m) = metrics {
                        m.functions.incr(1);
                        m.function_ms.record(exec.as_millis());
                    }
                    if finished_len == self.workflow.len() {
                        let state = inflight.remove(&request_id).expect("in-flight request");
                        let outcome = RequestOutcome {
                            request_id,
                            e2e: state.e2e,
                            slo_met: state.e2e <= self.config.slo,
                            allocations: state.allocations,
                            function_latencies: state.latencies,
                            adaptation_misses: 0,
                        };
                        if let Some(m) = metrics {
                            outcome.record_into(m);
                        }
                        outcomes.push(outcome);
                    } else {
                        self.start_function(
                            policy,
                            inflight,
                            request_id,
                            index + 1,
                            now,
                            &mut pool,
                            &mut cluster,
                            engine,
                            metrics,
                        );
                    }
                }
            }
        }

        outcomes.sort_by_key(|o| o.request_id);
        ServingReport {
            policy: policy.name().to_string(),
            workflow: self.workflow.name().to_string(),
            concurrency: self.config.concurrency,
            slo: self.config.slo,
            outcomes,
        }
    }

    fn ctx(&self, input: &RequestInput) -> RequestContext {
        RequestContext {
            request_id: input.id,
            slo: self.config.slo,
            concurrency: self.config.concurrency,
            workflow_len: self.workflow.len(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_function(
        &self,
        policy: &mut dyn SizingPolicy,
        inflight: &mut HashMap<u64, InFlight>,
        request_id: u64,
        index: usize,
        now: SimTime,
        pool: &mut PoolManager,
        cluster: &mut Cluster,
        engine: &mut Engine<Event>,
        metrics: Option<&ServingMetrics>,
    ) {
        let state = inflight.get_mut(&request_id).expect("in-flight request");
        let ctx = RequestContext {
            request_id,
            slo: self.config.slo,
            concurrency: self.config.concurrency,
            workflow_len: self.workflow.len(),
        };
        let elapsed_wall = now.saturating_since(state.started_at);
        let remaining = (self.config.slo - elapsed_wall).saturate();
        let size = policy
            .size_next(&ctx, index, remaining)
            .clamp_to(Millicores::new(1), self.config.cluster.node_capacity);

        let function = self
            .workflow
            .function(index)
            .expect("index within workflow");
        let acquisition = pool.acquire(function.name(), size, now);
        let _ = cluster.resize(acquisition.pod, size);
        if cluster.node_of(acquisition.pod).is_none() {
            // If the cluster is saturated, fall back to running unplaced (no
            // extra interference) rather than rejecting the request.
            let _ = cluster.place(acquisition.pod, function.name(), size);
        }
        let colocated = cluster.colocation_degree(acquisition.pod, function.name());
        let exec = function.execution_time(
            size,
            self.config.concurrency,
            state.input.factor(index),
            colocated,
            &self.config.interference,
        );
        let startup = if self.config.count_startup_delays {
            acquisition.startup_delay
        } else {
            SimDuration::ZERO
        };
        if let Some(m) = metrics {
            if acquisition.startup_delay > SimDuration::ZERO {
                m.cold_starts.incr(1);
            }
        }
        state.allocations.push(size);
        engine.schedule_in(
            exec + startup,
            Event::FunctionComplete {
                request_id,
                index,
                pod: acquisition.pod,
                exec,
                elapsed: exec + startup,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedSizingPolicy;
    use janus_workloads::apps::intelligent_assistant;
    use janus_workloads::request::RequestInputGenerator;

    #[test]
    fn open_loop_serves_every_request_exactly_once() {
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(9, SimDuration::from_millis(200.0)).generate(&ia, 80);
        let mut policy = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let report = sim.run(&mut policy, &reqs);
        assert_eq!(report.len(), 80);
        let ids: std::collections::HashSet<u64> =
            report.outcomes.iter().map(|o| o.request_id).collect();
        assert_eq!(ids.len(), 80);
        for o in &report.outcomes {
            assert_eq!(o.allocations.len(), 3);
            assert_eq!(o.function_latencies.len(), 3);
        }
    }

    #[test]
    fn heavier_load_increases_latency_via_interference() {
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let light =
            RequestInputGenerator::new(5, SimDuration::from_millis(3000.0)).generate(&ia, 60);
        let heavy = RequestInputGenerator::new(5, SimDuration::from_millis(50.0)).generate(&ia, 60);
        let mut p1 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let light_report = sim.run(&mut p1, &light);
        let mut p2 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let heavy_report = sim.run(&mut p2, &heavy);
        // With 50 ms inter-arrival many requests overlap, co-locating pods of
        // the same function and prolonging execution.
        assert!(
            heavy_report.e2e_summary().unwrap().mean > light_report.e2e_summary().unwrap().mean
        );
    }

    #[test]
    fn open_loop_serves_arbitrary_arrival_shapes() {
        // Non-Poisson offsets (one dense flash-crowd window inside a sparse
        // baseline) go through the same event loop: every request is served,
        // and the in-window requests suffer more interference than the
        // stragglers outside it.
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let mut reqs = RequestInputGenerator::new(17, SimDuration::ZERO).generate(&ia, 60);
        for (i, r) in reqs.iter_mut().enumerate() {
            r.arrival_offset = if (20..40).contains(&i) {
                // 20 requests crammed into one second.
                SimDuration::from_millis(60_000.0 + 50.0 * (i - 20) as f64)
            } else {
                SimDuration::from_secs(10.0 * i as f64)
            };
        }
        let mut policy = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let report = sim.run(&mut policy, &reqs);
        assert_eq!(report.len(), 60);
        let mean = |ids: std::ops::Range<usize>| {
            let sel: Vec<f64> = report
                .outcomes
                .iter()
                .filter(|o| ids.contains(&(o.request_id as usize)))
                .map(|o| o.e2e.as_millis())
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        assert!(
            mean(20..40) > mean(0..20),
            "burst window {} should be slower than sparse baseline {}",
            mean(20..40),
            mean(0..20)
        );
    }

    #[test]
    fn arena_reuse_is_deterministic_and_exposes_run_stats() {
        use crate::metrics::ServingMetrics;
        use janus_simcore::metrics::MetricsRegistry;
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let reqs = RequestInputGenerator::new(9, SimDuration::from_millis(200.0)).generate(&ia, 80);
        let registry = MetricsRegistry::new();
        let metrics = ServingMetrics::intern(&registry);

        // One arena shared by back-to-back ("paired") runs.
        let mut arena = OpenLoopArena::new();
        let mut p1 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let first = sim.run_instrumented(&mut p1, &reqs, &mut arena, Some(&metrics));
        let events_first = arena.events_processed();
        let peak_first = arena.peak_queue_depth();
        // 80 arrivals + 3 completions per request.
        assert_eq!(events_first, 80 + 80 * 3);
        assert!(peak_first > 0 && peak_first <= 160);

        let mut p2 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        let second = sim.run_instrumented(&mut p2, &reqs, &mut arena, Some(&metrics));
        assert_eq!(first, second, "arena reuse must not perturb the simulation");
        assert_eq!(arena.events_processed(), events_first);
        assert_eq!(arena.peak_queue_depth(), peak_first);
        // And the reused-arena run matches a fresh-arena uninstrumented run.
        let mut p3 = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2000)).unwrap();
        assert_eq!(sim.run(&mut p3, &reqs), first);

        // Both runs recorded through the same pre-interned handles.
        assert_eq!(registry.counter(ServingMetrics::REQUESTS), 160);
        assert_eq!(registry.counter(ServingMetrics::FUNCTIONS), 2 * 80 * 3);
        assert_eq!(metrics.e2e_ms.count(), 160);
        let streaming = metrics.e2e_ms.snapshot();
        assert!(
            (streaming.mean() - first.e2e_summary().unwrap().mean).abs() < 1e-9,
            "both paired runs are identical, so the pooled mean equals each run's mean"
        );
    }

    #[test]
    fn closed_and_open_loop_agree_for_serial_arrivals() {
        // When arrivals are so sparse that requests never overlap, the open
        // loop degenerates to the closed loop's behaviour (modulo warm-pool
        // state differences in startup delays).
        let ia = intelligent_assistant();
        let sim =
            OpenLoopSimulation::new(ia.clone(), OpenLoopConfig::new(SimDuration::from_secs(3.0)));
        let mut reqs = RequestInputGenerator::new(11, SimDuration::ZERO).generate(&ia, 20);
        for (i, r) in reqs.iter_mut().enumerate() {
            // Deterministically spaced far apart so executions never overlap.
            r.arrival_offset = SimDuration::from_secs(100.0 * i as f64);
        }
        let mut policy = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2500)).unwrap();
        let open = sim.run(&mut policy, &reqs);
        let exec = crate::executor::ClosedLoopExecutor::new(
            ia.clone(),
            crate::executor::ExecutorConfig::paper_serving(SimDuration::from_secs(3.0), 1),
        );
        let mut policy = FixedSizingPolicy::uniform("fixed", &ia, Millicores::new(2500)).unwrap();
        let closed = exec.run(&mut policy, &reqs);
        // Same inputs, same allocations: execution times must match exactly.
        for (o, c) in open.outcomes.iter().zip(closed.outcomes.iter()) {
            assert_eq!(o.request_id, c.request_id);
            for (i, (a, b)) in o
                .function_latencies
                .iter()
                .zip(c.function_latencies.iter())
                .enumerate()
            {
                assert!(
                    (a.as_millis() - b.as_millis()).abs() < 1e-9,
                    "req {} fn {}: open {} vs closed {}",
                    o.request_id,
                    i,
                    a.as_millis(),
                    b.as_millis()
                );
            }
        }
    }
}
