//! Closed-loop executor: the evaluation harness of §V.
//!
//! The paper evaluates every policy "over 1000 requests" in a closed loop on
//! a dedicated testbed. The executor replays a pre-generated, policy
//! independent set of [`RequestInput`]s through the workflow:
//!
//! 1. the policy sizes the next function right before it starts (for
//!    early-binding policies that size never depends on the budget),
//! 2. a pod is acquired from the warm-pool manager and placed on the cluster,
//! 3. the function's execution time is produced by the workload model from
//!    the request's pre-drawn random factor, the allocation, the batch size
//!    and the co-location degree on the pod's node,
//! 4. the observed time is fed back to the policy and the remaining budget is
//!    updated.
//!
//! Because the random factors are part of the request, two policies replaying
//! the same request set face exactly the same inputs — the comparison is
//! paired, like the paper's.

use crate::metrics::ServingMetrics;
use crate::outcome::{RequestDisposition, RequestOutcome, ServingReport};
use crate::policy::{RequestContext, SizingPolicy};
use janus_observe::{Observer, Record, RecordKind};
use janus_simcore::cluster::{Cluster, ClusterConfig};
use janus_simcore::interference::InterferenceModel;
use janus_simcore::pool::{PoolConfig, PoolManager};
use janus_simcore::time::{SimDuration, SimTime};
use janus_workloads::request::RequestInput;
use janus_workloads::workflow::Workflow;
use serde::{Deserialize, Serialize};

/// Executor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// End-to-end latency SLO.
    pub slo: SimDuration,
    /// Batch size (concurrency) the requests are served at.
    pub concurrency: u32,
    /// Whether startup (specialisation / cold start) delays count against the
    /// request's budget and end-to-end latency.
    pub count_startup_delays: bool,
    /// Cluster layout.
    pub cluster: ClusterConfig,
    /// Warm-pool manager configuration.
    pub pool: PoolConfig,
    /// Interference model applied during execution.
    pub interference: InterferenceModel,
}

impl ExecutorConfig {
    /// The configuration used by the paper-style serving experiments: a
    /// single large node, warm pools sized for the workflow, startup delays
    /// counted against the SLO.
    pub fn paper_serving(slo: SimDuration, concurrency: u32) -> Self {
        ExecutorConfig {
            slo,
            concurrency,
            count_startup_delays: true,
            cluster: ClusterConfig::default(),
            pool: PoolConfig::default(),
            interference: InterferenceModel::paper_calibrated(),
        }
    }
}

/// Closed-loop workflow executor.
#[derive(Debug)]
pub struct ClosedLoopExecutor {
    workflow: Workflow,
    config: ExecutorConfig,
}

impl ClosedLoopExecutor {
    /// Create an executor for one workflow.
    pub fn new(workflow: Workflow, config: ExecutorConfig) -> Self {
        ClosedLoopExecutor { workflow, config }
    }

    /// The workflow being served.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// The executor configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Serve one request under `policy`, starting at simulated time `now`,
    /// using the shared `pool` and `cluster`.
    #[allow(clippy::too_many_arguments)]
    fn serve_one(
        &self,
        policy: &mut dyn SizingPolicy,
        request: &RequestInput,
        pool: &mut PoolManager,
        cluster: &mut Cluster,
        now: &mut SimTime,
        metrics: Option<&ServingMetrics>,
        observer: &mut Option<&mut dyn Observer>,
    ) -> RequestOutcome {
        let ctx = RequestContext {
            request_id: request.id,
            slo: self.config.slo,
            concurrency: self.config.concurrency,
            workflow_len: self.workflow.len(),
        };
        policy.on_admit(&ctx);
        if let Some(m) = metrics {
            m.requests.incr(1);
        }
        emit!(
            observer,
            *now,
            RecordKind::Arrival {
                request: request.id,
            }
        );

        let mut remaining = self.config.slo;
        let mut e2e = SimDuration::ZERO;
        let mut allocations = Vec::with_capacity(self.workflow.len());
        let mut function_latencies = Vec::with_capacity(self.workflow.len());

        for (index, function) in self.workflow.functions().iter().enumerate() {
            let size = policy.size_next(&ctx, index, remaining);
            let size = size.clamp_to(
                janus_simcore::resources::Millicores::new(1),
                self.config.cluster.node_capacity,
            );

            let acquisition = pool.acquire(function.name(), size, *now);
            // Place (or re-place) the pod on the cluster for this execution so
            // co-location accounting reflects concurrently warm instances.
            let _ = cluster.resize(acquisition.pod, size);
            if cluster.node_of(acquisition.pod).is_none() {
                cluster
                    .place(acquisition.pod, function.name(), size)
                    .expect("paper-scale cluster always fits one pod per function");
            }
            let colocated = cluster.colocation_degree(acquisition.pod, function.name());
            emit!(
                observer,
                *now,
                RecordKind::Placement {
                    request: request.id,
                    function: index,
                    overcommitted: false,
                }
            );

            let exec = function.execution_time(
                size,
                self.config.concurrency,
                request.factor(index),
                colocated,
                &self.config.interference,
            );
            let startup = if self.config.count_startup_delays {
                acquisition.startup_delay
            } else {
                SimDuration::ZERO
            };
            let elapsed = exec + startup;
            if acquisition.startup_delay > SimDuration::ZERO {
                emit!(
                    observer,
                    *now,
                    RecordKind::ColdStart {
                        request: request.id,
                        function: index,
                        delay: startup,
                    }
                );
            }
            emit!(
                observer,
                *now,
                RecordKind::ExecStart {
                    request: request.id,
                    function: index,
                }
            );

            *now += elapsed;
            pool.release(acquisition.pod, *now);
            // Interference comes from concurrently *running* instances;
            // un-place the pod so idle warm pods do not count as co-located.
            let _ = cluster.remove(acquisition.pod);

            e2e += elapsed;
            remaining = (remaining - elapsed).saturate();
            allocations.push(size);
            function_latencies.push(exec);
            policy.on_complete(&ctx, index, exec);
            if let Some(m) = metrics {
                // Per-event recording through pre-resolved handles only —
                // no name lookup inside the replay loop.
                m.functions.incr(1);
                m.function_ms.record(exec.as_millis());
                if acquisition.startup_delay > SimDuration::ZERO {
                    m.cold_starts.incr(1);
                }
            }
            emit!(
                observer,
                *now,
                RecordKind::ExecEnd {
                    request: request.id,
                    function: index,
                    exec,
                }
            );
        }

        let outcome = RequestOutcome {
            request_id: request.id,
            disposition: RequestDisposition::Served,
            e2e,
            allocations,
            function_latencies,
            slo_met: e2e <= self.config.slo,
            adaptation_misses: 0,
        };
        if let Some(m) = metrics {
            outcome.record_into(m);
        }
        emit!(
            observer,
            *now,
            RecordKind::Completion {
                request: request.id,
                e2e: outcome.e2e,
                slo_met: outcome.slo_met,
            }
        );
        outcome
    }

    /// Replay `requests` under `policy` and aggregate the outcomes.
    pub fn run(&self, policy: &mut dyn SizingPolicy, requests: &[RequestInput]) -> ServingReport {
        self.run_instrumented(policy, requests, None)
    }

    /// [`run`](Self::run), additionally folding every served event into
    /// pre-interned [`ServingMetrics`] handles (resolved once by the caller
    /// at session setup; per-event recording does no name lookup).
    pub fn run_instrumented(
        &self,
        policy: &mut dyn SizingPolicy,
        requests: &[RequestInput],
        metrics: Option<&ServingMetrics>,
    ) -> ServingReport {
        self.run_traced(policy, requests, metrics, None)
    }

    /// [`run_instrumented`](Self::run_instrumented) with an optional attached
    /// [`Observer`] receiving the per-request lifecycle records. With
    /// `observer: None` this is exactly the uninstrumented hot path — the
    /// `emit!` sites never construct a record.
    pub fn run_traced(
        &self,
        policy: &mut dyn SizingPolicy,
        requests: &[RequestInput],
        metrics: Option<&ServingMetrics>,
        observer: Option<&mut dyn Observer>,
    ) -> ServingReport {
        let mut observer = observer;
        let mut pool = PoolManager::new(self.config.pool.clone());
        let mut cluster = Cluster::new(&self.config.cluster).expect("validated cluster config");
        let mut now = SimTime::ZERO;
        let outcomes = requests
            .iter()
            .map(|r| {
                self.serve_one(
                    policy,
                    r,
                    &mut pool,
                    &mut cluster,
                    &mut now,
                    metrics,
                    &mut observer,
                )
            })
            .collect();
        ServingReport {
            policy: policy.name().to_string(),
            workflow: self.workflow.name().to_string(),
            concurrency: self.config.concurrency,
            slo: self.config.slo,
            outcomes,
            capacity: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedSizingPolicy;
    use janus_simcore::resources::Millicores;
    use janus_workloads::apps::intelligent_assistant;
    use janus_workloads::request::RequestInputGenerator;

    fn requests(n: usize, seed: u64) -> Vec<RequestInput> {
        RequestInputGenerator::new(seed, SimDuration::ZERO).generate(&intelligent_assistant(), n)
    }

    fn executor(slo_secs: f64) -> ClosedLoopExecutor {
        ClosedLoopExecutor::new(
            intelligent_assistant(),
            ExecutorConfig::paper_serving(SimDuration::from_secs(slo_secs), 1),
        )
    }

    #[test]
    fn report_covers_every_request_with_full_allocations() {
        let exec = executor(3.0);
        let mut policy =
            FixedSizingPolicy::uniform("max", exec.workflow(), Millicores::new(3000)).unwrap();
        let report = exec.run(&mut policy, &requests(50, 1));
        assert_eq!(report.len(), 50);
        for o in &report.outcomes {
            assert_eq!(o.allocations.len(), 3);
            assert_eq!(o.function_latencies.len(), 3);
            assert_eq!(o.total_cpu(), Millicores::new(9000));
            assert!(o.e2e.as_millis() > 0.0);
        }
        assert_eq!(report.policy, "max");
        assert_eq!(report.mean_cpu_millicores(), 9000.0);
    }

    #[test]
    fn bigger_allocations_yield_lower_latency_and_fewer_violations() {
        let exec = executor(3.0);
        let reqs = requests(300, 2);
        let mut small =
            FixedSizingPolicy::uniform("min", exec.workflow(), Millicores::new(1000)).unwrap();
        let mut large =
            FixedSizingPolicy::uniform("max", exec.workflow(), Millicores::new(3000)).unwrap();
        let small_report = exec.run(&mut small, &reqs);
        let large_report = exec.run(&mut large, &reqs);
        assert!(
            large_report.e2e_summary().unwrap().mean < small_report.e2e_summary().unwrap().mean
        );
        assert!(large_report.slo_violation_rate() <= small_report.slo_violation_rate());
        // With everything at Kmin the 3s SLO must be at risk for tail requests.
        assert!(small_report.slo_violation_rate() > 0.0);
        // With everything at Kmax the SLO holds for essentially all requests.
        assert!(large_report.slo_violation_rate() < 0.02);
    }

    #[test]
    fn replaying_the_same_requests_is_deterministic() {
        let exec = executor(3.0);
        let reqs = requests(40, 3);
        let mut p1 =
            FixedSizingPolicy::uniform("a", exec.workflow(), Millicores::new(2000)).unwrap();
        let mut p2 =
            FixedSizingPolicy::uniform("a", exec.workflow(), Millicores::new(2000)).unwrap();
        let r1 = exec.run(&mut p1, &reqs);
        let r2 = exec.run(&mut p2, &reqs);
        assert_eq!(r1, r2);
    }

    #[test]
    fn instrumented_runs_record_through_preinterned_handles() {
        use crate::metrics::ServingMetrics;
        use janus_simcore::metrics::MetricsRegistry;
        let exec = executor(3.0);
        let registry = MetricsRegistry::new();
        let metrics = ServingMetrics::intern(&registry);
        let reqs = requests(50, 1);
        let mut policy =
            FixedSizingPolicy::uniform("max", exec.workflow(), Millicores::new(3000)).unwrap();
        let report = exec.run_instrumented(&mut policy, &reqs, Some(&metrics));
        assert_eq!(registry.counter(ServingMetrics::REQUESTS), 50);
        assert_eq!(registry.counter(ServingMetrics::FUNCTIONS), 150);
        assert_eq!(metrics.e2e_ms.count(), 50);
        assert_eq!(metrics.function_ms.count(), 150);
        assert!(registry.counter(ServingMetrics::COLD_STARTS) > 0);
        assert_eq!(
            registry.counter(ServingMetrics::SLO_VIOLATIONS) as f64,
            report.slo_violation_rate() * 50.0
        );
        // The streaming stream agrees with the exact per-request data.
        let streaming = metrics.e2e_ms.snapshot();
        assert!((streaming.mean() - report.e2e_summary().unwrap().mean).abs() < 1e-9);
        // Instrumentation is observation only: the report is bit-identical
        // to an uninstrumented run.
        let mut p2 =
            FixedSizingPolicy::uniform("max", exec.workflow(), Millicores::new(3000)).unwrap();
        assert_eq!(exec.run(&mut p2, &reqs), report);
    }

    #[test]
    fn traced_runs_emit_full_lifecycles_without_changing_the_report() {
        use janus_observe::SpanObserver;
        let exec = executor(3.0);
        let reqs = requests(30, 5);
        let mut policy =
            FixedSizingPolicy::uniform("max", exec.workflow(), Millicores::new(3000)).unwrap();
        let mut spans = SpanObserver::default();
        let traced = exec.run_traced(&mut policy, &reqs, None, Some(&mut spans));
        let summary = spans.finish().spans.unwrap();
        assert_eq!(summary.arrivals, 30);
        assert_eq!(summary.served, 30);
        assert_eq!(summary.shed + summary.failed, 0);
        // Every request runs the whole 3-function workflow; the rebuilt span
        // phases must agree with the report's own E2E aggregation.
        let mean_e2e = traced.e2e_summary().unwrap().mean;
        assert!((summary.mean_e2e_ms - mean_e2e).abs() < 1e-9);
        assert!(summary.mean_exec_ms > 0.0);
        // Observation is side-effect free on the serving path.
        let mut p2 =
            FixedSizingPolicy::uniform("max", exec.workflow(), Millicores::new(3000)).unwrap();
        assert_eq!(exec.run(&mut p2, &reqs), traced);
    }

    #[test]
    fn startup_delays_can_be_excluded() {
        let reqs = requests(20, 4);
        let with = ClosedLoopExecutor::new(
            intelligent_assistant(),
            ExecutorConfig {
                count_startup_delays: true,
                ..ExecutorConfig::paper_serving(SimDuration::from_secs(3.0), 1)
            },
        );
        let without = ClosedLoopExecutor::new(
            intelligent_assistant(),
            ExecutorConfig {
                count_startup_delays: false,
                ..ExecutorConfig::paper_serving(SimDuration::from_secs(3.0), 1)
            },
        );
        let mut p =
            FixedSizingPolicy::uniform("x", with.workflow(), Millicores::new(2000)).unwrap();
        let r_with = with.run(&mut p, &reqs);
        let mut p =
            FixedSizingPolicy::uniform("x", without.workflow(), Millicores::new(2000)).unwrap();
        let r_without = without.run(&mut p, &reqs);
        assert!(
            r_with.e2e_summary().unwrap().mean >= r_without.e2e_summary().unwrap().mean,
            "counting startup delays can only increase E2E"
        );
    }
}
