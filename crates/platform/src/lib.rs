//! # janus-platform
//!
//! The serverless workflow *serving* platform of the reproduction: the piece
//! that corresponds to the Fission deployment plus the lightweight Flask
//! server the paper's prototype uses to trace requests and apply adaptation
//! decisions.
//!
//! The platform is deliberately **policy-agnostic**: every sizing approach
//! evaluated in the paper — the early-binding baselines (ORION, GrandSLAM,
//! GrandSLAM⁺), the late-binding variants (Janus, Janus⁻, Janus⁺), and the
//! Optimal oracle — implements the same [`policy::SizingPolicy`] trait and is
//! executed by the same machinery, so resource/latency comparisons are
//! apples-to-apples:
//!
//! * [`policy`] — the [`policy::SizingPolicy`] trait and the
//!   per-request [`policy::RequestContext`].
//! * [`executor`] — the closed-loop executor used by the evaluation: replays
//!   a fixed set of [`RequestInput`](janus_workloads::request::RequestInput)s
//!   through the workflow on top of the pool manager and cluster, invoking
//!   the policy before every function start.
//! * [`openloop`] — an open-loop, event-driven serving simulation with
//!   Poisson arrivals and horizontal scaling, exercising the discrete-event
//!   engine (used for the queueing/extension experiments).
//! * [`outcome`] — per-request outcomes and aggregated serving reports.
//! * [`metrics`] — the pre-interned [`metrics::ServingMetrics`] handle
//!   bundle both serving loops record through on the per-event hot path.
//! * [`capacity`] — elastic capacity: the [`capacity::AutoscalerPolicy`] and
//!   [`capacity::AdmissionPolicy`] traits, their built-ins and the
//!   name-addressable registries the open loop's capacity tick drives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Offer one lifecycle record to an optional attached observer. A macro
/// (not a function) so the disabled path is statically zero-cost: with no
/// observer the record expression is never evaluated — no allocation, no
/// virtual call, nothing but a branch on an `Option` discriminant. Both
/// serving loops use it; textual macro scoping makes it visible to the
/// modules declared below.
macro_rules! emit {
    ($observer:expr, $at:expr, $kind:expr) => {
        if let Some(o) = $observer.as_deref_mut() {
            o.record(&Record {
                at: $at,
                kind: $kind,
            });
        }
    };
}

pub mod capacity;
pub mod executor;
pub mod metrics;
pub mod openloop;
pub mod outcome;
pub mod policy;

pub use capacity::{
    AdmissionPolicy, AdmissionRegistry, AutoscalerPolicy, AutoscalerRegistry, CapacityContext,
    ScalingAction, ScalingObservation,
};
pub use executor::{ClosedLoopExecutor, ExecutorConfig};
pub use metrics::ServingMetrics;
pub use openloop::{CapacityControls, OpenLoopArena, OpenLoopConfig, OpenLoopSimulation};
pub use outcome::{
    CapacityReport, RequestDisposition, RequestOutcome, ScalingEvent, ServingReport,
};
pub use policy::{FixedSizingPolicy, RequestContext, SizingPolicy};
