//! Per-request outcomes and aggregated serving reports.

use crate::metrics::ServingMetrics;
use janus_simcore::resources::Millicores;
use janus_simcore::stats::{Cdf, StreamingSummary, Summary};
use janus_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The result of serving one workflow request under one sizing policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request identifier (matches the replayed [`RequestInput`]).
    ///
    /// [`RequestInput`]: janus_workloads::request::RequestInput
    pub request_id: u64,
    /// End-to-end latency, including startup delays.
    pub e2e: SimDuration,
    /// CPU allocation each function actually executed with (head to tail).
    pub allocations: Vec<Millicores>,
    /// Observed execution time of each function.
    pub function_latencies: Vec<SimDuration>,
    /// Whether the end-to-end latency met the SLO.
    pub slo_met: bool,
    /// Number of hint-table misses (late-binding policies only; 0 otherwise).
    pub adaptation_misses: u32,
}

impl RequestOutcome {
    /// Total CPU consumption of the request: the sum of the allocations its
    /// functions ran with — the "CPU (Millicore)" metric of Figure 5.
    pub fn total_cpu(&self) -> Millicores {
        self.allocations.iter().copied().sum()
    }

    /// Fold this finished request into pre-interned serving metrics: one
    /// end-to-end latency sample plus the SLO-violation count. Called by
    /// both serving loops at request completion — the per-event half of the
    /// hot-path contract (no name lookups; see
    /// [`ServingMetrics`]).
    pub fn record_into(&self, metrics: &ServingMetrics) {
        metrics.e2e_ms.record(self.e2e.as_millis());
        if !self.slo_met {
            metrics.slo_violations.incr(1);
        }
    }
}

/// Aggregated results of serving a request set under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Policy name.
    pub policy: String,
    /// Workflow name.
    pub workflow: String,
    /// Concurrency (batch size).
    pub concurrency: u32,
    /// SLO the requests were served under.
    pub slo: SimDuration,
    /// Per-request outcomes (in request order).
    pub outcomes: Vec<RequestOutcome>,
}

impl ServingReport {
    /// Number of requests served.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when no requests were served.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Mean per-request CPU consumption in millicores (Figure 5 / Table I).
    pub fn mean_cpu_millicores(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| f64::from(o.total_cpu().get()))
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Fraction of requests that violated the SLO.
    pub fn slo_violation_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| !o.slo_met).count() as f64 / self.outcomes.len() as f64
    }

    /// End-to-end latency CDF (Figure 4).
    pub fn e2e_cdf(&self) -> Cdf {
        Cdf::from_samples(
            &self
                .outcomes
                .iter()
                .map(|o| o.e2e.as_millis())
                .collect::<Vec<_>>(),
        )
    }

    /// End-to-end latency summary statistics.
    pub fn e2e_summary(&self) -> Option<Summary> {
        Summary::from_samples(
            &self
                .outcomes
                .iter()
                .map(|o| o.e2e.as_millis())
                .collect::<Vec<_>>(),
        )
    }

    /// Streaming (fixed-memory, approximate-percentile) view of the
    /// end-to-end latencies — the summary sweep-style consumers fold across
    /// many reports via [`StreamingSummary::merge`] without buffering every
    /// sample again.
    pub fn e2e_streaming(&self) -> StreamingSummary {
        let mut summary = StreamingSummary::new();
        for o in &self.outcomes {
            summary.record(o.e2e.as_millis());
        }
        summary
    }

    /// The end-to-end latency at a given percentile (e.g. 99.0 for the P99
    /// SLO check).
    pub fn e2e_percentile(&self, p: f64) -> Option<SimDuration> {
        janus_simcore::stats::percentile(
            &self
                .outcomes
                .iter()
                .map(|o| o.e2e.as_millis())
                .collect::<Vec<_>>(),
            p,
        )
        .map(SimDuration::from_millis)
    }

    /// Total hint-table misses across all requests.
    pub fn total_misses(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| u64::from(o.adaptation_misses))
            .sum()
    }

    /// Mean per-request CPU of this report divided by that of `baseline` —
    /// the "normalized by Optimal" presentation used throughout §V.
    pub fn cpu_normalized_by(&self, baseline: &ServingReport) -> f64 {
        let base = baseline.mean_cpu_millicores();
        if base <= f64::EPSILON {
            return f64::INFINITY;
        }
        self.mean_cpu_millicores() / base
    }

    /// Relative resource reduction of this policy versus `other`, normalised
    /// by `optimal` — the quantity reported in Table I:
    /// `(other − self) / optimal`.
    pub fn reduction_vs(&self, other: &ServingReport, optimal: &ServingReport) -> f64 {
        let opt = optimal.mean_cpu_millicores();
        if opt <= f64::EPSILON {
            return 0.0;
        }
        (other.mean_cpu_millicores() - self.mean_cpu_millicores()) / opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, e2e_ms: f64, cpu: &[u32], slo_ms: f64) -> RequestOutcome {
        RequestOutcome {
            request_id: id,
            e2e: SimDuration::from_millis(e2e_ms),
            allocations: cpu.iter().map(|&c| Millicores::new(c)).collect(),
            function_latencies: vec![
                SimDuration::from_millis(e2e_ms / cpu.len() as f64);
                cpu.len()
            ],
            slo_met: e2e_ms <= slo_ms,
            adaptation_misses: 0,
        }
    }

    fn report(policy: &str, cpus: &[u32], e2es: &[f64]) -> ServingReport {
        ServingReport {
            policy: policy.to_string(),
            workflow: "IA".to_string(),
            concurrency: 1,
            slo: SimDuration::from_secs(3.0),
            outcomes: e2es
                .iter()
                .enumerate()
                .map(|(i, &e)| outcome(i as u64, e, cpus, 3000.0))
                .collect(),
        }
    }

    #[test]
    fn total_cpu_is_the_sum_of_allocations() {
        let o = outcome(0, 2000.0, &[1500, 1200, 1000], 3000.0);
        assert_eq!(o.total_cpu(), Millicores::new(3700));
        assert!(o.slo_met);
    }

    #[test]
    fn report_aggregates_cpu_and_violations() {
        let r = report(
            "janus",
            &[1000, 1000, 1000],
            &[2000.0, 2500.0, 3500.0, 2800.0],
        );
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.mean_cpu_millicores(), 3000.0);
        assert!((r.slo_violation_rate() - 0.25).abs() < 1e-12);
        assert_eq!(r.total_misses(), 0);
        let cdf = r.e2e_cdf();
        assert_eq!(cdf.len(), 4);
        assert!(r.e2e_summary().unwrap().max >= 3500.0);
        assert!(r.e2e_percentile(99.0).unwrap().as_millis() > 3000.0);
    }

    #[test]
    fn normalisation_and_reduction_match_table_1_semantics() {
        let optimal = report("optimal", &[1000, 1000, 1000], &[2000.0]);
        let janus = report("janus", &[1100, 1100, 1100], &[2400.0]);
        let orion = report("orion", &[1400, 1400, 1400], &[2100.0]);
        assert!((janus.cpu_normalized_by(&optimal) - 1.1).abs() < 1e-12);
        // (4200 - 3300) / 3000 = 0.3
        assert!((janus.reduction_vs(&orion, &optimal) - 0.3).abs() < 1e-12);
        let empty = ServingReport {
            policy: "x".into(),
            workflow: "IA".into(),
            concurrency: 1,
            slo: SimDuration::from_secs(3.0),
            outcomes: vec![],
        };
        assert_eq!(empty.mean_cpu_millicores(), 0.0);
        assert_eq!(empty.slo_violation_rate(), 0.0);
        assert!(empty.e2e_summary().is_none());
    }
}
