//! Per-request outcomes and aggregated serving reports.

use crate::metrics::ServingMetrics;
use janus_simcore::resources::Millicores;
use janus_simcore::stats::{Cdf, StreamingSummary, Summary};
use janus_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What happened to a request at the platform's front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestDisposition {
    /// Admitted and served to completion.
    Served,
    /// Rejected by admission control at arrival; never executed.
    Shed,
    /// Admitted but lost to a fault (e.g. its node crashed) after the retry
    /// budget was exhausted; partially executed.
    Failed,
}

/// The result of serving one workflow request under one sizing policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request identifier (matches the replayed [`RequestInput`]).
    ///
    /// [`RequestInput`]: janus_workloads::request::RequestInput
    pub request_id: u64,
    /// Whether the request was served or shed at admission.
    pub disposition: RequestDisposition,
    /// End-to-end latency, including startup delays (zero for shed requests).
    pub e2e: SimDuration,
    /// CPU allocation each function actually executed with (head to tail;
    /// empty for shed requests).
    pub allocations: Vec<Millicores>,
    /// Observed execution time of each function (empty for shed requests).
    pub function_latencies: Vec<SimDuration>,
    /// Whether the end-to-end latency met the SLO (`false` for shed
    /// requests, which are accounted separately via
    /// [`ServingReport::shed_rate`], not as SLO violations).
    pub slo_met: bool,
    /// Number of hint-table misses (late-binding policies only; 0 otherwise).
    pub adaptation_misses: u32,
}

impl RequestOutcome {
    /// The outcome of a request shed by admission control: no execution, no
    /// latency, not an SLO violation.
    pub fn shed(request_id: u64) -> Self {
        RequestOutcome {
            request_id,
            disposition: RequestDisposition::Shed,
            e2e: SimDuration::ZERO,
            allocations: Vec::new(),
            function_latencies: Vec::new(),
            slo_met: false,
            adaptation_misses: 0,
        }
    }

    /// The outcome of an admitted request killed by a fault after its retry
    /// budget ran out: whatever executed is accounted (time spent, CPU the
    /// finished functions ran with), but it is not an SLO violation — failed
    /// requests are reported via [`ServingReport::failed_len`], mirroring how
    /// shed requests are kept out of the served statistics.
    pub fn failed(
        request_id: u64,
        e2e: SimDuration,
        allocations: Vec<Millicores>,
        function_latencies: Vec<SimDuration>,
    ) -> Self {
        RequestOutcome {
            request_id,
            disposition: RequestDisposition::Failed,
            e2e,
            allocations,
            function_latencies,
            slo_met: false,
            adaptation_misses: 0,
        }
    }

    /// True when the request was served (not shed or failed).
    pub fn is_served(&self) -> bool {
        self.disposition == RequestDisposition::Served
    }

    /// Total CPU consumption of the request: the sum of the allocations its
    /// functions ran with — the "CPU (Millicore)" metric of Figure 5.
    pub fn total_cpu(&self) -> Millicores {
        self.allocations.iter().copied().sum()
    }

    /// Fold this finished request into pre-interned serving metrics: one
    /// end-to-end latency sample plus the SLO-violation count. Called by
    /// both serving loops at request completion — the per-event half of the
    /// hot-path contract (no name lookups; see
    /// [`ServingMetrics`]).
    pub fn record_into(&self, metrics: &ServingMetrics) {
        metrics.e2e_ms.record(self.e2e.as_millis());
        if !self.slo_met {
            metrics.slo_violations.incr(1);
        }
    }
}

/// One applied autoscaler action, for determinism checks and event logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingEvent {
    /// Simulated time the action was applied.
    pub at: SimTime,
    /// Non-retired node count before the action.
    pub from_nodes: usize,
    /// Non-retired node count after the action.
    pub to_nodes: usize,
}

/// Capacity accounting of one open-loop run under elastic control: what the
/// autoscaler and the admission policy did, and what it cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// Autoscaler name the run used.
    pub autoscaler: String,
    /// Admission policy name the run used.
    pub admission: String,
    /// Requests offered to the platform.
    pub generated: usize,
    /// Requests admitted (served to completion or lost to a fault).
    pub admitted: usize,
    /// Requests shed at arrival.
    pub shed: usize,
    /// Admitted requests lost to injected faults after exhausting their
    /// retry budget.
    pub failed: usize,
    /// Fault-interrupted requests that re-enqueued and started over.
    pub retried: usize,
    /// Applied scale-up actions.
    pub scale_ups: usize,
    /// Applied scale-down (drain) actions.
    pub scale_downs: usize,
    /// Every applied scaling action, in simulated-time order.
    pub events: Vec<ScalingEvent>,
    /// Integral of the non-retired node count over simulated time — the
    /// capacity bill of the run.
    pub node_seconds: f64,
    /// Peak non-retired node count.
    pub peak_nodes: usize,
    /// Non-retired node count when the run ended.
    pub final_nodes: usize,
    /// Peak admitted-and-unfinished request count.
    pub peak_inflight: usize,
    /// Idle specialised pods recycled back to the generic pool.
    pub pods_recycled: usize,
    /// Cluster CPU still allocated when the run ended, in millicores. Zero
    /// unless pods leak their cluster allocation (regression guard).
    pub final_allocated_mc: u64,
    /// Fault injector the run was subjected to (`None` for fault-free runs).
    pub injector: Option<String>,
    /// Fault events actually delivered to the fleet.
    pub faults_applied: usize,
    /// Nodes lost to crashes, preemption deadlines and zone outages.
    pub nodes_lost: usize,
}

impl CapacityReport {
    /// Shed fraction of the offered load, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.generated == 0 {
            return 0.0;
        }
        self.shed as f64 / self.generated as f64
    }
}

/// Aggregated results of serving a request set under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Policy name.
    pub policy: String,
    /// Workflow name.
    pub workflow: String,
    /// Concurrency (batch size).
    pub concurrency: u32,
    /// SLO the requests were served under.
    pub slo: SimDuration,
    /// Per-request outcomes (in request order), shed requests included.
    pub outcomes: Vec<RequestOutcome>,
    /// Capacity accounting, for open-loop runs under elastic control
    /// (`None` for closed loops and plain open loops).
    pub capacity: Option<CapacityReport>,
}

impl ServingReport {
    /// Number of requests accounted for (served **and** shed).
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when no requests were accounted for.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Outcomes of requests that were actually served (shed ones excluded).
    pub fn served(&self) -> impl Iterator<Item = &RequestOutcome> {
        self.outcomes.iter().filter(|o| o.is_served())
    }

    /// Number of served requests.
    pub fn served_len(&self) -> usize {
        self.served().count()
    }

    /// Number of requests shed at admission.
    pub fn shed_len(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.disposition == RequestDisposition::Shed)
            .count()
    }

    /// Number of admitted requests lost to faults.
    pub fn failed_len(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.disposition == RequestDisposition::Failed)
            .count()
    }

    /// Failed fraction of the offered load, in `[0, 1]`.
    pub fn failed_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.failed_len() as f64 / self.outcomes.len() as f64
    }

    /// Shed fraction of the offered load, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.shed_len() as f64 / self.outcomes.len() as f64
    }

    fn served_e2e_ms(&self) -> Vec<f64> {
        self.served().map(|o| o.e2e.as_millis()).collect()
    }

    /// Mean per-request CPU consumption in millicores over served requests
    /// (Figure 5 / Table I).
    pub fn mean_cpu_millicores(&self) -> f64 {
        let served = self.served_len();
        if served == 0 {
            return 0.0;
        }
        self.served()
            .map(|o| f64::from(o.total_cpu().get()))
            .sum::<f64>()
            / served as f64
    }

    /// Fraction of **served** requests that violated the SLO (0.0 when
    /// nothing was served; shed requests are reported via
    /// [`shed_rate`](Self::shed_rate), not as violations).
    pub fn slo_violation_rate(&self) -> f64 {
        let served = self.served_len();
        if served == 0 {
            return 0.0;
        }
        self.served().filter(|o| !o.slo_met).count() as f64 / served as f64
    }

    /// End-to-end latency CDF over served requests (Figure 4). Empty when
    /// every request was shed.
    pub fn e2e_cdf(&self) -> Cdf {
        Cdf::from_samples(&self.served_e2e_ms())
    }

    /// End-to-end latency summary statistics over served requests. `None`
    /// when nothing was served.
    pub fn e2e_summary(&self) -> Option<Summary> {
        Summary::from_samples(&self.served_e2e_ms())
    }

    /// Streaming (fixed-memory, approximate-percentile) view of the
    /// end-to-end latencies of served requests — the summary sweep-style
    /// consumers fold across many reports via [`StreamingSummary::merge`]
    /// without buffering every sample again. Empty (zero samples) when
    /// every request was shed.
    pub fn e2e_streaming(&self) -> StreamingSummary {
        let mut summary = StreamingSummary::new();
        for o in self.served() {
            summary.record(o.e2e.as_millis());
        }
        summary
    }

    /// The end-to-end latency of served requests at a given percentile
    /// (e.g. 99.0 for the P99 SLO check). `None` when nothing was served.
    pub fn e2e_percentile(&self, p: f64) -> Option<SimDuration> {
        janus_simcore::stats::percentile(&self.served_e2e_ms(), p).map(SimDuration::from_millis)
    }

    /// Total hint-table misses across all requests.
    pub fn total_misses(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| u64::from(o.adaptation_misses))
            .sum()
    }

    /// Mean per-request CPU of this report divided by that of `baseline` —
    /// the "normalized by Optimal" presentation used throughout §V.
    pub fn cpu_normalized_by(&self, baseline: &ServingReport) -> f64 {
        let base = baseline.mean_cpu_millicores();
        if base <= f64::EPSILON {
            return f64::INFINITY;
        }
        self.mean_cpu_millicores() / base
    }

    /// Relative resource reduction of this policy versus `other`, normalised
    /// by `optimal` — the quantity reported in Table I:
    /// `(other − self) / optimal`.
    pub fn reduction_vs(&self, other: &ServingReport, optimal: &ServingReport) -> f64 {
        let opt = optimal.mean_cpu_millicores();
        if opt <= f64::EPSILON {
            return 0.0;
        }
        (other.mean_cpu_millicores() - self.mean_cpu_millicores()) / opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, e2e_ms: f64, cpu: &[u32], slo_ms: f64) -> RequestOutcome {
        RequestOutcome {
            request_id: id,
            disposition: RequestDisposition::Served,
            e2e: SimDuration::from_millis(e2e_ms),
            allocations: cpu.iter().map(|&c| Millicores::new(c)).collect(),
            function_latencies: vec![
                SimDuration::from_millis(e2e_ms / cpu.len() as f64);
                cpu.len()
            ],
            slo_met: e2e_ms <= slo_ms,
            adaptation_misses: 0,
        }
    }

    fn report(policy: &str, cpus: &[u32], e2es: &[f64]) -> ServingReport {
        ServingReport {
            policy: policy.to_string(),
            workflow: "IA".to_string(),
            concurrency: 1,
            slo: SimDuration::from_secs(3.0),
            outcomes: e2es
                .iter()
                .enumerate()
                .map(|(i, &e)| outcome(i as u64, e, cpus, 3000.0))
                .collect(),
            capacity: None,
        }
    }

    #[test]
    fn total_cpu_is_the_sum_of_allocations() {
        let o = outcome(0, 2000.0, &[1500, 1200, 1000], 3000.0);
        assert_eq!(o.total_cpu(), Millicores::new(3700));
        assert!(o.slo_met);
    }

    #[test]
    fn report_aggregates_cpu_and_violations() {
        let r = report(
            "janus",
            &[1000, 1000, 1000],
            &[2000.0, 2500.0, 3500.0, 2800.0],
        );
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.mean_cpu_millicores(), 3000.0);
        assert!((r.slo_violation_rate() - 0.25).abs() < 1e-12);
        assert_eq!(r.total_misses(), 0);
        let cdf = r.e2e_cdf();
        assert_eq!(cdf.len(), 4);
        assert!(r.e2e_summary().unwrap().max >= 3500.0);
        assert!(r.e2e_percentile(99.0).unwrap().as_millis() > 3000.0);
    }

    #[test]
    fn normalisation_and_reduction_match_table_1_semantics() {
        let optimal = report("optimal", &[1000, 1000, 1000], &[2000.0]);
        let janus = report("janus", &[1100, 1100, 1100], &[2400.0]);
        let orion = report("orion", &[1400, 1400, 1400], &[2100.0]);
        assert!((janus.cpu_normalized_by(&optimal) - 1.1).abs() < 1e-12);
        // (4200 - 3300) / 3000 = 0.3
        assert!((janus.reduction_vs(&orion, &optimal) - 0.3).abs() < 1e-12);
        let empty = ServingReport {
            policy: "x".into(),
            workflow: "IA".into(),
            concurrency: 1,
            slo: SimDuration::from_secs(3.0),
            outcomes: vec![],
            capacity: None,
        };
        assert_eq!(empty.mean_cpu_millicores(), 0.0);
        assert_eq!(empty.slo_violation_rate(), 0.0);
        assert!(empty.e2e_summary().is_none());
    }

    #[test]
    fn shed_requests_are_excluded_from_latency_and_cpu_statistics() {
        let mut r = report("janus", &[1000, 1000, 1000], &[2000.0, 3500.0]);
        r.outcomes.push(RequestOutcome::shed(2));
        assert_eq!(r.len(), 3);
        assert_eq!(r.served_len(), 2);
        assert_eq!(r.shed_len(), 1);
        assert!((r.shed_rate() - 1.0 / 3.0).abs() < 1e-12);
        // Denominators are served-only: 1 violation of 2 served, not of 3.
        assert!((r.slo_violation_rate() - 0.5).abs() < 1e-12);
        assert_eq!(r.mean_cpu_millicores(), 3000.0);
        // The zero-latency shed outcome must not pollute the CDF/summary.
        assert_eq!(r.e2e_cdf().len(), 2);
        assert_eq!(r.e2e_summary().unwrap().count, 2);
        assert!(r.e2e_summary().unwrap().min >= 2000.0);
        assert_eq!(r.e2e_streaming().count(), 2);
    }

    #[test]
    fn all_shed_reports_degrade_to_empty_statistics_not_panics() {
        // Newly reachable via admission control: every request shed.
        let r = ServingReport {
            policy: "x".into(),
            workflow: "IA".into(),
            concurrency: 1,
            slo: SimDuration::from_secs(3.0),
            outcomes: (0..4).map(RequestOutcome::shed).collect(),
            capacity: None,
        };
        assert_eq!(r.len(), 4);
        assert_eq!(r.served_len(), 0);
        assert_eq!(r.shed_rate(), 1.0);
        assert!(r.e2e_cdf().is_empty());
        assert!(r.e2e_summary().is_none());
        assert!(r.e2e_percentile(99.0).is_none());
        assert_eq!(r.e2e_streaming().count(), 0);
        assert_eq!(r.mean_cpu_millicores(), 0.0);
        assert_eq!(r.slo_violation_rate(), 0.0);
        assert!(!r.slo_violation_rate().is_nan());
    }

    #[test]
    fn all_failed_reports_degrade_to_empty_statistics_not_panics() {
        // Newly reachable via fault injection: a total zone loss with no
        // recovery fails every admitted request mid-flight.
        let r = ServingReport {
            policy: "x".into(),
            workflow: "IA".into(),
            concurrency: 1,
            slo: SimDuration::from_secs(3.0),
            outcomes: (0..4)
                .map(|i| {
                    RequestOutcome::failed(
                        i,
                        SimDuration::from_millis(120.0),
                        vec![Millicores::new(1000)],
                        vec![SimDuration::from_millis(120.0)],
                    )
                })
                .collect(),
            capacity: None,
        };
        assert_eq!(r.len(), 4);
        assert_eq!(r.served_len(), 0);
        assert_eq!(r.failed_len(), 4);
        assert_eq!(r.shed_len(), 0);
        assert_eq!(r.failed_rate(), 1.0);
        assert_eq!(r.shed_rate(), 0.0);
        assert!(r.e2e_cdf().is_empty());
        assert!(r.e2e_summary().is_none());
        assert!(r.e2e_percentile(99.0).is_none());
        assert_eq!(r.e2e_streaming().count(), 0);
        assert_eq!(r.mean_cpu_millicores(), 0.0);
        assert_eq!(r.slo_violation_rate(), 0.0);
        assert!(!r.slo_violation_rate().is_nan());
    }

    #[test]
    fn capacity_report_shed_rate_guards_the_empty_run() {
        let mut cap = CapacityReport {
            autoscaler: "static".into(),
            admission: "queue-shed".into(),
            generated: 0,
            admitted: 0,
            shed: 0,
            failed: 0,
            retried: 0,
            scale_ups: 0,
            scale_downs: 0,
            events: vec![],
            node_seconds: 0.0,
            peak_nodes: 1,
            final_nodes: 1,
            peak_inflight: 0,
            pods_recycled: 0,
            final_allocated_mc: 0,
            injector: None,
            faults_applied: 0,
            nodes_lost: 0,
        };
        assert_eq!(cap.shed_rate(), 0.0);
        cap.generated = 10;
        cap.shed = 4;
        cap.admitted = 6;
        assert!((cap.shed_rate() - 0.4).abs() < 1e-12);
    }
}
