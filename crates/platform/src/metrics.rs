//! Pre-interned metric handles for the serving hot path.
//!
//! A serving run observes millions of events; paying a string hash and a
//! registry map lock per sample would dominate the simulation itself. A
//! [`ServingMetrics`] bundle resolves every per-event metric name **once**
//! (at session setup) into [`CounterHandle`] / [`StreamingHandle`]s; the
//! executor and the open-loop simulation then record each event through the
//! pre-resolved handles with no lookup on the hot path (see
//! [`janus_simcore::metrics`] for the handle contract).
//!
//! Latency samples go to **streaming** series deliberately: sweeps run many
//! sessions and the exact per-request data already lives in each
//! [`ServingReport`](crate::outcome::ServingReport), so the registry-side
//! series only has to answer "how many samples, what shape" in O(1) memory.

use janus_simcore::metrics::{CounterHandle, MetricsRegistry, StreamingHandle};

/// The per-event serving metrics, pre-interned against one registry.
///
/// Cloning is cheap (handles are `Arc`s); every clone feeds the same
/// underlying metrics.
#[derive(Debug, Clone)]
pub struct ServingMetrics {
    /// Requests admitted (closed-loop replays and open-loop arrivals).
    pub requests: CounterHandle,
    /// Function executions completed.
    pub functions: CounterHandle,
    /// Pod acquisitions that paid a startup (cold-start / specialisation)
    /// delay.
    pub cold_starts: CounterHandle,
    /// Requests that finished over their SLO.
    pub slo_violations: CounterHandle,
    /// Requests shed by admission control at arrival (never served).
    pub shed: CounterHandle,
    /// Admitted requests lost to injected faults (retry budget exhausted).
    pub failed: CounterHandle,
    /// Fault-interrupted requests that re-enqueued and started over.
    pub retried: CounterHandle,
    /// Autoscaler scale-up actions applied.
    pub scale_ups: CounterHandle,
    /// Autoscaler scale-down (drain) actions applied.
    pub scale_downs: CounterHandle,
    /// Per-function execution times in milliseconds (streaming).
    pub function_ms: StreamingHandle,
    /// End-to-end request latencies in milliseconds (streaming).
    pub e2e_ms: StreamingHandle,
}

impl ServingMetrics {
    /// Registry name of [`requests`](Self::requests).
    pub const REQUESTS: &'static str = "serving.requests";
    /// Registry name of [`functions`](Self::functions).
    pub const FUNCTIONS: &'static str = "serving.functions";
    /// Registry name of [`cold_starts`](Self::cold_starts).
    pub const COLD_STARTS: &'static str = "serving.cold_starts";
    /// Registry name of [`slo_violations`](Self::slo_violations).
    pub const SLO_VIOLATIONS: &'static str = "serving.slo_violations";
    /// Registry name of [`shed`](Self::shed).
    pub const SHED: &'static str = "serving.shed";
    /// Registry name of [`failed`](Self::failed).
    pub const FAILED: &'static str = "serving.failed";
    /// Registry name of [`retried`](Self::retried).
    pub const RETRIED: &'static str = "serving.retried";
    /// Registry name of [`scale_ups`](Self::scale_ups).
    pub const SCALE_UPS: &'static str = "serving.scale_ups";
    /// Registry name of [`scale_downs`](Self::scale_downs).
    pub const SCALE_DOWNS: &'static str = "serving.scale_downs";
    /// Registry name of [`function_ms`](Self::function_ms).
    pub const FUNCTION_MS: &'static str = "serving.function_ms";
    /// Registry name of [`e2e_ms`](Self::e2e_ms).
    pub const E2E_MS: &'static str = "serving.e2e_ms";

    /// Resolve every serving metric against `registry` — the one-time
    /// setup-cost half of the hot-path contract.
    pub fn intern(registry: &MetricsRegistry) -> Self {
        ServingMetrics {
            requests: registry.counter_handle(Self::REQUESTS),
            functions: registry.counter_handle(Self::FUNCTIONS),
            cold_starts: registry.counter_handle(Self::COLD_STARTS),
            slo_violations: registry.counter_handle(Self::SLO_VIOLATIONS),
            shed: registry.counter_handle(Self::SHED),
            failed: registry.counter_handle(Self::FAILED),
            retried: registry.counter_handle(Self::RETRIED),
            scale_ups: registry.counter_handle(Self::SCALE_UPS),
            scale_downs: registry.counter_handle(Self::SCALE_DOWNS),
            function_ms: registry.streaming_handle(Self::FUNCTION_MS),
            e2e_ms: registry.streaming_handle(Self::E2E_MS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_twice_shares_the_underlying_metrics() {
        let registry = MetricsRegistry::new();
        let a = ServingMetrics::intern(&registry);
        let b = ServingMetrics::intern(&registry);
        assert!(a.requests.shares_storage(&b.requests));
        assert!(a.slo_violations.shares_storage(&b.slo_violations));
        assert!(a.e2e_ms.shares_storage(&b.e2e_ms));
        a.requests.incr(2);
        b.requests.incr(3);
        assert_eq!(registry.counter(ServingMetrics::REQUESTS), 5);
        a.e2e_ms.record(100.0);
        assert_eq!(b.e2e_ms.count(), 1);
    }
}
