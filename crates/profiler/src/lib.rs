//! # janus-profiler
//!
//! The developer-side **profiler** of Janus (§III-B).
//!
//! The profiler collects the execution time of every function in a workflow
//! under varying CPU allocations (1000–3000 millicores, step 100) and
//! concurrency levels (batch sizes), then extracts the execution-time
//! distribution at a configurable set of percentiles (P1–P99 with a step of 5
//! by default). The resulting [`FunctionProfile`]s expose the three
//! quantities the synthesizer consumes:
//!
//! * `L(p, k)` — profiled execution time at percentile `p` and allocation `k`
//!   ([`FunctionProfile::latency`]),
//! * `D(p, k) = L(99, k) − L(p, k)` — the **timeout** metric quantifying the
//!   potential over-time execution when provisioning at percentile `p`
//!   ([`FunctionProfile::timeout`], Eq. 1),
//! * `R(p, k) = L(p, k) − L(p, Kmax)` — the **resilience** metric quantifying
//!   how much execution time can still be absorbed by scaling the function up
//!   to `Kmax` ([`FunctionProfile::resilience`], Eq. 2; the paper states the
//!   metric as the achievable reduction when scaling up, which is the
//!   non-negative orientation used here).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod percentiles;
pub mod profile;
pub mod profiler;

pub use percentiles::{Percentile, PercentileGrid};
pub use profile::{FunctionProfile, WorkflowProfile};
pub use profiler::{Profiler, ProfilerConfig};
