//! Percentiles and percentile exploration grids.
//!
//! The paper explores percentiles "ranging from 1% to 99% with a step of 5%"
//! (§III-B) for the head function, and can be configured with stricter
//! targets (e.g. P99.9) for tighter SLOs. [`Percentile`] is a validated
//! floating-point percentile in `(0, 100)`, and [`PercentileGrid`] is the
//! ordered set of candidate percentiles the synthesizer searches.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A percentile in the open interval (0, 100).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentile(f64);

impl Percentile {
    /// The P99 tail percentile used as the default SLO target.
    pub const P99: Percentile = Percentile(99.0);
    /// The median.
    pub const P50: Percentile = Percentile(50.0);
    /// The 1st percentile (fastest observed executions).
    pub const P1: Percentile = Percentile(1.0);

    /// Construct a validated percentile.
    pub fn new(p: f64) -> Result<Self, String> {
        if !(p.is_finite() && p > 0.0 && p < 100.0) {
            return Err(format!("percentile must be in (0, 100), got {p}"));
        }
        Ok(Percentile(p))
    }

    /// The numeric percentile value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Probability (in `[0,1]`) that an execution finishes within the profiled
    /// latency at this percentile: simply `p / 100`.
    pub fn probability(self) -> f64 {
        self.0 / 100.0
    }
}

impl fmt::Display for Percentile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if (self.0 - self.0.round()).abs() < 1e-9 {
            write!(f, "P{}", self.0.round() as i64)
        } else {
            write!(f, "P{:.1}", self.0)
        }
    }
}

impl Eq for Percentile {}

impl PartialOrd for Percentile {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Percentile {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd<f64> for Percentile {
    fn partial_cmp(&self, other: &f64) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(other)
    }
}

impl PartialEq<f64> for Percentile {
    fn eq(&self, other: &f64) -> bool {
        self.0 == *other
    }
}

/// An ordered set of candidate percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentileGrid {
    values: Vec<Percentile>,
}

impl PercentileGrid {
    /// The paper's default exploration grid: 1, 6, 11, …, 96, 99 (1 to 99
    /// with a step of 5, always including the P99 tail).
    pub fn paper_default() -> Self {
        let mut values: Vec<Percentile> = (0..20)
            .map(|i| Percentile::new(1.0 + 5.0 * i as f64).expect("grid value in range"))
            .collect();
        values.push(Percentile::P99);
        PercentileGrid { values }
    }

    /// A grid for stricter SLO targets that replaces the P99 anchor with a
    /// higher percentile such as 99.9.
    pub fn with_tail(tail: Percentile) -> Result<Self, String> {
        if tail.value() < 99.0 {
            return Err(format!("tail percentile must be >= 99, got {tail}"));
        }
        let mut grid = Self::paper_default();
        grid.values.retain(|p| p.value() < 99.0);
        grid.values.push(tail);
        Ok(grid)
    }

    /// Build a grid from explicit values (deduplicated and sorted).
    pub fn from_values(values: Vec<Percentile>) -> Result<Self, String> {
        if values.is_empty() {
            return Err("percentile grid cannot be empty".to_string());
        }
        let mut values = values;
        values.sort();
        values.dedup();
        Ok(PercentileGrid { values })
    }

    /// Candidate percentiles in ascending order.
    pub fn values(&self) -> &[Percentile] {
        &self.values
    }

    /// Number of candidate percentiles.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// A grid is never empty after construction.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The highest percentile (the tail anchor used for non-head functions).
    pub fn tail(&self) -> Percentile {
        *self.values.last().expect("grid is non-empty")
    }

    /// The lowest percentile.
    pub fn lowest(&self) -> Percentile {
        *self.values.first().expect("grid is non-empty")
    }

    /// Iterate over the candidate percentiles.
    pub fn iter(&self) -> impl Iterator<Item = Percentile> + '_ {
        self.values.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_spans_p1_to_p99() {
        let g = PercentileGrid::paper_default();
        assert_eq!(g.lowest(), Percentile::P1);
        assert_eq!(g.tail(), Percentile::P99);
        assert_eq!(g.len(), 21);
        assert!(!g.is_empty());
        // Steps of 5 from 1 to 96.
        assert!(g.values().iter().any(|p| p.value() == 51.0));
        assert!(g.values().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn percentile_validation() {
        assert!(Percentile::new(0.0).is_err());
        assert!(Percentile::new(100.0).is_err());
        assert!(Percentile::new(f64::NAN).is_err());
        assert!(Percentile::new(99.9).is_ok());
        assert_eq!(Percentile::new(50.0).unwrap(), Percentile::P50);
    }

    #[test]
    fn display_formats_cleanly() {
        assert_eq!(Percentile::P99.to_string(), "P99");
        assert_eq!(Percentile::new(99.9).unwrap().to_string(), "P99.9");
    }

    #[test]
    fn stricter_tail_grid() {
        let g = PercentileGrid::with_tail(Percentile::new(99.9).unwrap()).unwrap();
        assert_eq!(g.tail().value(), 99.9);
        assert!(g
            .values()
            .iter()
            .all(|p| p.value() < 99.0 || p.value() == 99.9));
        assert!(PercentileGrid::with_tail(Percentile::P50).is_err());
    }

    #[test]
    fn from_values_sorts_and_dedups() {
        let g = PercentileGrid::from_values(vec![
            Percentile::P99,
            Percentile::P1,
            Percentile::P99,
            Percentile::P50,
        ])
        .unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.lowest(), Percentile::P1);
        assert_eq!(g.tail(), Percentile::P99);
        assert!(PercentileGrid::from_values(vec![]).is_err());
    }

    #[test]
    fn probability_is_fractional_percentile() {
        assert!((Percentile::P99.probability() - 0.99).abs() < 1e-12);
        assert!((Percentile::P50.probability() - 0.5).abs() < 1e-12);
    }
}
