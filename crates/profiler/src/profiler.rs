//! The profiling driver.
//!
//! On the developer side, the profiler "interacts with the developer to
//! collect the domain knowledge of the application, such as the workflow
//! structure, constitutional functions execution time under varying CPU cores
//! and concurrency settings, and SLO requirements" (§III-A). In this
//! reproduction the "measurement" runs the workload latency models the same
//! way the authors ran their functions on Fission: many sample executions per
//! (allocation, concurrency) grid point.
//!
//! Grid points are profiled in parallel with rayon — profiling is offline and
//! embarrassingly parallel, exactly the "explores different percentiles
//! concurrently" structure the paper describes for the offline pipeline.

use crate::profile::{FunctionProfile, WorkflowProfile};
use janus_simcore::interference::InterferenceModel;
use janus_simcore::resources::CoreGrid;
use janus_simcore::rng::SimRng;
use janus_workloads::function::FunctionModel;
use janus_workloads::workflow::Workflow;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Profiler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Number of sample executions per (allocation, concurrency) grid point.
    pub samples_per_point: usize,
    /// CPU-allocation grid to sweep.
    pub grid: CoreGrid,
    /// Number of co-located instances assumed while profiling. The paper
    /// profiles on a dedicated testbed (degree 1); production profiling could
    /// use a higher degree to bake typical interference into the profiles.
    pub colocation_degree: usize,
    /// Interference model applied during profiling.
    pub interference: InterferenceModel,
    /// RNG seed (profiles are deterministic given the seed).
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            samples_per_point: 1500,
            grid: CoreGrid::paper_default(),
            colocation_degree: 1,
            interference: InterferenceModel::paper_calibrated(),
            seed: 0xC0FFEE,
        }
    }
}

impl ProfilerConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.samples_per_point < 10 {
            return Err(format!(
                "samples_per_point must be at least 10 (got {}) to make percentiles meaningful",
                self.samples_per_point
            ));
        }
        if self.colocation_degree == 0 {
            return Err("colocation_degree must be at least 1".into());
        }
        Ok(())
    }
}

/// The developer-side profiler.
#[derive(Debug, Clone)]
pub struct Profiler {
    config: ProfilerConfig,
}

impl Profiler {
    /// Create a profiler, validating the configuration.
    pub fn new(config: ProfilerConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Profiler { config })
    }

    /// Profiler with default configuration.
    pub fn with_defaults() -> Self {
        Profiler {
            config: ProfilerConfig::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// Profile one function at the given concurrency (batch size).
    pub fn profile_function(&self, function: &FunctionModel, concurrency: u32) -> FunctionProfile {
        let cfg = &self.config;
        let samples: BTreeMap<u32, Vec<f64>> = cfg
            .grid
            .iter()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|mc| {
                // Common random numbers: every grid point replays the same
                // working-set / noise stream, so profiled latencies are
                // exactly monotone in the allocation (variance reduction) and
                // independent of rayon's scheduling order.
                let mut rng = SimRng::seed_from_u64(
                    cfg.seed ^ (u64::from(concurrency) << 16) ^ hash_name(function.name()),
                );
                let v: Vec<f64> = (0..cfg.samples_per_point)
                    .map(|_| {
                        function
                            .sample_execution_time(
                                mc,
                                concurrency,
                                cfg.colocation_degree,
                                &cfg.interference,
                                &mut rng,
                            )
                            .as_millis()
                    })
                    .collect();
                (mc.get(), v)
            })
            .collect();
        FunctionProfile::from_samples(function.name(), concurrency, cfg.grid, samples)
            .expect("profiler produces complete grids")
    }

    /// Profile every function of a workflow at the given concurrency.
    pub fn profile_workflow(&self, workflow: &Workflow, concurrency: u32) -> WorkflowProfile {
        let functions: Vec<FunctionProfile> = workflow
            .functions()
            .iter()
            .map(|f| self.profile_function(f, concurrency))
            .collect();
        WorkflowProfile::new(workflow.name(), concurrency, self.config.grid, functions)
            .expect("profiles share grid and concurrency by construction")
    }

    /// Profile a workflow at several concurrency levels (the paper profiles
    /// IA at concurrency 1, 2 and 3).
    pub fn profile_concurrencies(
        &self,
        workflow: &Workflow,
        concurrencies: &[u32],
    ) -> Vec<WorkflowProfile> {
        concurrencies
            .iter()
            .map(|&c| self.profile_workflow(workflow, c))
            .collect()
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a; stable across runs (unlike `DefaultHasher` which is randomised).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentiles::Percentile;
    use janus_simcore::resources::Millicores;
    use janus_workloads::apps::{intelligent_assistant, object_detection, text_to_speech};

    fn quick_profiler() -> Profiler {
        Profiler::new(ProfilerConfig {
            samples_per_point: 400,
            ..ProfilerConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Profiler::new(ProfilerConfig {
            samples_per_point: 1,
            ..ProfilerConfig::default()
        })
        .is_err());
        assert!(Profiler::new(ProfilerConfig {
            colocation_degree: 0,
            ..ProfilerConfig::default()
        })
        .is_err());
        assert!(Profiler::with_defaults().config().validate().is_ok());
    }

    #[test]
    fn profiles_are_deterministic_given_the_seed() {
        let profiler = quick_profiler();
        let od = object_detection();
        let a = profiler.profile_function(&od, 1);
        let b = profiler.profile_function(&od, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn profiled_latency_decreases_with_cores_and_increases_with_percentile() {
        let profiler = quick_profiler();
        let p = profiler.profile_function(&object_detection(), 1);
        let l_1000 = p.latency(Percentile::P99, Millicores::new(1000));
        let l_3000 = p.latency(Percentile::P99, Millicores::new(3000));
        assert!(l_3000 < l_1000, "P99 {l_3000} should be below {l_1000}");
        let l_p50 = p.latency(Percentile::P50, Millicores::new(2000));
        let l_p99 = p.latency(Percentile::P99, Millicores::new(2000));
        assert!(l_p99 > l_p50);
    }

    #[test]
    fn timeout_shrinks_with_more_cores_and_higher_percentiles() {
        // Figure 7a: timeout decreases as either percentile or cores increase.
        let profiler = quick_profiler();
        let p = profiler.profile_function(&text_to_speech(), 1);
        let d_low_cores = p.timeout(Percentile::P50, Millicores::new(1000), Percentile::P99);
        let d_high_cores = p.timeout(Percentile::P50, Millicores::new(3000), Percentile::P99);
        assert!(d_high_cores < d_low_cores);
        let d_p25 = p.timeout(
            Percentile::new(25.0).unwrap(),
            Millicores::new(2000),
            Percentile::P99,
        );
        let d_p75 = p.timeout(
            Percentile::new(75.0).unwrap(),
            Millicores::new(2000),
            Percentile::P99,
        );
        assert!(d_p75 < d_p25);
    }

    #[test]
    fn resilience_shrinks_with_more_cores_and_grows_with_concurrency() {
        // Figure 7b: resilience decreases with provisioned cores and grows
        // with concurrency (more load -> more sensitivity to resources).
        let profiler = quick_profiler();
        let ts = text_to_speech();
        let p1 = profiler.profile_function(&ts, 1);
        let r_1000 = p1.resilience(Percentile::P99, Millicores::new(1000));
        let r_2500 = p1.resilience(Percentile::P99, Millicores::new(2500));
        assert!(r_2500 < r_1000);
        let p3 = profiler.profile_function(&ts, 3);
        let r_conc3 = p3.resilience(Percentile::P99, Millicores::new(1000));
        assert!(r_conc3 > r_1000, "conc-3 resilience {r_conc3} vs {r_1000}");
    }

    #[test]
    fn workflow_profile_covers_all_functions_and_concurrencies() {
        let profiler = quick_profiler();
        let ia = intelligent_assistant();
        let profiles = profiler.profile_concurrencies(&ia, &[1, 2]);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].len(), 3);
        assert_eq!(profiles[0].concurrency(), 1);
        assert_eq!(profiles[1].concurrency(), 2);
        assert_eq!(profiles[0].function(0).unwrap().function(), "od");
        // Budget range is sensible: Tmin < SLO < Tmax for the 3s IA SLO.
        let tmin = profiles[0].min_budget(Percentile::P1).as_millis();
        let tmax = profiles[0].max_budget(Percentile::P99).as_millis();
        assert!(tmin < 3000.0, "Tmin {tmin}");
        assert!(tmax > 3000.0, "Tmax {tmax}");
    }
}
