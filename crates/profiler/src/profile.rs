//! Execution-time profiles and the timeout / resilience metrics.

use crate::percentiles::Percentile;
use janus_simcore::resources::{CoreGrid, Millicores};
use janus_simcore::stats::percentile_of_sorted;
use janus_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The execution-time distribution of one function at one concurrency level,
/// sampled across the CPU-allocation grid.
///
/// Internally the profile stores the sorted raw samples per grid allocation,
/// so any percentile can be queried after profiling (the synthesizer explores
/// many percentiles for head functions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionProfile {
    function: String,
    concurrency: u32,
    grid: CoreGrid,
    /// Sorted execution-time samples (ms) per grid allocation.
    samples: BTreeMap<u32, Vec<f64>>,
}

impl FunctionProfile {
    /// Assemble a profile from per-allocation samples. Every grid point must
    /// be present and non-empty; samples are sorted internally.
    pub fn from_samples(
        function: impl Into<String>,
        concurrency: u32,
        grid: CoreGrid,
        mut samples: BTreeMap<u32, Vec<f64>>,
    ) -> Result<Self, String> {
        for mc in grid.iter() {
            let entry = samples
                .get_mut(&mc.get())
                .ok_or_else(|| format!("missing samples for {mc}"))?;
            if entry.is_empty() {
                return Err(format!("empty sample set for {mc}"));
            }
            if entry.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(format!("non-finite or negative sample for {mc}"));
            }
            entry.sort_by(|a, b| a.total_cmp(b));
        }
        Ok(FunctionProfile {
            function: function.into(),
            concurrency,
            grid,
            samples,
        })
    }

    /// Name of the profiled function.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// Concurrency (batch size) at which this profile was collected.
    pub fn concurrency(&self) -> u32 {
        self.concurrency
    }

    /// The CPU-allocation grid.
    pub fn grid(&self) -> CoreGrid {
        self.grid
    }

    /// Number of samples per grid point.
    pub fn samples_per_point(&self) -> usize {
        self.samples.values().map(Vec::len).min().unwrap_or(0)
    }

    fn sorted_samples(&self, mc: Millicores) -> &[f64] {
        let snapped = self.grid.snap_up(mc);
        self.samples
            .get(&snapped.get())
            .map(Vec::as_slice)
            .expect("grid point present by construction")
    }

    /// `L(p, k)`: profiled execution time at percentile `p` and allocation
    /// `k`. Off-grid allocations are snapped up to the next grid point.
    pub fn latency(&self, p: Percentile, mc: Millicores) -> SimDuration {
        SimDuration::from_millis(percentile_of_sorted(self.sorted_samples(mc), p.value()))
    }

    /// `D(p, k) = L(99, k) − L(p, k)`: the **timeout** metric (Eq. 1) — how
    /// much longer than the planned percentile an execution may take before
    /// the P99 tail is reached. Uses the profile's tail percentile `tail`
    /// (P99 by default; P99.9 for stricter SLOs).
    pub fn timeout(&self, p: Percentile, mc: Millicores, tail: Percentile) -> SimDuration {
        (self.latency(tail, mc) - self.latency(p, mc)).saturate()
    }

    /// `R(p, k) = L(p, k) − L(p, Kmax)`: the **resilience** metric (Eq. 2) —
    /// the execution-time reduction achievable by scaling the function from
    /// `k` up to the maximum allocation.
    pub fn resilience(&self, p: Percentile, mc: Millicores) -> SimDuration {
        (self.latency(p, mc) - self.latency(p, self.grid.max)).saturate()
    }

    /// The minimum allocation on the grid whose latency at percentile `p`
    /// stays within `budget`, or `None` if even `Kmax` cannot meet it.
    pub fn min_cores_for(&self, p: Percentile, budget: SimDuration) -> Option<Millicores> {
        self.grid.iter().find(|&mc| self.latency(p, mc) <= budget)
    }

    /// All raw (sorted) samples at one allocation; used by tests and the
    /// motivation figures.
    pub fn raw_samples(&self, mc: Millicores) -> &[f64] {
        self.sorted_samples(mc)
    }
}

/// Profiles of every function of a workflow at one concurrency level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowProfile {
    workflow: String,
    concurrency: u32,
    grid: CoreGrid,
    functions: Vec<FunctionProfile>,
}

impl WorkflowProfile {
    /// Assemble a workflow profile from per-function profiles (in workflow
    /// order). All profiles must share the same grid and concurrency.
    pub fn new(
        workflow: impl Into<String>,
        concurrency: u32,
        grid: CoreGrid,
        functions: Vec<FunctionProfile>,
    ) -> Result<Self, String> {
        if functions.is_empty() {
            return Err("workflow profile needs at least one function".into());
        }
        for f in &functions {
            if f.grid() != grid {
                return Err(format!(
                    "function {} profiled on a different grid",
                    f.function()
                ));
            }
            if f.concurrency() != concurrency {
                return Err(format!(
                    "function {} profiled at concurrency {} (expected {concurrency})",
                    f.function(),
                    f.concurrency()
                ));
            }
        }
        Ok(WorkflowProfile {
            workflow: workflow.into(),
            concurrency,
            grid,
            functions,
        })
    }

    /// Workflow name.
    pub fn workflow(&self) -> &str {
        &self.workflow
    }

    /// Concurrency (batch size) of this profile.
    pub fn concurrency(&self) -> u32 {
        self.concurrency
    }

    /// The CPU grid shared by all function profiles.
    pub fn grid(&self) -> CoreGrid {
        self.grid
    }

    /// Per-function profiles in workflow order.
    pub fn functions(&self) -> &[FunctionProfile] {
        &self.functions
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Never empty after construction.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Profile of the function at `index`.
    pub fn function(&self, index: usize) -> Option<&FunctionProfile> {
        self.functions.get(index)
    }

    /// The sub-workflow profile starting at function `first` (the remaining
    /// functions after the first `first` finished). `None` when out of range.
    pub fn suffix(&self, first: usize) -> Option<WorkflowProfile> {
        if first >= self.functions.len() {
            return None;
        }
        Some(WorkflowProfile {
            workflow: format!("{}[{}..]", self.workflow, first),
            concurrency: self.concurrency,
            grid: self.grid,
            functions: self.functions[first..].to_vec(),
        })
    }

    /// `Tmin = Σ Li(P_low, Kmax)`: the shortest plausible time budget for the
    /// whole (sub-)workflow (Eq. 3, using the grid's lowest percentile).
    pub fn min_budget(&self, low: Percentile) -> SimDuration {
        self.functions
            .iter()
            .map(|f| f.latency(low, self.grid.max))
            .sum()
    }

    /// `Tmax = Σ Li(tail, Kmin)`: the longest useful time budget (Eq. 3).
    pub fn max_budget(&self, tail: Percentile) -> SimDuration {
        self.functions
            .iter()
            .map(|f| f.latency(tail, self.grid.min))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a deterministic synthetic profile where latency(p, k) =
    /// base * (1000 / k) * (1 + p/100); convenient for exact assertions.
    fn synthetic(function: &str, base: f64) -> FunctionProfile {
        let grid = CoreGrid::paper_default();
        let mut samples = BTreeMap::new();
        for mc in grid.iter() {
            let scale = 1000.0 / f64::from(mc.get());
            // 101 samples from p=0..=100 so percentile_of_sorted hits exact values.
            let s: Vec<f64> = (0..=100)
                .map(|p| base * scale * (1.0 + f64::from(p) / 100.0))
                .collect();
            samples.insert(mc.get(), s);
        }
        FunctionProfile::from_samples(function, 1, grid, samples).unwrap()
    }

    #[test]
    fn latency_is_monotone_in_percentile_and_cores() {
        let p = synthetic("od", 100.0);
        let l_low = p.latency(Percentile::P1, Millicores::new(1000));
        let l_high = p.latency(Percentile::P99, Millicores::new(1000));
        assert!(l_high > l_low);
        let l_fast = p.latency(Percentile::P99, Millicores::new(3000));
        assert!(l_fast < l_high);
    }

    #[test]
    fn timeout_and_resilience_match_definitions() {
        let p = synthetic("od", 100.0);
        let mc = Millicores::new(1500);
        let t = p.timeout(Percentile::P50, mc, Percentile::P99);
        let expected = p.latency(Percentile::P99, mc) - p.latency(Percentile::P50, mc);
        assert!((t.as_millis() - expected.as_millis()).abs() < 1e-9);

        let r = p.resilience(Percentile::P99, mc);
        let expected =
            p.latency(Percentile::P99, mc) - p.latency(Percentile::P99, Millicores::new(3000));
        assert!((r.as_millis() - expected.as_millis()).abs() < 1e-9);

        // Timeout at the tail percentile is zero; resilience at Kmax is zero.
        assert!(p.timeout(Percentile::P99, mc, Percentile::P99).is_zero());
        assert!(p
            .resilience(Percentile::P99, Millicores::new(3000))
            .is_zero());
    }

    #[test]
    fn min_cores_for_budget_picks_smallest_feasible_allocation() {
        let p = synthetic("od", 100.0);
        // At P99 latency(k) = 199 * 1000/k; budget 150ms needs k >= 1327 -> 1400 on grid.
        let mc = p
            .min_cores_for(Percentile::P99, SimDuration::from_millis(150.0))
            .unwrap();
        assert_eq!(mc, Millicores::new(1400));
        // Impossible budget.
        assert!(p
            .min_cores_for(Percentile::P99, SimDuration::from_millis(1.0))
            .is_none());
        // Budget loose enough for Kmin.
        assert_eq!(
            p.min_cores_for(Percentile::P99, SimDuration::from_millis(500.0))
                .unwrap(),
            Millicores::new(1000)
        );
    }

    #[test]
    fn off_grid_queries_snap_up() {
        let p = synthetic("od", 100.0);
        assert_eq!(
            p.latency(Percentile::P50, Millicores::new(1050)),
            p.latency(Percentile::P50, Millicores::new(1100))
        );
    }

    #[test]
    fn profile_construction_validates_input() {
        let grid = CoreGrid::paper_default();
        // Missing grid point.
        let mut samples = BTreeMap::new();
        samples.insert(1000, vec![1.0]);
        assert!(FunctionProfile::from_samples("x", 1, grid, samples).is_err());
        // Negative sample.
        let mut samples = BTreeMap::new();
        for mc in grid.iter() {
            samples.insert(mc.get(), vec![-1.0]);
        }
        assert!(FunctionProfile::from_samples("x", 1, grid, samples).is_err());
    }

    #[test]
    fn workflow_profile_budget_range() {
        let wf = WorkflowProfile::new(
            "ia",
            1,
            CoreGrid::paper_default(),
            vec![
                synthetic("od", 100.0),
                synthetic("qa", 80.0),
                synthetic("ts", 60.0),
            ],
        )
        .unwrap();
        assert_eq!(wf.len(), 3);
        let tmin = wf.min_budget(Percentile::P1);
        let tmax = wf.max_budget(Percentile::P99);
        assert!(tmin < tmax);
        // Tmin at Kmax: (100+80+60) * (1000/3000) * 1.01
        assert!((tmin.as_millis() - 240.0 / 3.0 * 1.01).abs() < 1.0);
        // Tmax at Kmin: 240 * 1.99
        assert!((tmax.as_millis() - 240.0 * 1.99).abs() < 1.0);
    }

    #[test]
    fn workflow_profile_suffix_drops_finished_functions() {
        let wf = WorkflowProfile::new(
            "ia",
            1,
            CoreGrid::paper_default(),
            vec![
                synthetic("od", 100.0),
                synthetic("qa", 80.0),
                synthetic("ts", 60.0),
            ],
        )
        .unwrap();
        let tail = wf.suffix(1).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.function(0).unwrap().function(), "qa");
        assert!(wf.suffix(3).is_none());
    }

    #[test]
    fn workflow_profile_rejects_mismatched_functions() {
        let grid = CoreGrid::paper_default();
        let other_grid = CoreGrid::new(Millicores::new(1000), Millicores::new(2000), 100).unwrap();
        let mut samples = BTreeMap::new();
        for mc in other_grid.iter() {
            samples.insert(mc.get(), vec![1.0, 2.0]);
        }
        let mismatched = FunctionProfile::from_samples("od", 1, other_grid, samples).unwrap();
        assert!(WorkflowProfile::new("ia", 1, grid, vec![mismatched]).is_err());
        assert!(WorkflowProfile::new("ia", 1, grid, vec![]).is_err());
        let ok = synthetic("od", 10.0);
        assert!(
            WorkflowProfile::new("ia", 2, grid, vec![ok]).is_err(),
            "concurrency mismatch"
        );
    }
}
