//! Remaining-time-budget derivation.
//!
//! "When a function in the application DAG finishes, the serverless platform
//! collects the execution time of that function and derives the time budget
//! for the rest of the workflow" (§I). The budget tracker is the tiny piece
//! of per-request state that makes this derivation: SLO minus elapsed time.

use janus_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tracks the time budget of one in-flight workflow request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetTracker {
    slo: SimDuration,
    admitted_at: SimTime,
    consumed: SimDuration,
}

impl BudgetTracker {
    /// Start tracking a request admitted at `admitted_at` with the given SLO.
    pub fn new(slo: SimDuration, admitted_at: SimTime) -> Self {
        BudgetTracker {
            slo,
            admitted_at,
            consumed: SimDuration::ZERO,
        }
    }

    /// The end-to-end SLO of the request.
    pub fn slo(&self) -> SimDuration {
        self.slo
    }

    /// Admission time.
    pub fn admitted_at(&self) -> SimTime {
        self.admitted_at
    }

    /// Record that a function consumed `elapsed` of the budget (execution
    /// time plus any startup delay attributed to the request).
    pub fn consume(&mut self, elapsed: SimDuration) {
        self.consumed += elapsed.saturate();
    }

    /// Total time consumed so far.
    pub fn consumed(&self) -> SimDuration {
        self.consumed
    }

    /// Remaining budget based on the recorded consumption (never negative).
    pub fn remaining(&self) -> SimDuration {
        (self.slo - self.consumed).saturate()
    }

    /// Remaining budget based on wall-clock `now` (never negative). Useful
    /// when queueing or scheduling delays should also count against the SLO.
    pub fn remaining_at(&self, now: SimTime) -> SimDuration {
        (self.slo - now.saturating_since(self.admitted_at)).saturate()
    }

    /// True once the recorded consumption exceeds the SLO.
    pub fn exhausted(&self) -> bool {
        self.consumed > self.slo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_decreases_as_functions_finish() {
        let mut b = BudgetTracker::new(SimDuration::from_secs(3.0), SimTime::from_millis(100.0));
        assert_eq!(b.remaining().as_millis(), 3000.0);
        b.consume(SimDuration::from_millis(800.0));
        assert_eq!(b.remaining().as_millis(), 2200.0);
        b.consume(SimDuration::from_millis(700.0));
        assert_eq!(b.remaining().as_millis(), 1500.0);
        assert_eq!(b.consumed().as_millis(), 1500.0);
        assert!(!b.exhausted());
        assert_eq!(b.slo().as_secs(), 3.0);
    }

    #[test]
    fn overrun_saturates_at_zero_and_flags_exhaustion() {
        let mut b = BudgetTracker::new(SimDuration::from_secs(1.0), SimTime::ZERO);
        b.consume(SimDuration::from_millis(1500.0));
        assert_eq!(b.remaining(), SimDuration::ZERO);
        assert!(b.exhausted());
    }

    #[test]
    fn wall_clock_budget_accounts_for_queueing() {
        let b = BudgetTracker::new(SimDuration::from_secs(2.0), SimTime::from_millis(1000.0));
        assert_eq!(
            b.remaining_at(SimTime::from_millis(1000.0)).as_millis(),
            2000.0
        );
        assert_eq!(
            b.remaining_at(SimTime::from_millis(2500.0)).as_millis(),
            500.0
        );
        assert_eq!(
            b.remaining_at(SimTime::from_millis(9999.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn negative_consumption_is_ignored() {
        let mut b = BudgetTracker::new(SimDuration::from_secs(1.0), SimTime::ZERO);
        b.consume(SimDuration::from_millis(-50.0));
        assert_eq!(b.remaining().as_millis(), 1000.0);
    }
}
