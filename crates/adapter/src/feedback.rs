//! Provider → developer feedback channel.
//!
//! "In very rare cases where hints table misses are severe …, the adapter
//! notifies the developer and proposes re-triggering the profiler and
//! synthesizer to regenerate the hints table. This regeneration process is
//! done asynchronously while workflow execution is still in progress"
//! (§III-A). The channel decouples the online decision path (which must stay
//! in the microsecond range) from the offline regeneration pipeline.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Events the adapter emits towards the developer side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeedbackEvent {
    /// The miss rate exceeded the configured threshold; the developer should
    /// re-run the profiler and synthesizer for this workflow.
    RegenerationRequested {
        /// Workflow name the hints bundle belongs to.
        workflow: String,
        /// Observed miss rate when the request was raised.
        observed_miss_rate: f64,
        /// Number of lookups behind the observation.
        observations: u64,
    },
    /// A regenerated bundle was installed; informational.
    BundleInstalled {
        /// Workflow name.
        workflow: String,
    },
}

/// An asynchronous, non-blocking feedback channel between the adapter
/// (producer) and the developer tooling (consumer).
///
/// Implemented as a shared lock-guarded queue rather than an external channel
/// crate: producers and consumers are both non-blocking, clones share the
/// same queue, and the serving path only ever takes the lock for a push.
#[derive(Debug, Clone, Default)]
pub struct FeedbackChannel {
    queue: Arc<Mutex<VecDeque<FeedbackEvent>>>,
}

impl FeedbackChannel {
    /// Create an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit an event. Never blocks on a consumer; if the developer side went
    /// away the event simply waits in the queue (the adapter must not stall
    /// the serving path).
    pub fn emit(&self, event: FeedbackEvent) {
        self.queue
            .lock()
            .expect("feedback queue lock poisoned")
            .push_back(event);
    }

    /// Non-blocking poll for the next pending event.
    pub fn poll(&self) -> Option<FeedbackEvent> {
        self.queue
            .lock()
            .expect("feedback queue lock poisoned")
            .pop_front()
    }

    /// Drain all pending events.
    pub fn drain(&self) -> Vec<FeedbackEvent> {
        self.queue
            .lock()
            .expect("feedback queue lock poisoned")
            .drain(..)
            .collect()
    }

    /// Number of events waiting to be consumed.
    pub fn pending(&self) -> usize {
        self.queue
            .lock()
            .expect("feedback queue lock poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn events_flow_through_the_channel() {
        let chan = FeedbackChannel::new();
        assert_eq!(chan.poll(), None);
        chan.emit(FeedbackEvent::RegenerationRequested {
            workflow: "IA".to_string(),
            observed_miss_rate: 0.05,
            observations: 1000,
        });
        chan.emit(FeedbackEvent::BundleInstalled {
            workflow: "IA".to_string(),
        });
        assert_eq!(chan.pending(), 2);
        let events = chan.drain();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            FeedbackEvent::RegenerationRequested { .. }
        ));
        assert_eq!(chan.pending(), 0);
    }

    #[test]
    fn channel_works_across_threads() {
        let chan = FeedbackChannel::new();
        let producer = chan.clone();
        let handle = thread::spawn(move || {
            for i in 0..100 {
                producer.emit(FeedbackEvent::RegenerationRequested {
                    workflow: format!("wf-{i}"),
                    observed_miss_rate: 0.02,
                    observations: i,
                });
            }
        });
        handle.join().unwrap();
        assert_eq!(chan.drain().len(), 100);
    }
}
